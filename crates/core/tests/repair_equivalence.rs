//! Property test for out-of-order ingest: random interleavings of
//! `submit` / `submit_late` / `retract` / `advance_to` against a warm
//! [`Session`] must land byte-identical to a cold materialization over
//! the final *surviving* fact set — the same oracle every access-path
//! optimization shipped with. Run across {1, 4} threads and with the
//! incremental repair both enabled and force-disabled (fallback-only),
//! so the DRed-style overdelete/rederive path and the cold
//! re-materialization backstop are both pinned to the same answer.
//!
//! Generation mirrors `session_equivalence.rs`: deterministic in-repo
//! `SmallRng`, one seed per case, every failure reproducible from the
//! printed case number.

use chronolog_core::{Database, Fact, Reasoner, ReasonerConfig, Value};
use chronolog_obs::SmallRng;
use std::collections::HashSet;

const T_MIN: i64 = 0;
const T_MAX: i64 = 16;
const CASES: u64 = 48;

/// Random stratified program over EDB e1/1, e2/2 and IDB p0..p3, using
/// only past operators with finite windows (the session fragment).
fn gen_program(rng: &mut SmallRng) -> String {
    let idb = [("p0", 1usize), ("p1", 2usize), ("p2", 1), ("p3", 2)];
    let n = rng.gen_range_usize(2, 7);
    let mut rules = Vec::new();
    for _ in 0..n {
        let head = rng.gen_range_usize(0, idb.len());
        let (head_name, head_arity) = idb[head];
        let head_args = if head_arity == 1 { "X" } else { "X, Y" };
        let mut body = Vec::new();
        body.push(if head_arity == 1 {
            "e2(X, _)".to_string()
        } else {
            "e2(X, Y)".to_string()
        });
        for _ in 0..rng.gen_range_usize(0, 3) {
            let src = rng.gen_range_usize(0, 2 + head + 1);
            let atom = match src {
                0 => "e1(X)".to_string(),
                1 => "e2(X, _)".to_string(),
                k => {
                    let (name, arity) = idb[k - 2];
                    if arity == 1 {
                        format!("{name}(X)")
                    } else {
                        format!("{name}(X, _)")
                    }
                }
            };
            let wlo = rng.gen_range_i64(0, 3);
            let whi = wlo + rng.gen_range_i64(0, 3);
            body.push(match rng.gen_range_usize(0, 4) {
                0 => format!("diamondminus[{wlo}, {whi}] {atom}"),
                1 => format!("boxminus[1, 1] {atom}"),
                _ => atom,
            });
        }
        if head > 0 && rng.gen_bool(0.4) {
            let (name, arity) = idb[rng.gen_range_usize(0, head)];
            body.push(if arity == 1 {
                format!("not {name}(X)")
            } else {
                format!("not {name}(X, _)")
            });
        }
        rules.push(format!("{head_name}({head_args}) :- {}.", body.join(", ")));
    }
    rules.join("\n")
}

/// A random event log of punctual EDB facts with skewed join keys. The
/// value pool avoids `Int`/`Num` spellings of the same number, keeping
/// byte equality the right assertion (see `session_equivalence.rs`).
fn gen_events(rng: &mut SmallRng) -> Vec<(&'static str, Vec<Value>, i64)> {
    let pool = [
        Value::Int(0),
        Value::Int(1),
        Value::Int(2),
        Value::Int(3),
        Value::num(1.5),
        Value::num(3.5),
        Value::num(2.5),
    ];
    let mut events = Vec::new();
    for _ in 0..rng.gen_range_usize(5, 40) {
        let t = rng.gen_range_i64(T_MIN, T_MAX + 1);
        if rng.gen_bool(0.3) {
            let x = pool[rng.gen_range_usize(0, pool.len())];
            events.push(("e1", vec![x], t));
        } else {
            let x = pool[rng.gen_range_usize(0, pool.len())];
            let y = pool[rng.gen_range_usize(0, pool.len())];
            events.push(("e2", vec![x, y], t));
        }
    }
    events
}

/// Drives one case: events arrive in generation order (not time order),
/// so some land in the future (plain submits), some at or below the
/// watermark (late submits), and a random subset is retracted again.
/// Returns how many corrections entered the repair path.
fn run_interleaved(threads: usize, repair: bool) -> u64 {
    run_interleaved_with_layout(threads, repair, false)
}

fn run_interleaved_with_layout(threads: usize, repair: bool, row_store: bool) -> u64 {
    let mut attempted_total = 0u64;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x0EA12 ^ (case << 4));
        let src = gen_program(&mut rng);
        let mut events = gen_events(&mut rng);
        // Genesis facts coalesce inside the initial database, so exact
        // duplicates at the start instant would desync the retraction
        // model (two survivors, one stored fact) — drop them up front.
        let mut seen = HashSet::new();
        events.retain(|e| e.2 > T_MIN || seen.insert(format!("{e:?}")));
        let program = chronolog_core::parse_program(&src)
            .unwrap_or_else(|e| panic!("case {case}: generated program must parse: {e}\n{src}"));

        let mut initial = Database::new();
        let mut survivors: Vec<Fact> = Vec::new();
        let mut stream: Vec<(Fact, i64)> = Vec::new();
        for (pred, args, t) in &events {
            let fact = Fact::at(pred, args.clone(), *t);
            if *t <= T_MIN {
                initial.assert_at(pred, args, *t);
                survivors.push(fact);
            } else {
                stream.push((fact, *t));
            }
        }

        let config = ReasonerConfig::default()
            .with_threads(threads)
            .with_repair(repair)
            .with_row_store(row_store);
        let mut session = Reasoner::new(program.clone(), config)
            .unwrap_or_else(|e| panic!("case {case}: program must validate: {e}\n{src}"))
            .into_session(&initial, T_MIN)
            .unwrap_or_else(|e| {
                panic!("case {case}: program must be session-eligible: {e}\n{src}")
            });

        // Interleave: deliver each stream fact in generation order with
        // occasional watermark advances and retractions in between.
        let mut now = T_MIN;
        let mut pending_hi = T_MIN;
        for (fact, t) in stream {
            if rng.gen_bool(0.35) && pending_hi.max(now) < T_MAX {
                let target = rng.gen_range_i64(pending_hi.max(now), T_MAX + 1);
                session
                    .advance_to(target)
                    .unwrap_or_else(|e| panic!("case {case}: advance to {target}: {e}"));
                now = target;
                pending_hi = now;
            }
            if t > now {
                pending_hi = pending_hi.max(t);
                if rng.gen_bool(0.2) {
                    // Future facts through submit_late exercise the
                    // delegation path.
                    session
                        .submit_late(fact.clone())
                        .unwrap_or_else(|e| panic!("case {case}: future via late: {e}"));
                } else {
                    session
                        .submit(fact.clone())
                        .unwrap_or_else(|e| panic!("case {case}: submit: {e}"));
                }
            } else {
                session
                    .submit_late(fact.clone())
                    .unwrap_or_else(|e| panic!("case {case}: late submit at {t}: {e}"));
            }
            survivors.push(fact);
            if rng.gen_bool(0.25) && !survivors.is_empty() {
                let victim = survivors.remove(rng.gen_range_usize(0, survivors.len()));
                session
                    .retract(victim.clone())
                    .unwrap_or_else(|e| panic!("case {case}: retract {victim}: {e}"));
            }
        }
        session
            .advance_to(T_MAX)
            .unwrap_or_else(|e| panic!("case {case}: final advance: {e}"));

        // Cold oracle: a one-shot materialization over exactly the
        // surviving facts must agree byte-for-byte.
        let mut db = Database::new();
        for fact in &survivors {
            db.insert_fact(fact).unwrap();
        }
        let cold = Reasoner::new(
            program,
            ReasonerConfig::default()
                .with_horizon(T_MIN, T_MAX)
                .with_threads(threads),
        )
        .unwrap()
        .materialize(&db)
        .unwrap();
        assert_eq!(
            session.database().to_facts_text(),
            cold.database.to_facts_text(),
            "case {case} (threads={threads}, repair={repair}, \
             row_store={row_store}): \
             patched session diverged from cold run over survivors\n{src}"
        );

        // Path accounting: every correction lands on exactly one path,
        // and force-disabling repair really forces the fallback.
        let r = &session.stats().repairs;
        assert_eq!(
            r.incremental + r.fallbacks,
            r.attempted,
            "case {case}: every attempt resolves to one path"
        );
        if !repair {
            assert_eq!(r.incremental, 0, "case {case}: repair disabled");
        }
        attempted_total += r.attempted;
    }
    attempted_total
}

#[test]
fn interleaved_corrections_equal_cold_1_thread_repair() {
    let attempted = run_interleaved(1, true);
    assert!(attempted > 0, "the interleavings must exercise repairs");
}

#[test]
fn interleaved_corrections_equal_cold_4_threads_repair() {
    let attempted = run_interleaved(4, true);
    assert!(attempted > 0, "the interleavings must exercise repairs");
}

#[test]
fn interleaved_corrections_equal_cold_1_thread_fallback_only() {
    let attempted = run_interleaved(1, false);
    assert!(attempted > 0, "the interleavings must exercise fallbacks");
}

#[test]
fn interleaved_corrections_equal_cold_4_threads_fallback_only() {
    let attempted = run_interleaved(4, false);
    assert!(attempted > 0, "the interleavings must exercise fallbacks");
}

#[test]
fn interleaved_corrections_equal_cold_row_store_repair() {
    // The --row-store ablation must repair to the same bytes the cold run
    // over survivors produces, on both thread counts.
    let attempted =
        run_interleaved_with_layout(1, true, true) + run_interleaved_with_layout(4, true, true);
    assert!(attempted > 0, "the interleavings must exercise repairs");
}
