//! JSON persistence for ledgers: save a window to disk, reload it later,
//! verify the chain — deterministic replay across processes.

use crate::log::Ledger;
use chronolog_obs::Json;
use std::path::Path;

/// Persistence failure.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed or structurally wrong JSON.
    Json(String),
    /// The loaded ledger's hash chain is broken (first bad record index).
    BrokenChain(u64),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::BrokenChain(i) => write!(f, "broken hash chain at record {i}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<chronolog_obs::JsonError> for PersistError {
    fn from(e: chronolog_obs::JsonError) -> Self {
        PersistError::Json(e.to_string())
    }
}

/// Writes a ledger as pretty-printed JSON.
pub fn save_ledger(ledger: &Ledger, path: &Path) -> Result<(), PersistError> {
    std::fs::write(path, ledger.to_json_value().to_pretty())?;
    Ok(())
}

/// Reads a ledger back and verifies its hash chain.
pub fn load_ledger(path: &Path) -> Result<Ledger, PersistError> {
    let text = std::fs::read_to_string(path)?;
    from_json(&text)
}

/// Serializes to a JSON string (for embedding or transport).
pub fn to_json(ledger: &Ledger) -> Result<String, PersistError> {
    Ok(ledger.to_json_value().to_pretty())
}

/// Parses from a JSON string and verifies the chain.
pub fn from_json(json: &str) -> Result<Ledger, PersistError> {
    let value = Json::parse(json)?;
    let ledger = Ledger::from_json_value(&value).map_err(PersistError::Json)?;
    ledger.verify_chain().map_err(PersistError::BrokenChain)?;
    Ok(ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronolog_perp::{AccountId, Event, Method, Trace};

    fn sample() -> Ledger {
        let trace = Trace {
            start_time: 0,
            end_time: 7200,
            initial_skew: 1.5,
            initial_price: 1280.0,
            events: vec![
                Event {
                    time: 10,
                    account: AccountId(1),
                    method: Method::TransferMargin { amount: 42.0 },
                    price: 1280.0,
                },
                Event {
                    time: 30,
                    account: AccountId(1),
                    method: Method::ModifyPosition { size: -0.3 },
                    price: 1281.5,
                },
            ],
        };
        Ledger::from_trace(&trace).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let ledger = sample();
        let json = to_json(&ledger).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(ledger, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("chronolog-ledger-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window.json");
        let ledger = sample();
        save_ledger(&ledger, &path).unwrap();
        let back = load_ledger(&path).unwrap();
        assert_eq!(ledger, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_tampered_json() {
        let ledger = sample();
        let json = to_json(&ledger).unwrap();
        // Flip the first record's amount in the JSON text.
        let tampered = json.replace("42.0", "43.0");
        assert!(matches!(
            from_json(&tampered),
            Err(PersistError::BrokenChain(0))
        ));
        assert!(from_json("{not json").is_err());
    }
}
