//! End-to-end integration: market simulator → hash-chained ledger →
//! Subgraph index → DatalogMTL execution → §4 validation, on all three
//! Figure-3 intervals.

use chronolog_bench::paper_traces;
use chronolog_ledger::{Ledger, SubgraphIndex};
use chronolog_perp::harness::{run_datalog, validate};
use chronolog_perp::program::TimelineMode;
use chronolog_perp::{MarketParams, ReferenceEngine};

#[test]
fn figure_3_intervals_validate_end_to_end() {
    let params = MarketParams::default();
    for (config, trace) in paper_traces() {
        // Ledger round-trip keeps the trace intact.
        let ledger = Ledger::from_trace(&trace).expect("valid trace");
        ledger.verify_chain().expect("chain intact");
        assert_eq!(ledger.to_trace(), trace);

        // §4 validation: DatalogMTL vs the fixed-point Subgraph stand-in.
        let report = validate(&trace, &params, TimelineMode::EventEpochs)
            .unwrap_or_else(|e| panic!("{}: {e}", config.name));
        assert_eq!(report.frs_rows.len(), config.n_events, "{}", config.name);
        assert_eq!(
            report.datalog.trades.len(),
            config.n_trades,
            "{}",
            config.name
        );

        // Figure 4 claim: FRS differences are floating-point dust.
        assert!(
            report.max_frs_diff() < 1e-9,
            "{}: max FRS diff {}",
            config.name,
            report.max_frs_diff()
        );
        // Figure 5 claim: per-trade errors are dust on ~1e3-magnitude values.
        for (label, stats) in [
            ("returns", &report.returns),
            ("fee", &report.fee),
            ("funding", &report.funding),
        ] {
            assert!(
                stats.max_abs < 1e-6,
                "{}: {label} max error {}",
                config.name,
                stats.max_abs
            );
        }

        // The Subgraph index agrees with the harness's reference run.
        let index = SubgraphIndex::build(&ledger, params);
        assert_eq!(index.trades().len(), config.n_trades);
        for (a, b) in index.trades().iter().zip(&report.subgraph.trades) {
            assert_eq!(a, b);
        }
    }
}

#[test]
fn datalog_is_bit_identical_to_float_reference_on_paper_intervals() {
    // The strongest encoding-correctness statement: with identical (f64)
    // arithmetic, the declarative and procedural engines agree exactly on
    // every FRS value and every settlement of all three intervals.
    let params = MarketParams::default();
    for (config, trace) in paper_traces() {
        let datalog = run_datalog(&trace, &params, TimelineMode::EventEpochs)
            .unwrap_or_else(|e| panic!("{}: {e}", config.name));
        let float_ref = ReferenceEngine::<f64>::run_trace(params, &trace);
        assert_eq!(datalog.run.frs, float_ref.frs, "{}", config.name);
        assert_eq!(datalog.run.trades, float_ref.trades, "{}", config.name);
        assert_eq!(datalog.run.final_skew, float_ref.final_skew);
    }
}

#[test]
fn custom_market_params_flow_through_the_whole_stack() {
    // Different fee/funding parameters must reach both engines (the program
    // text is regenerated), keeping them in exact agreement.
    let params = MarketParams {
        taker_fee: 0.01,
        maker_fee: 0.0001,
        max_funding_rate: 0.25,
        skew_scale_notional: 1_000_000.0,
        funding_period_secs: 3_600.0,
    };
    let (_, trace) = &paper_traces()[1];
    let datalog = run_datalog(trace, &params, TimelineMode::EventEpochs).unwrap();
    let float_ref = ReferenceEngine::<f64>::run_trace(params, trace);
    assert_eq!(datalog.run.trades, float_ref.trades);
    // Sanity: the aggressive parameters actually change the outcome.
    let default_ref = ReferenceEngine::<f64>::run_trace(MarketParams::default(), trace);
    assert_ne!(float_ref.trades, default_ref.trades);
}

/// Block-by-block replay: seal a window into a chain, feed each block's
/// transactions to the live session, advance once per block — and get the
/// same materialization as the batch run. This is the deployment shape the
/// paper's conclusion gestures at (an L2 feeding a reasoning node).
#[test]
fn chain_replay_block_by_block_equals_batch() {
    use chronolog_core::{Database, Fact, Reasoner, ReasonerConfig, Value};
    use chronolog_ledger::Chain;
    use chronolog_perp::encode::encode_trace;
    use chronolog_perp::program::{build_program, TimelineMode};
    use chronolog_perp::Method;

    let params = MarketParams::default();
    let config = chronolog_market::ScenarioConfig::new("chain", 31, 0, 20, 6, -300.0, 1400.0);
    let trace = chronolog_market::generate(&config);
    let ledger = Ledger::from_trace(&trace).unwrap();
    let chain = Chain::seal(&ledger, 120).unwrap(); // 2-minute blocks
    chain.verify().unwrap();
    assert!(chain.blocks.len() > 1, "window spans several blocks");

    // Batch reference.
    let program = build_program(&params, TimelineMode::EventEpochs).unwrap();
    let encoded = encode_trace(&trace, TimelineMode::EventEpochs);
    let batch = Reasoner::new(
        program.clone(),
        ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1),
    )
    .unwrap()
    .materialize(&encoded.database)
    .unwrap()
    .database;

    // Per-block session replay (epochs global across blocks).
    let mut genesis = Database::new();
    genesis.assert_at("start", &[], 0);
    genesis.assert_at("startSkew", &[Value::num(trace.initial_skew)], 0);
    genesis.assert_at("startFrs", &[Value::num(0.0)], 0);
    genesis.assert_at("ts", &[Value::Int(trace.start_time)], 0);
    let mut session = Reasoner::new(program, ReasonerConfig::default())
        .unwrap()
        .into_session(&genesis, 0)
        .unwrap();
    let mut epoch = 0i64;
    for block in &chain.blocks {
        for tx in &block.txs {
            epoch += 1;
            let acc = Value::sym(&chronolog_perp::AccountId(tx.account).to_string());
            let fact = match chronolog_perp::Method::from(tx.method) {
                Method::TransferMargin { amount } => {
                    Fact::at("tranM", vec![acc, Value::num(amount)], epoch)
                }
                Method::Withdraw => Fact::at("withdraw", vec![acc], epoch),
                Method::ModifyPosition { size } => {
                    Fact::at("modPos", vec![acc, Value::num(size)], epoch)
                }
                Method::ClosePosition => Fact::at("closePos", vec![acc], epoch),
            };
            session.submit(fact).unwrap();
            session
                .submit(Fact::at("price", vec![Value::num(tx.price)], epoch))
                .unwrap();
            session
                .submit(Fact::at("ts", vec![Value::Int(tx.time)], epoch))
                .unwrap();
        }
        // One advance per sealed block.
        session.advance_to(epoch).unwrap();
    }
    assert_eq!(session.database().to_facts_text(), batch.to_facts_text());
    // Far fewer advances than transactions.
    assert!(chain.blocks.len() < chain.tx_count());
}
