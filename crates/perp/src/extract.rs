//! Extraction of the observable market run (FRS series, trade settlements)
//! from a materialized DatalogMTL database.

use crate::encode::{account_value, EncodedTrace};
use crate::types::{MarketRun, Method, Trace, TradeSettlement};
use chronolog_core::{Database, IntervalSet, Rational, Symbol, Value};

/// Extraction failure: a value the run should have derived is missing or
/// ambiguous — always a bug in the encoding or the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractError(pub String);

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "extraction error: {}", self.0)
    }
}

impl std::error::Error for ExtractError {}

/// Finds the unique tuple of `pred` holding at `t` whose leading arguments
/// equal `prefix`, returning its remaining arguments.
fn lookup_unique(
    db: &Database,
    pred: &str,
    prefix: &[Value],
    t: i64,
) -> Result<Vec<Value>, ExtractError> {
    let pred_sym = Symbol::new(pred);
    let Some(rel) = db.relation(pred_sym) else {
        return Err(ExtractError(format!("predicate {pred} has no facts")));
    };
    let time = Rational::integer(t);
    let mut found: Option<Vec<Value>> = None;
    for (tuple, ivs) in rel.iter() {
        if tuple.len() < prefix.len() || !IntervalSet::components_contain(ivs, time) {
            continue;
        }
        if !(0..prefix.len()).all(|i| tuple.value(i).semantic_eq(&prefix[i])) {
            continue;
        }
        let rest: Vec<Value> = (prefix.len()..tuple.len())
            .map(|i| tuple.value(i))
            .collect();
        if let Some(prev) = &found {
            if prev != &rest {
                return Err(ExtractError(format!(
                    "{pred} ambiguous at t={t}: {prev:?} vs {rest:?}"
                )));
            }
        } else {
            found = Some(rest);
        }
    }
    found.ok_or_else(|| ExtractError(format!("{pred}{prefix:?} does not hold at t={t}")))
}

fn as_f64(v: &Value, what: &str) -> Result<f64, ExtractError> {
    v.as_f64()
        .ok_or_else(|| ExtractError(format!("{what} is not numeric: {v}")))
}

/// Extracts the market run (Figures 4 and 5 inputs) from a materialization
/// of the ETH-PERP program over an encoded trace.
pub fn extract_run(
    db: &Database,
    trace: &Trace,
    encoded: &EncodedTrace,
) -> Result<MarketRun, ExtractError> {
    let mut run = MarketRun::default();
    for (event, &coord) in trace.events.iter().zip(&encoded.event_coords) {
        let frs = as_f64(&lookup_unique(db, "frs", &[], coord)?[0], "frs")?;
        run.frs.push((event.time, frs));
        if matches!(event.method, Method::ClosePosition) {
            let acc = account_value(event.account);
            let pnl = as_f64(&lookup_unique(db, "pnl", &[acc], coord)?[0], "pnl")?;
            let fee = as_f64(
                &lookup_unique(db, "finalFee", &[acc], coord)?[0],
                "finalFee",
            )?;
            let funding = as_f64(&lookup_unique(db, "funding", &[acc], coord)?[0], "funding")?;
            run.trades.push(TradeSettlement {
                account: event.account,
                time: event.time,
                pnl,
                fee,
                funding,
            });
        }
    }
    if let Some(&last) = encoded.event_coords.last() {
        run.final_skew = as_f64(&lookup_unique(db, "skew", &[], last)?[0], "skew")?;
    } else {
        run.final_skew = trace.initial_skew;
    }
    Ok(run)
}

/// Reads the margin of an account at a timeline coordinate (for reporting
/// and the risk-management example).
pub fn margin_at(db: &Database, account: crate::types::AccountId, coord: i64) -> Option<f64> {
    lookup_unique(db, "margin", &[account_value(account)], coord)
        .ok()
        .and_then(|rest| rest[0].as_f64())
}

/// Reads the position `(size, notional)` of an account at a coordinate.
pub fn position_at(
    db: &Database,
    account: crate::types::AccountId,
    coord: i64,
) -> Option<(f64, f64)> {
    let rest = lookup_unique(db, "position", &[account_value(account)], coord).ok()?;
    Some((rest[0].as_f64()?, rest[1].as_f64()?))
}
