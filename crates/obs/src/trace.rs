//! Structured trace events in a bounded ring buffer.
//!
//! A [`Tracer`] is a cheap cloneable handle (an `Arc`) that components
//! thread through their call stacks; emitting when no tracer is installed
//! costs nothing because callers hold an `Option<Tracer>`. The buffer is
//! bounded: under sustained load old events are dropped (and counted)
//! rather than growing without limit — observability must never OOM the
//! process it observes.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// One structured event: a name, a timestamp relative to tracer creation,
/// and a flat list of fields.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Microseconds since the tracer was created.
    pub ts_us: u64,
    /// Event kind, e.g. `"stratum"`, `"advance"`.
    pub name: &'static str,
    /// Event payload.
    pub fields: Vec<(&'static str, Json)>,
}

impl TraceEvent {
    /// The event as a JSON object (`ts_us` and `ev` first).
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("ts_us", self.ts_us);
        o.set("ev", self.name);
        for (k, v) in &self.fields {
            o.set(k, v.clone());
        }
        o
    }
}

#[derive(Debug)]
struct Inner {
    start: Instant,
    capacity: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

/// A bounded, thread-safe recorder of [`TraceEvent`]s.
#[derive(Clone, Debug)]
pub struct Tracer(Arc<Inner>);

impl Tracer {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A tracer holding at most `capacity` events (oldest dropped first).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer(Arc::new(Inner {
            start: Instant::now(),
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }))
    }

    /// A tracer with the default capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(Tracer::DEFAULT_CAPACITY)
    }

    /// Records one event.
    pub fn emit(&self, name: &'static str, fields: Vec<(&'static str, Json)>) {
        let ts_us = self.0.start.elapsed().as_micros() as u64;
        // Recover rather than panic if another engine thread panicked while
        // holding the ring: the queued events are still structurally valid,
        // and tracing must never cascade one thread's failure into others.
        let mut buf = self.0.buf.lock().unwrap_or_else(PoisonError::into_inner);
        if buf.len() == self.0.capacity {
            buf.pop_front();
            self.0.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(TraceEvent {
            ts_us,
            name,
            fields,
        });
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.0.dropped.load(Ordering::Relaxed)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.0
            .buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` iff no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.0
            .buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect()
    }

    /// Drains the buffer into JSONL text (one compact object per line).
    /// If events were dropped, the first line reports how many.
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        let dropped = self.dropped();
        if dropped > 0 {
            let mut note = Json::object();
            note.set("ts_us", 0u64);
            note.set("ev", "dropped_events");
            note.set("count", dropped);
            out.push_str(&note.to_compact());
            out.push('\n');
        }
        for ev in self.drain() {
            out.push_str(&ev.to_json().to_compact());
            out.push('\n');
        }
        out
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_order() {
        let t = Tracer::new();
        t.emit("a", vec![("k", Json::Int(1))]);
        t.emit("b", vec![]);
        let evs = t.drain();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[1].name, "b");
        assert!(t.is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let t = Tracer::with_capacity(3);
        for i in 0..10i64 {
            t.emit("e", vec![("i", Json::Int(i))]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let jsonl = t.drain_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4); // dropped-note + 3 events
        assert!(lines[0].contains("dropped_events"));
        for line in &lines {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn poisoned_tracer_keeps_working() {
        let t = Tracer::new();
        t.emit("before", vec![]);
        let t2 = t.clone();
        // Panic while holding the ring lock to poison the mutex.
        let _ = std::panic::catch_unwind(move || {
            let _guard = t2.0.buf.lock().unwrap();
            panic!("poison the tracer");
        });
        t.emit("after", vec![]);
        assert_eq!(t.len(), 2);
        let evs = t.drain();
        assert_eq!(evs[0].name, "before");
        assert_eq!(evs[1].name, "after");
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let t = Tracer::new();
        t.emit("x", vec![("s", Json::from("a\"b")), ("f", Json::from(0.5))]);
        let jsonl = t.drain_jsonl();
        let v = Json::parse(jsonl.trim()).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b"));
    }
}
