//! Accounting invariants of the engine's observability layer.
//!
//! The per-rule and per-stratum breakdowns in [`RunStats`] are not
//! best-effort samples: for a batch materialization they must tie out
//! exactly against the run totals, and the totals themselves must not
//! depend on the fixpoint strategy. These tests pin both properties over
//! the corpus programs and the random-program generator's fact shapes.

use chronolog_core::{parse_source, Database, Reasoner, ReasonerConfig, RunStats};
use chronolog_obs::SpanRecorder;

/// Every checked-in corpus program, with a horizon wide enough to cover
/// its inline facts.
fn corpus() -> Vec<(&'static str, String, i64, i64)> {
    ["fibonacci", "funding", "margin", "netting", "sla"]
        .into_iter()
        .map(|name| {
            let path = format!("{}/../../corpus/{name}.dmtl", env!("CARGO_MANIFEST_DIR"));
            let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            (name, src, 0, 40)
        })
        .collect()
}

fn materialize(src: &str, lo: i64, hi: i64, semi_naive: bool) -> (RunStats, String) {
    let (program, facts) = parse_source(src).unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    let m = Reasoner::new(
        program,
        ReasonerConfig {
            semi_naive,
            ..ReasonerConfig::default().with_horizon(lo, hi)
        },
    )
    .unwrap()
    .materialize(&db)
    .unwrap();
    let text = m.database.to_facts_text();
    (m.stats, text)
}

/// Per-rule and per-stratum sections must sum exactly to the run totals.
fn check_breakdown_ties_out(name: &str, stats: &RunStats) {
    let rule_body_evals: usize = stats.rules.iter().map(|r| r.body_evaluations).sum();
    assert_eq!(
        rule_body_evals, stats.rule_evaluations,
        "{name}: per-rule body_evaluations must sum to rule_evaluations"
    );
    let rule_tuples: usize = stats.rules.iter().map(|r| r.tuples_derived).sum();
    assert_eq!(
        rule_tuples, stats.derived_tuples,
        "{name}: per-rule tuples_derived must sum to derived_tuples"
    );
    let rule_components: usize = stats.rules.iter().map(|r| r.components_added).sum();
    assert_eq!(
        rule_components, stats.derived_components,
        "{name}: per-rule components_added must sum to derived_components"
    );

    let stratum_evals: usize = stats.strata.iter().map(|s| s.rule_evaluations).sum();
    assert_eq!(
        stratum_evals, stats.rule_evaluations,
        "{name}: strata evals"
    );
    let stratum_tuples: usize = stats.strata.iter().map(|s| s.tuples_derived).sum();
    assert_eq!(
        stratum_tuples, stats.derived_tuples,
        "{name}: strata tuples"
    );
    let stratum_components: usize = stats.strata.iter().map(|s| s.components_added).sum();
    assert_eq!(
        stratum_components, stats.derived_components,
        "{name}: strata components"
    );
    assert_eq!(
        stats.strata.len(),
        stats.iterations.len(),
        "{name}: one StratumStats per executed stratum"
    );
    for s in &stats.strata {
        assert_eq!(
            s.iterations, stats.iterations[s.stratum],
            "{name}: stratum {} iteration count mismatch",
            s.stratum
        );
    }
    // Derivation flow is monotone per rule: a rule cannot add more tuples
    // than it produced derivations, nor more components than it emitted.
    for r in &stats.rules {
        assert!(
            r.tuples_derived <= r.derivations,
            "{name}: rule {} derived {} tuples from {} derivations",
            r.rule,
            r.tuples_derived,
            r.derivations
        );
        assert!(
            r.components_added <= r.components_emitted,
            "{name}: rule {} added {} components but emitted {}",
            r.rule,
            r.components_added,
            r.components_emitted
        );
    }
}

#[test]
fn per_rule_sums_equal_run_totals_on_corpus() {
    for (name, src, lo, hi) in corpus() {
        let (stats, _) = materialize(&src, lo, hi, true);
        check_breakdown_ties_out(name, &stats);
    }
}

#[test]
fn naive_mode_breakdown_also_ties_out() {
    for (name, src, lo, hi) in corpus() {
        let (stats, _) = materialize(&src, lo, hi, false);
        check_breakdown_ties_out(name, &stats);
    }
}

/// The outcome-side stats (what was derived) are strategy-independent:
/// semi-naive and naive fixpoints must report identical derived tuples and
/// components, even though their effort-side stats (rule evaluations)
/// legitimately differ.
#[test]
fn derivation_totals_are_strategy_independent() {
    for (name, src, lo, hi) in corpus() {
        let (semi, semi_text) = materialize(&src, lo, hi, true);
        let (naive, naive_text) = materialize(&src, lo, hi, false);
        assert_eq!(semi_text, naive_text, "{name}: databases diverge");
        assert_eq!(
            semi.derived_tuples, naive.derived_tuples,
            "{name}: derived_tuples depends on fixpoint strategy"
        );
        assert_eq!(
            semi.total_components, naive.total_components,
            "{name}: total_components depends on fixpoint strategy"
        );
        // Effort-side stats (rule_evaluations) are NOT compared: on tiny
        // programs semi-naive's per-delta bookkeeping can cost an extra
        // evaluation, and that is fine — only outcomes must agree.
    }
}

/// Rules that never fire still appear in the breakdown (with zero
/// evaluations), so dashboards can distinguish "dead rule" from "missing
/// data"; rule indices are the program order.
#[test]
fn every_rule_is_accounted_for() {
    for (name, src, lo, hi) in corpus() {
        let (program, _) = parse_source(&src).unwrap();
        let n_rules = program.rules.len();
        let (stats, _) = materialize(&src, lo, hi, true);
        assert_eq!(stats.rules.len(), n_rules, "{name}: one RuleStats per rule");
        for (i, r) in stats.rules.iter().enumerate() {
            assert_eq!(r.rule, i, "{name}: rule index order");
            assert!(
                !r.head.is_empty(),
                "{name}: rule {i} missing head predicate"
            );
            assert!(!r.label.is_empty(), "{name}: rule {i} missing label");
        }
    }
}

/// `index_probes + full_scans` counts every positive-atom lookup, so it is
/// an access-path-independent quantity: flipping the value index or the
/// time index on/off only moves lookups between the two buckets.
#[test]
fn join_path_counters_account_for_every_lookup() {
    for (name, src, lo, hi) in corpus() {
        let (program, facts) = parse_source(&src).unwrap();
        let mut db = Database::new();
        db.extend_facts(&facts).unwrap();
        let mut totals = Vec::new();
        let mut tuple_totals = Vec::new();
        for (index_joins, time_index, row_store) in [
            (true, true, false),
            (true, false, false),
            (false, true, false),
            (false, false, false),
            (true, true, true),
            (true, false, true),
            (false, true, true),
            (false, false, true),
        ] {
            // Reordering is pinned off: the call-multiset comparison below
            // needs the same join order in all eight configurations, and the
            // cost model's distinct counts (hence the chosen order) depend
            // on which indexes exist. Reorder-on equivalence is covered by
            // the plan_equivalence suite. The row-store half of the matrix
            // proves the counters are a property of the access path, not of
            // the storage layout underneath it.
            let stats = Reasoner::new(
                program.clone(),
                ReasonerConfig {
                    index_joins,
                    time_index,
                    row_store,
                    cost_based_reorder: false,
                    ..ReasonerConfig::default().with_horizon(lo, hi)
                },
            )
            .unwrap()
            .materialize(&db)
            .unwrap()
            .stats;
            assert!(
                stats.time_index_probes <= stats.index_probes,
                "{name}: time-index probes are a subset of index probes"
            );
            if !time_index {
                assert_eq!(
                    stats.time_index_probes, 0,
                    "{name}: ablated run must not touch the time index"
                );
                assert_eq!(stats.interval_clips_avoided, 0, "{name}: ablated clips");
            }
            assert!(
                stats.interval_clips_avoided <= stats.index_scan_avoided,
                "{name}: clips avoided only on tuples an index already skipped"
            );
            totals.push(stats.index_probes + stats.full_scans);
            // Per lookup against a present relation every stored tuple is
            // either walked (`scanned`), visited through an index probe
            // (`probed`), or skipped by that probe (`avoided`) — so the sum
            // is the total tuple volume, independent of access path.
            tuple_totals
                .push(stats.scanned_tuples + stats.probed_tuples + stats.index_scan_avoided);
        }
        assert!(
            totals.windows(2).all(|w| w[0] == w[1]),
            "{name}: lookup totals differ across access paths: {totals:?}"
        );
        assert!(
            tuple_totals.windows(2).all(|w| w[0] == w[1]),
            "{name}: tuple-volume totals differ across access paths: {tuple_totals:?}"
        );
    }
}

/// Corrected estimates change what the planner believes, never what a
/// lookup does: on a workload whose sustained misestimate forces adaptive
/// replans, the join-path counters — including the
/// `scanned + probed + avoided` tuple-volume partition — must be identical
/// with adaptivity on and off, across the full access-path matrix (join
/// order pinned, as in `join_path_counters_account_for_every_lookup`).
#[test]
fn corrected_estimates_preserve_tuple_volume_accounting() {
    let src = "run(X) :- seed(X).\n\
               run(X) :- boxminus[1, 1] run(X), fan(X, Y).\n\
               seed(0)@0.";
    let (program, facts) = parse_source(src).unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    let span = chronolog_core::Interval::closed_int(0, 24);
    for i in 0..57 {
        db.assert_over(
            "fan",
            &[
                chronolog_core::Value::Int(0),
                chronolog_core::Value::Int(100 + i),
            ],
            span,
        );
    }
    for k in 1..8 {
        db.assert_over(
            "fan",
            &[chronolog_core::Value::Int(k), chronolog_core::Value::Int(0)],
            span,
        );
    }
    let mut totals = Vec::new();
    let mut tuple_totals = Vec::new();
    let mut triggered_any = false;
    for adaptive in [true, false] {
        for (index_joins, time_index) in
            [(true, true), (true, false), (false, true), (false, false)]
        {
            let stats = Reasoner::new(
                program.clone(),
                ReasonerConfig {
                    adaptive,
                    index_joins,
                    time_index,
                    cost_based_reorder: false,
                    ..ReasonerConfig::default().with_horizon(0, 24)
                },
            )
            .unwrap()
            .materialize(&db)
            .unwrap()
            .stats;
            triggered_any |= adaptive && stats.replans_triggered > 0;
            totals.push(stats.index_probes + stats.full_scans);
            tuple_totals
                .push(stats.scanned_tuples + stats.probed_tuples + stats.index_scan_avoided);
        }
    }
    assert!(
        triggered_any,
        "workload must actually exercise the adaptive replan path"
    );
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "lookup totals differ across adaptive/access configs: {totals:?}"
    );
    assert!(
        tuple_totals.windows(2).all(|w| w[0] == w[1]),
        "tuple-volume totals differ across adaptive/access configs: {tuple_totals:?}"
    );
}

/// `Relation::remove` must shrink what the planner sees: after a session
/// retracts most of a relation, the repair's replanned estimate reflects
/// the survivors, not the phantom rows the emptied entries used to count
/// (the statistics-staleness bug fixed alongside stats-json v8).
#[test]
fn retraction_shrinks_planner_estimates_to_survivors() {
    let src = "out(X, Y) :- big(X, Y), sel(X).";
    let (program, _) = parse_source(src).unwrap();
    let mut initial = Database::new();
    for i in 0..40 {
        initial.assert_at(
            "big",
            &[chronolog_core::Value::Int(i), chronolog_core::Value::Int(i)],
            0,
        );
        initial.assert_at("sel", &[chronolog_core::Value::Int(i)], 0);
    }
    let mut session = Reasoner::new(program, ReasonerConfig::default())
        .unwrap()
        .into_session(&initial, 0)
        .unwrap();
    for i in 4..40 {
        session
            .retract(chronolog_core::Fact::at(
                "big",
                vec![chronolog_core::Value::Int(i), chronolog_core::Value::Int(i)],
                0,
            ))
            .unwrap();
    }
    let stats = session.stats();
    assert!(
        stats.repairs.incremental > 0,
        "retractions must exercise the incremental repair path: {:?}",
        stats.repairs
    );
    // The final replan (after the last retraction's repair) estimated the
    // rule against 4 surviving `big` rows; stale length accounting would
    // have kept it at the 40-row scale.
    let plan = stats
        .plan_explains
        .iter()
        .find(|p| p.rule == 0)
        .expect("rule 0 plan explain");
    assert!(
        plan.est_rows <= 8,
        "estimate still sees phantom rows: est {} rows after 36 of 40 retracted",
        plan.est_rows
    );
}

/// A lookup against a relation with no facts at all is still a lookup:
/// it must land in `full_scans` (walking zero tuples), not vanish.
#[test]
fn missing_relations_count_as_zero_tuple_full_scans() {
    let (program, facts) = parse_source("h(X) :- e(X), ghost(X).\ne(a)@0.").unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    // Textual order: both `e` and `ghost` are looked up before the join
    // comes up empty.
    let stats = Reasoner::new(
        program.clone(),
        ReasonerConfig {
            cost_based_reorder: false,
            ..ReasonerConfig::default().with_horizon(0, 5)
        },
    )
    .unwrap()
    .materialize(&db)
    .unwrap()
    .stats;
    assert!(
        stats.full_scans >= 1,
        "ghost lookup must be accounted: {stats:?}"
    );
    assert!(stats.index_probes + stats.full_scans >= 2);

    // The cost-based planner estimates `ghost` at zero rows, orders it
    // first, and proves the join empty after that single lookup — fewer
    // lookups, but the one performed is still accounted.
    let stats = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 5))
        .unwrap()
        .materialize(&db)
        .unwrap()
        .stats;
    assert!(
        stats.full_scans + stats.index_probes >= 1,
        "reordered ghost lookup must be accounted: {stats:?}"
    );
    assert!(
        stats.reorders_applied >= 1,
        "planner should hoist the empty relation: {stats:?}"
    );
}

/// The persistent worker pool is spawned at most once per run and reused
/// across iterations and strata; respawn accounting must reflect that.
#[test]
fn worker_pool_spawns_at_most_once_per_run() {
    for (name, src, lo, hi) in corpus() {
        let (program, facts) = parse_source(&src).unwrap();
        let mut db = Database::new();
        db.extend_facts(&facts).unwrap();
        let stats = Reasoner::new(
            program,
            ReasonerConfig {
                threads: 4,
                ..ReasonerConfig::default().with_horizon(lo, hi)
            },
        )
        .unwrap()
        .materialize(&db)
        .unwrap()
        .stats;
        assert!(
            stats.pool_respawns <= 1,
            "{name}: pool must be constructed at most once per run, got {}",
            stats.pool_respawns
        );
        assert!(
            stats.pool_respawns as usize <= stats.strata.len().max(1),
            "{name}: respawns bounded by executed strata"
        );
        // A sequential run never builds the pool at all.
        let (seq, _) = materialize(&src, lo, hi, true);
        assert_eq!(
            seq.pool_respawns, 0,
            "{name}: sequential run spawned a pool"
        );
        assert_eq!(seq.pool_reuses, 0, "{name}: sequential run reused a pool");
    }
}

/// Profiler spans and stats wall clocks measure the same run, so they must
/// agree: each `stratum {i}` span brackets that stratum's timed section
/// (span duration >= reported `wall_us`, within µs-truncation slack), and
/// on every lane the root-level spans run serially, so their summed
/// duration cannot exceed the run's total elapsed time.
#[test]
fn profiler_spans_tie_out_against_stratum_walls() {
    for (name, src, lo, hi) in corpus() {
        for threads in [1, 4] {
            let (program, facts) = parse_source(&src).unwrap();
            let mut db = Database::new();
            db.extend_facts(&facts).unwrap();
            let recorder = SpanRecorder::new();
            let stats = Reasoner::new(
                program,
                ReasonerConfig {
                    threads,
                    profiler: Some(recorder.clone()),
                    ..ReasonerConfig::default().with_horizon(lo, hi)
                },
            )
            .unwrap()
            .materialize(&db)
            .unwrap()
            .stats;

            let lanes = recorder.lanes();
            let span_dur = |target: &str| -> Option<u64> {
                lanes
                    .iter()
                    .flat_map(|(_, records)| records.iter())
                    .find(|r| r.name == target)
                    .map(|r| r.dur_us)
            };
            for s in &stats.strata {
                let dur = span_dur(&format!("stratum {}", s.stratum))
                    .unwrap_or_else(|| panic!("{name}: no span for stratum {}", s.stratum));
                // The span opens before the stratum wall clock starts and
                // closes after it stops; truncating both endpoints to whole
                // µs can shave at most 1 µs off either side.
                assert!(
                    dur + 2 >= s.wall.as_micros() as u64,
                    "{name} ({threads} threads): stratum {} span {}us shorter than wall {}us",
                    s.stratum,
                    dur,
                    s.wall.as_micros() as u64
                );
            }
            // The `materialize` span brackets the whole run (it opens
            // before and closes after the `elapsed` timer), so it both
            // dominates the reported elapsed time and bounds every lane.
            let mat_us = span_dur("materialize").expect("materialize root span");
            assert!(
                mat_us + 2 >= stats.elapsed.as_micros() as u64,
                "{name} ({threads} threads): materialize span {}us shorter than elapsed {:?}",
                mat_us,
                stats.elapsed
            );
            for (lane, records) in &lanes {
                let roots: Vec<_> = records.iter().filter(|r| r.depth == 0).collect();
                let sum: u64 = roots.iter().map(|r| r.dur_us).sum();
                // Root spans on one lane never overlap (one thread runs
                // them back to back) and all fall inside the materialize
                // window, so their sum is bounded by it (1 µs truncation
                // slack per span).
                assert!(
                    sum <= mat_us + roots.len() as u64,
                    "{name} ({threads} threads): lane {lane} root spans sum to {sum}us \
                     but materialize took {mat_us}us"
                );
            }
        }
    }
}

/// An empty database still produces a well-formed (all-zero) breakdown.
#[test]
fn stats_on_empty_input_are_well_formed() {
    let (program, _) =
        parse_source("p(X) :- q(X).\nr(X) :- boxminus r(X).\nr(X) :- p(X).").unwrap();
    let m = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 10))
        .unwrap()
        .materialize(&Database::new())
        .unwrap();
    check_breakdown_ties_out("empty", &m.stats);
    assert_eq!(m.stats.derived_tuples, 0);
    assert!(m.stats.rules.iter().all(|r| r.tuples_derived == 0));
}
