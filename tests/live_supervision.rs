//! Live supervision: the monitored contract program (risk extension)
//! running in a streaming session — the full realization of the paper's
//! conclusion: a supervisor watching leverage and margin alerts *as the
//! market happens*, with every alert final the moment it is derived.

use chronolog_core::{Database, Fact, Reasoner, ReasonerConfig, Value};
use chronolog_market::{generate, ScenarioConfig};
use chronolog_perp::encode::account_value;
use chronolog_perp::monitor::{build_monitored_program, MonitorParams};
use chronolog_perp::program::TimelineMode;
use chronolog_perp::{AccountId, MarketParams, MarketSpec, Method};

#[test]
fn monitored_contract_streams_with_live_alerts() {
    let params = MarketParams::default();
    let monitor = MonitorParams {
        max_leverage: 10.0,
        maintenance_ratio: 0.05,
    };
    let program = build_monitored_program(&params, &monitor, TimelineMode::EventEpochs).unwrap();

    // Hand-built scenario: a trader levers up past the threshold.
    let events: Vec<(Method, f64)> = vec![
        (Method::TransferMargin { amount: 1_000.0 }, 1_000.0),
        (Method::ModifyPosition { size: 2.0 }, 1_000.0), // 2k exposure, 2x
        (Method::ModifyPosition { size: 13.0 }, 1_000.0), // 15k exposure, 15x
        (Method::ClosePosition, 1_000.0),
    ];
    let mut genesis = Database::new();
    genesis.assert_at("start", &[], 0);
    genesis.assert_at("startSkew", &[Value::num(0.0)], 0);
    genesis.assert_at("startFrs", &[Value::num(0.0)], 0);
    genesis.assert_at("ts", &[Value::Int(0)], 0);
    let mut session = Reasoner::new(program, ReasonerConfig::default())
        .unwrap()
        .into_session(&genesis, 0)
        .unwrap();

    let acc = account_value(AccountId(1));
    let mut alert_epochs = Vec::new();
    for (i, (method, price)) in events.iter().enumerate() {
        let epoch = i as i64 + 1;
        let fact = match *method {
            Method::TransferMargin { amount } => {
                Fact::at("tranM", vec![acc, Value::num(amount)], epoch)
            }
            Method::Withdraw => Fact::at("withdraw", vec![acc], epoch),
            Method::ModifyPosition { size } => {
                Fact::at("modPos", vec![acc, Value::num(size)], epoch)
            }
            Method::ClosePosition => Fact::at("closePos", vec![acc], epoch),
        };
        session.submit(fact).unwrap();
        session
            .submit(Fact::at("price", vec![Value::num(*price)], epoch))
            .unwrap();
        session
            .submit(Fact::at("ts", vec![Value::Int(epoch * 60)], epoch))
            .unwrap();
        session.advance_to(epoch).unwrap();
        // The supervisor reads alerts at the watermark, live.
        if session.database().holds_at("highLeverage", &[acc], epoch) {
            alert_epochs.push(epoch);
        }
    }
    // The alert fires exactly while the oversized position is open.
    assert_eq!(alert_epochs, vec![3]);
    // And the margin keeps being tracked after the close.
    assert!(session
        .database()
        .relation(chronolog_core::Symbol::new("margin"))
        .is_some());
}

/// Multi-market consistency on generated scenarios: the combined program
/// over several simulated markets equals one reference engine per market.
#[test]
fn multi_market_generated_scenarios_match_references() {
    for seed in [5u64, 6] {
        let mut eth_config = ScenarioConfig::new("eth", seed, 1_700_000_000, 12, 3, 420.0, 1_350.0);
        eth_config.duration_secs = 1_800;
        let mut btc_config =
            ScenarioConfig::new("btc", seed + 100, 1_700_000_000, 9, 2, -55.0, 19_200.0);
        btc_config.duration_secs = 1_800;
        let markets = vec![
            MarketSpec {
                id: "ethperp".into(),
                params: MarketParams::default(),
                trace: generate(&eth_config),
            },
            MarketSpec {
                id: "btcperp".into(),
                params: MarketParams {
                    taker_fee: 0.005,
                    maker_fee: 0.001,
                    ..MarketParams::default()
                },
                trace: generate(&btc_config),
            },
        ];
        let runs = chronolog_perp::run_multi_market(&markets).unwrap();
        for spec in &markets {
            let reference =
                chronolog_perp::ReferenceEngine::<f64>::run_trace(spec.params, &spec.trace);
            assert_eq!(runs[&spec.id].frs, reference.frs, "{} seed {seed}", spec.id);
            assert_eq!(
                runs[&spec.id].trades, reference.trades,
                "{} seed {seed}",
                spec.id
            );
        }
    }
}
