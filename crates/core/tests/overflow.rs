//! Temporal-overflow surfacing: window shifts that leave the `i64`
//! rational timeline must come back as `Error::TimeOverflow`, never as a
//! panic. Before the checked arithmetic landed, `Rational::from_i128`
//! panicked deep inside the `⊟`/`⊞` transforms.

use chronolog_core::{parse_source, Database, Error, Reasoner, ReasonerConfig};

/// Just under `i64::MAX`, so a four-digit shift overflows.
const HUGE: &str = "9223372036854775000";

fn run(src: &str) -> Result<(), Error> {
    let (program, facts) = parse_source(src).unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    Reasoner::new(program, ReasonerConfig::default())?
        .materialize(&db)
        .map(|_| ())
}

#[test]
fn body_window_shift_overflow_is_an_error_not_a_panic() {
    let src = format!("h(X) :- diamondminus[0, 10000] p(X).\np(a)@{HUGE}.");
    match run(&src) {
        Err(Error::TimeOverflow(_)) => {}
        other => panic!("expected TimeOverflow, got {other:?}"),
    }
}

#[test]
fn head_operator_overflow_is_an_error_not_a_panic() {
    let src = format!("boxplus[0, 10000] h(X) :- p(X).\np(a)@{HUGE}.");
    match run(&src) {
        Err(Error::TimeOverflow(_)) => {}
        other => panic!("expected TimeOverflow, got {other:?}"),
    }
}

#[test]
fn in_range_windows_still_work_near_the_extremes() {
    let src = format!("h(X) :- diamondminus[0, 5] p(X).\np(a)@{HUGE}.");
    let (program, facts) = parse_source(&src).unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    let m = Reasoner::new(program, ReasonerConfig::default())
        .unwrap()
        .materialize(&db)
        .unwrap();
    assert!(m.database.to_facts_text().contains("h(a)"));
}
