//! The temporal database: ground tuples annotated with interval sets.
//!
//! A database `D` in the paper is a finite set of facts `P(v̄)@ρ`; here each
//! `(P, v̄)` maps to the coalesced [`IntervalSet`] of all its annotations,
//! which is the canonical representation of the induced interpretation.
//!
//! ## Storage layouts
//!
//! Relations support two layouts behind one API, selected per database via
//! [`StorageMode`]:
//!
//! * **Columnar** (default) — constants are interned to dense `u32` vids
//!   (see `crate::intern`) and stored struct-of-arrays: one flat `Vec<u32>`
//!   per argument position, plus a single interval **arena** per relation
//!   holding every tuple's components contiguously behind `(offset, len)`
//!   handles. Joins, value-index probes, and the time index walk flat
//!   memory; a snapshot `clone` is a handful of column memcpys.
//! * **Row** (`--row-store` ablation) — the historical layout: one boxed
//!   `Tuple` and one owned [`IntervalSet`] per entry. Kept as the
//!   bit-for-bit reference the CI ablation diff compares against.
//!
//! Both layouts share the same tuple-id space semantics, the same secondary
//! value indexes, and the same time index, so candidate sets — and with
//! them every scanned/probed/avoided counter — are identical across modes.

use crate::ast::Fact;
use crate::error::Result;
use crate::hash::{hash_ids, FxHashMap};
use crate::intern::{self, NONE_VID};
use crate::symbol::Symbol;
use crate::value::{Tuple, Value};
use mtl_temporal::{Interval, IntervalSet, Rational};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::RwLock;

/// Which physical layout a [`Database`] (and every relation it creates)
/// uses. See the module docs; `Columnar` is the default, `Row` is the
/// ablation baseline behind the `--row-store` flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StorageMode {
    /// Struct-of-arrays columns of interned value ids + interval arena.
    #[default]
    Columnar,
    /// Row-oriented `Vec<(Tuple, IntervalSet)>` (ablation baseline).
    Row,
}

/// Process-wide count of flat column buffers copied by columnar
/// `Relation::clone` (value columns + interval arena per clone). Surfaced
/// in the stats-json `storage` section as `column_clones`.
static COLUMN_CLONES: AtomicU64 = AtomicU64::new(0);

/// Cumulative count of column buffers memcpy'd by snapshot clones.
pub(crate) fn column_clone_count() -> u64 {
    COLUMN_CLONES.load(AtomicOrdering::Relaxed)
}

/// Index key of one argument value, normalized so semantically equal values
/// (`3` and `3.0`) land in the same bucket. Numeric values key on the `f64`
/// bit pattern — exactly the equivalence [`Value::semantic_eq`] uses, so an
/// index probe never misses a tuple a full scan would unify with.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum IndexKey {
    Num(u64),
    Sym(Symbol),
    Bool(bool),
}

impl IndexKey {
    fn of(v: &Value) -> IndexKey {
        match v.as_f64() {
            // `-0.0` is normalized at Value construction and `Int` cannot
            // produce it, so the bit pattern is canonical.
            Some(f) => IndexKey::Num(f.to_bits()),
            None => match v {
                Value::Sym(s) => IndexKey::Sym(*s),
                Value::Bool(b) => IndexKey::Bool(*b),
                Value::Int(_) | Value::Num(_) => unreachable!("numeric handled above"),
            },
        }
    }
}

/// Per-argument-position secondary indexes: `value → tuple ids`, built
/// lazily on first probe and maintained incrementally afterwards. Bucket id
/// lists are kept in ascending (insertion) order so a probe visits tuples
/// in the same order a full scan would — determinism is preserved.
#[derive(Default, Debug, Clone)]
struct SecondaryIndexes {
    by_pos: FxHashMap<usize, FxHashMap<IndexKey, Vec<u32>>>,
    time: Option<TimeIndex>,
}

/// Minimum pending-tail length at which a [`TimeIndex`] merges the tail
/// into its sorted entries; probes scan the tail linearly below this, so
/// read-side calls never need a write lock. The effective threshold grows
/// with the index (an eighth of the sorted run) so sustained insertion
/// streams pay amortized-linear maintenance rather than re-merging a large
/// run every few dozen notes.
const TIME_INDEX_PENDING_MAX: usize = 64;

/// Sorted-endpoint time index: every finite interval component of every
/// tuple as a `(lo, hi, id)` entry ordered by `lo`. A window probe
/// binary-searches the entries whose component can overlap the window —
/// `lo ∈ [window.lo − max_len, window.hi]` — and filters by `hi`.
///
/// The index is an over-approximation: endpoint closedness is ignored and
/// components superseded by later coalescing are retained. That is sound
/// because the union of all indexed components always covers the tuple's
/// true interval set (every `insert`ed interval and every `merge` delta is
/// indexed), so a probe can return false positives — removed by the
/// caller's exact `intersect_interval` clip — but never false negatives.
#[derive(Clone, Debug)]
struct TimeIndex {
    /// Sorted by `(lo, hi, id)`.
    entries: Vec<(Rational, Rational, u32)>,
    /// Recent insertions not yet merged into `entries`, scanned linearly.
    pending: Vec<(Rational, Rational, u32)>,
    /// Ids of tuples with an unbounded (or overflow-length) component;
    /// always candidates. Sorted, deduplicated.
    unbounded: Vec<u32>,
    /// Upper bound on the length of any indexed component; bounds how far
    /// before a window an overlapping component can start.
    max_len: Rational,
}

impl TimeIndex {
    fn build<'a>(entries: impl Iterator<Item = (u32, &'a [Interval])>) -> TimeIndex {
        let mut idx = TimeIndex {
            entries: Vec::new(),
            pending: Vec::new(),
            unbounded: Vec::new(),
            max_len: Rational::ZERO,
        };
        for (id, comps) in entries {
            for comp in comps {
                idx.note(comp, id);
            }
        }
        idx.flush();
        idx
    }

    /// Records one interval component of tuple `id`.
    fn note(&mut self, comp: &Interval, id: u32) {
        let bounded = comp.finite_endpoints().and_then(|(lo, hi)| {
            // Overflow-length components are demoted to `unbounded`.
            hi.checked_sub(lo).map(|len| (lo, hi, len))
        });
        match bounded {
            Some((lo, hi, len)) => {
                if len > self.max_len {
                    self.max_len = len;
                }
                self.pending.push((lo, hi, id));
                if self.pending.len() > TIME_INDEX_PENDING_MAX.max(self.entries.len() / 8) {
                    self.flush();
                }
            }
            None => {
                if let Err(pos) = self.unbounded.binary_search(&id) {
                    self.unbounded.insert(pos, id);
                }
            }
        }
    }

    /// Merges the pending tail into the sorted entries. Only the tail is
    /// sorted; the runs are then stitched with a linear merge (or a plain
    /// append when the tail lands entirely after the sorted run, the
    /// common case for monotone streams), so a flush never re-sorts the
    /// full index.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable();
        if self.entries.last() <= self.pending.first() {
            self.entries.append(&mut self.pending);
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + self.pending.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < self.pending.len() {
            if self.entries[i] <= self.pending[j] {
                merged.push(self.entries[i]);
                i += 1;
            } else {
                merged.push(self.pending[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        merged.extend_from_slice(&self.pending[j..]);
        self.entries = merged;
        self.pending.clear();
    }

    /// Tuple ids whose indexed extent can overlap `window`, in ascending
    /// (= insertion) order, so scan determinism is preserved.
    fn probe_into(&self, window: &Interval, ids: &mut Vec<u32>) {
        let wlo = window.lo().finite();
        let whi = window.hi().finite();
        let start = match wlo.and_then(|a| a.checked_sub(self.max_len)) {
            // A component starting before `window.lo − max_len` ends
            // before the window; skip it. On −∞ or overflow, scan from 0.
            Some(cut) => self.entries.partition_point(|&(lo, _, _)| lo < cut),
            None => 0,
        };
        let end = match whi {
            Some(b) => self.entries.partition_point(|&(lo, _, _)| lo <= b),
            None => self.entries.len(),
        };
        let overlaps =
            |lo: Rational, hi: Rational| wlo.is_none_or(|a| hi >= a) && whi.is_none_or(|b| lo <= b);
        ids.clear();
        ids.extend_from_slice(&self.unbounded);
        for &(lo, hi, id) in &self.entries[start..end] {
            if overlaps(lo, hi) {
                ids.push(id);
            }
        }
        for &(lo, hi, id) in &self.pending {
            if overlaps(lo, hi) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
    }
}

/// Row layout: one boxed tuple and one owned interval set per entry.
#[derive(Default, Debug, Clone)]
pub(crate) struct RowStore {
    pub(crate) entries: Vec<(Tuple, IntervalSet)>,
    ids: FxHashMap<Tuple, u32>,
}

/// Arena slab handle: `len` live components at `off`, in a slab of
/// power-of-two capacity `cap` (0 for the never-allocated empty handle).
#[derive(Clone, Copy, Default, Debug)]
struct Handle {
    off: u32,
    len: u32,
    cap: u32,
}

/// The per-relation interval arena: every tuple's components live in one
/// flat `Vec<Interval>` in power-of-two slabs. Emptied or outgrown slabs
/// go on a per-size free list and are reused by later allocations, so
/// repair churn (retract → re-derive) recycles space instead of leaking it.
#[derive(Default, Clone, Debug)]
struct Arena {
    data: Vec<Interval>,
    /// Free slab offsets by capacity class (index = log2 of capacity).
    free: Vec<Vec<u32>>,
    freed: u64,
    reused: u64,
}

impl Arena {
    fn alloc(&mut self, len: usize) -> Handle {
        debug_assert!(len > 0, "empty sets use the default handle");
        let cap = len.next_power_of_two();
        let class = cap.trailing_zeros() as usize;
        if let Some(off) = self.free.get_mut(class).and_then(Vec::pop) {
            self.reused += 1;
            return Handle {
                off,
                len: len as u32,
                cap: cap as u32,
            };
        }
        let off = u32::try_from(self.data.len()).expect("interval arena offset overflow");
        // Pad the slab to its full capacity; the pad values are never read
        // (slices stop at `len`).
        self.data.resize(self.data.len() + cap, Interval::ALL);
        Handle {
            off,
            len: len as u32,
            cap: cap as u32,
        }
    }

    fn release(&mut self, h: Handle) {
        if h.cap == 0 {
            return;
        }
        let class = h.cap.trailing_zeros() as usize;
        if self.free.len() <= class {
            self.free.resize(class + 1, Vec::new());
        }
        self.free[class].push(h.off);
        self.freed += 1;
    }

    fn slice(&self, h: Handle) -> &[Interval] {
        &self.data[h.off as usize..(h.off + h.len) as usize]
    }
}

/// Open-addressing tuple-id table keyed by the tuples' vid columns
/// themselves: slots hold `id + 1` (0 = empty) and key comparison reads
/// the columns, so the table owns no keys and clones as one memcpy.
#[derive(Default, Clone, Debug)]
struct IdTable {
    slots: Vec<u32>,
    len: usize,
}

impl IdTable {
    fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                s => {
                    let id = s - 1;
                    if eq(id) {
                        return Some(id);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts an id whose key is known absent.
    fn insert_new(&mut self, hash: u64, id: u32, hash_of: impl Fn(u32) -> u64) {
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.grow(&hash_of);
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = id + 1;
        self.len += 1;
    }

    fn grow(&mut self, hash_of: impl Fn(u32) -> u64) {
        let cap = (self.slots.len() * 2).max(16);
        let mut slots = vec![0u32; cap];
        let mask = cap - 1;
        for &s in &self.slots {
            if s != 0 {
                let mut i = (hash_of(s - 1) as usize) & mask;
                while slots[i] != 0 {
                    i = (i + 1) & mask;
                }
                slots[i] = s;
            }
        }
        self.slots = slots;
    }
}

/// Columnar layout: interned-vid columns + interval arena (module docs).
#[derive(Default, Debug, Clone)]
pub(crate) struct ColumnStore {
    /// One column per argument position up to the widest arity seen;
    /// positions past a tuple's arity hold `NONE_VID`.
    cols: Vec<Vec<u32>>,
    /// Arity of each tuple.
    lens: Vec<u32>,
    /// Arena handle of each tuple's interval components.
    handles: Vec<Handle>,
    arena: Arena,
    ids: IdTable,
    /// Live tuple count per semantic class per position (exact, maintained
    /// on tuple birth/death — an entry whose interval set empties out stops
    /// counting); `len()` of each map feeds the planner's distinct
    /// estimates. See [`Relation::distinct_count`].
    sid_live: Vec<FxHashMap<u32, u32>>,
}

impl ColumnStore {
    pub(crate) fn len(&self) -> usize {
        self.lens.len()
    }

    /// The full vid column for `pos`, or `None` when no stored tuple
    /// reaches that arity. Hot loops hoist these slices once instead of
    /// paying `vid_at`'s outer-vector lookup per candidate.
    #[inline]
    pub(crate) fn col(&self, pos: usize) -> Option<&[u32]> {
        self.cols.get(pos).map(Vec::as_slice)
    }

    /// The per-tuple arity column (parallel to every vid column).
    #[inline]
    pub(crate) fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// The vid at `pos` of tuple `id` (`NONE_VID` past the tuple's arity).
    #[inline]
    pub(crate) fn vid_at(&self, pos: usize, id: u32) -> u32 {
        match self.cols.get(pos) {
            Some(col) => col[id as usize],
            None => NONE_VID,
        }
    }

    /// Arity of tuple `id`.
    #[inline]
    pub(crate) fn len_of(&self, id: u32) -> usize {
        self.lens[id as usize] as usize
    }

    /// The interval components of tuple `id` (sorted, non-connected).
    #[inline]
    pub(crate) fn comps_of(&self, id: u32) -> &[Interval] {
        self.arena.slice(self.handles[id as usize])
    }

    fn find_id(&self, vids: &[u32]) -> Option<u32> {
        let h = hash_ids(vids.iter().copied());
        self.ids.find(h, |id| {
            self.len_of(id) == vids.len()
                && vids
                    .iter()
                    .enumerate()
                    .all(|(p, &v)| self.cols[p][id as usize] == v)
        })
    }

    /// Looks a tuple up by value without interning anything new.
    fn lookup(&self, tuple: &[Value]) -> Option<u32> {
        let g = intern::read();
        let mut vids = Vec::with_capacity(tuple.len());
        for v in tuple {
            vids.push(g.vid_of(v)?);
        }
        drop(g);
        self.find_id(&vids)
    }

    /// Writes a component slice into a tuple's slab, growing / releasing
    /// slabs as needed, and returns `(before, after)` component counts.
    fn store_comps(&mut self, id: u32, comps: &[Interval]) -> (usize, usize) {
        let h = self.handles[id as usize];
        let before = h.len as usize;
        let after = comps.len();
        if after == 0 {
            // Emptied entries give their slab back (repair churn reuses
            // it); the id itself stays allocated — see `Relation::remove`.
            self.arena.release(h);
            self.handles[id as usize] = Handle::default();
            return (before, 0);
        }
        if after <= h.cap as usize {
            let off = h.off as usize;
            self.arena.data[off..off + after].copy_from_slice(comps);
            self.handles[id as usize].len = after as u32;
        } else {
            self.arena.release(h);
            let nh = self.arena.alloc(after);
            let off = nh.off as usize;
            self.arena.data[off..off + after].copy_from_slice(comps);
            self.handles[id as usize] = nh;
        }
        (before, after)
    }

    /// Counts a tuple into (`born = true`) or out of (`born = false`) the
    /// per-position live semantic-class stats. Called exactly on the
    /// empty↔non-empty transitions of the tuple's interval set, so each
    /// map's size is the number of distinct values among tuples that
    /// currently hold at least one interval.
    fn note_liveness(&mut self, id: u32, born: bool) {
        let g = intern::read();
        for pos in 0..self.len_of(id) {
            let sid = g.sid(self.cols[pos][id as usize]);
            if born {
                *self.sid_live[pos].entry(sid).or_insert(0) += 1;
            } else {
                let n = self.sid_live[pos]
                    .get_mut(&sid)
                    .expect("dying tuple was counted at birth");
                *n -= 1;
                if *n == 0 {
                    self.sid_live[pos].remove(&sid);
                }
            }
        }
    }

    /// Appends `iv` to the tail of a tuple's component slab in place when it
    /// lies entirely past the stored last component (merging into it when
    /// connected), avoiding the decode → difference → full-copy round-trip
    /// of the general path. Returns the `(before, after)` component counts,
    /// or `None` when the interval may overlap stored components and the
    /// caller must take the general path.
    fn append_comp(&mut self, id: u32, iv: Interval) -> Option<(usize, usize)> {
        let h = self.handles[id as usize];
        if h.len == 0 {
            let nh = self.arena.alloc(1);
            self.arena.data[nh.off as usize] = iv;
            self.handles[id as usize] = nh;
            return Some((0, 1));
        }
        let last_at = (h.off + h.len - 1) as usize;
        let last = self.arena.data[last_at];
        if !last.entirely_before(&iv) {
            return None;
        }
        if let Some(u) = last.union_if_connected(&iv) {
            // Touching at the boundary: extend the last component in place.
            self.arena.data[last_at] = u;
            Some((h.len as usize, h.len as usize))
        } else if h.len < h.cap {
            self.arena.data[(h.off + h.len) as usize] = iv;
            self.handles[id as usize].len = h.len + 1;
            Some((h.len as usize, h.len as usize + 1))
        } else {
            let nh = self.arena.alloc(h.len as usize + 1);
            let (src, dst) = (h.off as usize, nh.off as usize);
            self.arena.data.copy_within(src..src + h.len as usize, dst);
            self.arena.data[dst + h.len as usize] = iv;
            self.arena.release(h);
            self.handles[id as usize] = nh;
            Some((h.len as usize, h.len as usize + 1))
        }
    }
}

/// A borrowed tuple from either storage layout. Row tuples hand out their
/// values directly; columnar tuples decode vids through the global
/// interner on access (display, query, and snapshot paths — the join hot
/// path compares interned ids and never materializes a `TupleRef`).
#[derive(Clone, Copy)]
pub struct TupleRef<'a>(TupleRefInner<'a>);

#[derive(Clone, Copy)]
enum TupleRefInner<'a> {
    Row(&'a [Value]),
    Col { store: &'a ColumnStore, id: u32 },
}

impl<'a> TupleRef<'a> {
    /// Number of arguments.
    pub fn len(&self) -> usize {
        match self.0 {
            TupleRefInner::Row(t) => t.len(),
            TupleRefInner::Col { store, id } => store.len_of(id),
        }
    }

    /// `true` iff the tuple has no arguments.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at position `i` (panics out of bounds).
    pub fn value(&self, i: usize) -> Value {
        match self.0 {
            TupleRefInner::Row(t) => t[i],
            TupleRefInner::Col { store, id } => {
                assert!(i < store.len_of(id), "tuple position out of bounds");
                intern::read().decode(store.vid_at(i, id))
            }
        }
    }

    /// All values, decoded once.
    pub fn to_vec(&self) -> Vec<Value> {
        match self.0 {
            TupleRefInner::Row(t) => t.to_vec(),
            TupleRefInner::Col { store, id } => {
                let g = intern::read();
                (0..store.len_of(id))
                    .map(|p| g.decode(store.vid_at(p, id)))
                    .collect()
            }
        }
    }

    /// An owned boxed tuple.
    pub fn to_tuple(&self) -> Tuple {
        self.to_vec().into_boxed_slice()
    }
}

impl fmt::Debug for TupleRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.to_vec()).finish()
    }
}

/// Borrowed store view for the executor's hot loops (`eval_rel` matches on
/// this once per call and runs a layout-specialized candidate loop).
pub(crate) enum StoreRef<'a> {
    Row(&'a RowStore),
    Col(&'a ColumnStore),
}

enum Store {
    Row(RowStore),
    Col(ColumnStore),
}

impl Store {
    fn len(&self) -> usize {
        match self {
            Store::Row(s) => s.entries.len(),
            Store::Col(s) => s.len(),
        }
    }
}

/// All tuples of one predicate with their validity intervals.
///
/// Tuples live in a dense, insertion-ordered id space with a hash lookup
/// for exact-tuple access; value indexes hang off the side under a lock so
/// read-only evaluation threads can build them on first use. The physical
/// layout behind the id space is the enclosing database's [`StorageMode`].
#[derive(Debug)]
pub struct Relation {
    store: Store,
    /// Live interval components across all tuples, maintained on every
    /// mutation so `Database::component_count` is O(relations).
    live_components: usize,
    /// Tuples currently holding at least one interval component. Unlike
    /// [`Relation::len`] this shrinks when [`Relation::remove`] empties an
    /// entry, so planner cardinality estimates track survivors instead of
    /// phantom rows after repair churn.
    live_tuples: usize,
    indexes: RwLock<SecondaryIndexes>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Store::Row(s) => f.debug_tuple("Row").field(&s.entries.len()).finish(),
            Store::Col(s) => f.debug_tuple("Col").field(&s.len()).finish(),
        }
    }
}

impl Default for Relation {
    fn default() -> Relation {
        Relation::with_mode(StorageMode::Columnar)
    }
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Built indexes are carried over: a cloned database (session window
        // advance, threaded stratum snapshot) keeps its warm access paths
        // and patches them incrementally instead of rebuilding on the next
        // probe.
        let indexes = self
            .indexes
            .read()
            .expect("relation index lock poisoned")
            .clone();
        let store = match &self.store {
            Store::Row(s) => Store::Row(s.clone()),
            Store::Col(s) => {
                // Snapshot clone of a columnar relation is a flat-buffer
                // memcpy per value column plus one for the interval arena.
                COLUMN_CLONES.fetch_add(s.cols.len() as u64 + 1, AtomicOrdering::Relaxed);
                Store::Col(s.clone())
            }
        };
        Relation {
            store,
            live_components: self.live_components,
            live_tuples: self.live_tuples,
            indexes: RwLock::new(indexes),
        }
    }
}

impl Relation {
    /// Empty relation in the given layout.
    pub fn with_mode(mode: StorageMode) -> Relation {
        let store = match mode {
            StorageMode::Columnar => Store::Col(ColumnStore::default()),
            StorageMode::Row => Store::Row(RowStore::default()),
        };
        Relation {
            store,
            live_components: 0,
            live_tuples: 0,
            indexes: RwLock::new(SecondaryIndexes::default()),
        }
    }

    /// The layout this relation stores tuples in.
    pub fn mode(&self) -> StorageMode {
        match self.store {
            Store::Row(_) => StorageMode::Row,
            Store::Col(_) => StorageMode::Columnar,
        }
    }

    pub(crate) fn store(&self) -> StoreRef<'_> {
        match &self.store {
            Store::Row(s) => StoreRef::Row(s),
            Store::Col(s) => StoreRef::Col(s),
        }
    }

    /// The id of `tuple`, allocating a fresh entry (and updating any built
    /// indexes) when unseen. Fails only when the columnar value interner
    /// exhausts its id space.
    fn id_of(&mut self, tuple: &[Value]) -> Result<u32> {
        let (id, fresh) = match &mut self.store {
            Store::Row(s) => {
                if let Some(&id) = s.ids.get(tuple) {
                    (id, false)
                } else {
                    let id = u32::try_from(s.entries.len()).expect("relation tuple-id overflow");
                    let boxed: Tuple = tuple.to_vec().into_boxed_slice();
                    s.ids.insert(boxed.clone(), id);
                    s.entries.push((boxed, IntervalSet::new()));
                    (id, true)
                }
            }
            Store::Col(s) => {
                let mut vids = Vec::with_capacity(tuple.len());
                for v in tuple {
                    vids.push(intern::intern(*v)?);
                }
                if let Some(id) = s.find_id(&vids) {
                    (id, false)
                } else {
                    let id = u32::try_from(s.len()).expect("relation tuple-id overflow");
                    if s.cols.len() < tuple.len() {
                        // Widest arity grew: pad new columns for old rows.
                        s.cols
                            .resize_with(tuple.len(), || vec![NONE_VID; id as usize]);
                        s.sid_live.resize_with(tuple.len(), FxHashMap::default);
                    }
                    // Distinct stats are deliberately NOT touched here: a
                    // fresh entry holds no intervals yet, and `sid_live` is
                    // maintained on the empty↔non-empty transitions by
                    // `apply_component_delta`.
                    for (pos, col) in s.cols.iter_mut().enumerate() {
                        match vids.get(pos) {
                            Some(&vid) => col.push(vid),
                            None => col.push(NONE_VID),
                        }
                    }
                    s.lens.push(tuple.len() as u32);
                    s.handles.push(Handle::default());
                    let h = hash_ids(vids.iter().copied());
                    let ColumnStore {
                        ids, cols, lens, ..
                    } = s;
                    ids.insert_new(h, id, |other| {
                        let len = lens[other as usize] as usize;
                        hash_ids((0..len).map(|p| cols[p][other as usize]))
                    });
                    (id, true)
                }
            }
        };
        if fresh {
            let indexes = self
                .indexes
                .get_mut()
                .expect("relation index lock poisoned");
            for (&pos, buckets) in indexes.by_pos.iter_mut() {
                if let Some(v) = tuple.get(pos) {
                    buckets.entry(IndexKey::of(v)).or_default().push(id);
                }
            }
        }
        Ok(id)
    }

    /// Notes freshly added components in the time index, if built.
    fn note_time(&mut self, delta: &IntervalSet, id: u32) {
        if let Some(time) = self
            .indexes
            .get_mut()
            .expect("relation index lock poisoned")
            .time
            .as_mut()
        {
            for comp in delta.iter() {
                time.note(comp, id);
            }
        }
    }

    /// Reads a tuple's current interval set (owned; both layouts).
    fn set_of(&self, id: u32) -> IntervalSet {
        match &self.store {
            Store::Row(s) => s.entries[id as usize].1.clone(),
            Store::Col(s) => IntervalSet::from_sorted(s.comps_of(id).to_vec()),
        }
    }

    /// Writes a tuple's interval set back, updating the live statistics.
    fn write_set(&mut self, id: u32, set: &IntervalSet) {
        let (before, after) = match &mut self.store {
            Store::Row(s) => {
                let entry = &mut s.entries[id as usize].1;
                let before = entry.components().len();
                *entry = set.clone();
                (before, set.components().len())
            }
            Store::Col(s) => s.store_comps(id, set.components()),
        };
        self.apply_component_delta(id, before, after);
    }

    /// Folds one tuple's `(before, after)` component-count transition into
    /// the relation's live statistics: the O(1) component total, the live
    /// tuple count, and (columnar) the per-position distinct stats. Every
    /// mutation path — general write-back and in-place append alike — funnels
    /// through here, so the planner's cardinality inputs can never drift
    /// from the stored intervals.
    fn apply_component_delta(&mut self, id: u32, before: usize, after: usize) {
        self.live_components = self.live_components - before + after;
        if before == 0 && after > 0 {
            self.live_tuples += 1;
            if let Store::Col(s) = &mut self.store {
                s.note_liveness(id, true);
            }
        } else if before > 0 && after == 0 {
            self.live_tuples -= 1;
            if let Store::Col(s) = &mut self.store {
                s.note_liveness(id, false);
            }
        }
    }

    /// Fast path shared by [`Relation::insert`] and [`Relation::merge`]:
    /// when `iv` lies entirely past the stored last component (the common
    /// shape for monotone temporal recursion, which appends one instant per
    /// iteration), the genuinely new part is exactly `iv` and both layouts
    /// can mutate the stored tail in place — no owned-set decode, no
    /// difference, no full slab copy. Returns the delta, or `None` when the
    /// interval may overlap and the general path must decide.
    fn append_fast(&mut self, id: u32, iv: Interval) -> Option<IntervalSet> {
        let (before, after) = match &mut self.store {
            Store::Row(s) => {
                let entry = &mut s.entries[id as usize].1;
                let before = entry.components().len();
                if entry
                    .components()
                    .last()
                    .is_some_and(|l| !l.entirely_before(&iv))
                {
                    return None;
                }
                let grew = entry.insert(iv);
                debug_assert!(grew, "an appended interval always grows the set");
                (before, entry.components().len())
            }
            Store::Col(s) => s.append_comp(id, iv)?,
        };
        self.apply_component_delta(id, before, after);
        Some(IntervalSet::from_interval(iv))
    }

    /// Inserts an interval for a tuple; returns `true` iff the set grew.
    pub fn insert(&mut self, tuple: &[Value], interval: Interval) -> Result<bool> {
        let id = self.id_of(tuple)?;
        if let Some(delta) = self.append_fast(id, interval) {
            self.note_time(&delta, id);
            return Ok(true);
        }
        let mut set = self.set_of(id);
        let grew = set.insert(interval);
        if grew {
            self.write_set(id, &set);
            self.note_time(&IntervalSet::from_interval(interval), id);
        }
        Ok(grew)
    }

    /// Merges an interval set for a tuple; returns the genuinely new part
    /// (empty when nothing grew).
    pub fn merge(&mut self, tuple: &[Value], ivs: &IntervalSet) -> Result<IntervalSet> {
        let id = self.id_of(tuple)?;
        if let [iv] = ivs.components() {
            if let Some(delta) = self.append_fast(id, *iv) {
                self.note_time(&delta, id);
                return Ok(delta);
            }
        }
        let mut set = self.set_of(id);
        let delta = ivs.difference(&set);
        if !delta.is_empty() {
            set.union_with(&delta);
            self.write_set(id, &set);
            self.note_time(&delta, id);
        }
        Ok(delta)
    }

    /// Removes `ivs` from a tuple's validity; returns the part actually
    /// removed (empty when the tuple is absent or disjoint).
    ///
    /// The entry itself is kept even when its interval set empties out:
    /// tuple ids stay dense and stable, so the per-position value indexes
    /// remain exact (a probe returning an emptied tuple yields no intervals
    /// after the caller's clip). In the columnar layout the emptied tuple's
    /// arena slab is released to a free list and reused by later merges, so
    /// repair churn does not leak arena space. The time index is
    /// deliberately left untouched — its contract is over-approximation
    /// (coverage ⊇ truth), and removal only shrinks truth, so stale entries
    /// can produce false positives but never a missed tuple.
    pub fn remove(&mut self, tuple: &[Value], ivs: &IntervalSet) -> IntervalSet {
        let id = match &self.store {
            Store::Row(s) => s.ids.get(tuple).copied(),
            Store::Col(s) => s.lookup(tuple),
        };
        let Some(id) = id else {
            return IntervalSet::new();
        };
        let set = self.set_of(id);
        let removed = set.intersect(ivs);
        if !removed.is_empty() {
            self.write_set(id, &set.difference(ivs));
        }
        removed
    }

    /// The interval components of a tuple, if present (sorted,
    /// non-connected; empty slice for emptied-but-kept entries).
    pub fn components_of(&self, tuple: &[Value]) -> Option<&[Interval]> {
        match &self.store {
            Store::Row(s) => s
                .ids
                .get(tuple)
                .map(|&id| s.entries[id as usize].1.components()),
            Store::Col(s) => s.lookup(tuple).map(|id| s.comps_of(id)),
        }
    }

    /// Iterates `(tuple, components)` in insertion order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (TupleRef<'_>, &[Interval])> {
        let len = self.store.len() as u32;
        (0..len).map(move |id| self.entry(id))
    }

    /// The tuple and interval components stored under a tuple id (from
    /// [`Relation::probe`]).
    pub fn entry(&self, id: u32) -> (TupleRef<'_>, &[Interval]) {
        match &self.store {
            Store::Row(s) => {
                let (t, ivs) = &s.entries[id as usize];
                (TupleRef(TupleRefInner::Row(t)), ivs.components())
            }
            Store::Col(s) => (
                TupleRef(TupleRefInner::Col { store: s, id }),
                s.comps_of(id),
            ),
        }
    }

    /// Number of distinct tuples, *including* emptied-but-kept entries
    /// (tuple ids are dense and never reclaimed). This is the count access
    /// paths iterate over; planner cardinality estimates use
    /// [`Relation::live_len`] instead.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Number of tuples currently holding at least one interval component.
    /// Unlike [`Relation::len`] this shrinks when [`Relation::remove`]
    /// empties an entry, so repair-heavy sessions replan against survivors
    /// rather than phantom rows. O(1).
    pub fn live_len(&self) -> usize {
        self.live_tuples
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Live interval components across all tuples (O(1)).
    pub(crate) fn live_component_count(&self) -> usize {
        self.live_components
    }

    /// Bytes held by interval storage: the arena buffer (columnar) or the
    /// per-tuple component vectors (row).
    pub(crate) fn interval_bytes(&self) -> usize {
        let comp = std::mem::size_of::<Interval>();
        match &self.store {
            Store::Row(s) => s
                .entries
                .iter()
                .map(|(_, ivs)| std::mem::size_of_val(ivs.components()))
                .sum(),
            Store::Col(s) => s.arena.data.len() * comp,
        }
    }

    /// Approximate bytes held by tuple-value storage (columns or rows).
    pub(crate) fn value_bytes(&self) -> usize {
        match &self.store {
            Store::Row(s) => s
                .entries
                .iter()
                .map(|(t, _)| t.len() * std::mem::size_of::<Value>())
                .sum(),
            Store::Col(s) => s.cols.iter().map(|c| c.len() * 4).sum::<usize>() + s.lens.len() * 4,
        }
    }

    /// `(freed, reused)` arena slab counts (columnar; zeros for row).
    pub(crate) fn arena_reuse(&self) -> (u64, u64) {
        match &self.store {
            Store::Row(_) => (0, 0),
            Store::Col(s) => (s.arena.freed, s.arena.reused),
        }
    }

    /// Ensures the position index for `pos` exists, building it from the
    /// current entries when missing.
    fn ensure_index(&self, pos: usize) {
        if self
            .indexes
            .read()
            .expect("relation index lock poisoned")
            .by_pos
            .contains_key(&pos)
        {
            return;
        }
        let mut w = self.indexes.write().expect("relation index lock poisoned");
        // Double-checked: another thread may have built it while we waited.
        if w.by_pos.contains_key(&pos) {
            return;
        }
        let mut buckets: FxHashMap<IndexKey, Vec<u32>> = FxHashMap::default();
        match &self.store {
            Store::Row(s) => {
                for (id, (tuple, _)) in s.entries.iter().enumerate() {
                    if let Some(v) = tuple.get(pos) {
                        buckets.entry(IndexKey::of(v)).or_default().push(id as u32);
                    }
                }
            }
            Store::Col(s) => {
                let g = intern::read();
                for id in 0..s.len() as u32 {
                    let vid = s.vid_at(pos, id);
                    if vid != NONE_VID {
                        buckets
                            .entry(IndexKey::of(&g.decode(vid)))
                            .or_default()
                            .push(id);
                    }
                }
            }
        }
        w.by_pos.insert(pos, buckets);
    }

    /// Index probe: tuple ids whose argument at some ground position
    /// semantically equals the bound value, using the most selective
    /// (smallest-bucket) position among `ground`. Candidate ids come back
    /// in insertion order, i.e. the order a full scan would visit them, so
    /// callers only need to re-verify with full unification.
    ///
    /// Builds missing per-position indexes on first use; they are then
    /// maintained incrementally by [`Relation::insert`] /
    /// [`Relation::merge`].
    pub fn probe(&self, ground: &[(usize, Value)]) -> Vec<u32> {
        let mut out = Vec::new();
        self.probe_into(ground, &mut out);
        out
    }

    /// [`Relation::probe`] into a reused buffer (the executor keeps one
    /// per thread to avoid a bucket-sized allocation per lookup).
    pub fn probe_into(&self, ground: &[(usize, Value)], out: &mut Vec<u32>) {
        out.clear();
        // Steady-state fast path: one read-lock acquisition covers the
        // built-check and the bucket lookups. Only a position whose index
        // is missing drops to the build path (once per position).
        loop {
            {
                let r = self.indexes.read().expect("relation index lock poisoned");
                if ground.iter().all(|(pos, _)| r.by_pos.contains_key(pos)) {
                    let mut best: Option<&Vec<u32>> = None;
                    for (pos, v) in ground {
                        let bucket = r.by_pos[pos].get(&IndexKey::of(v));
                        match bucket {
                            // A ground position with no bucket means no
                            // tuple can match.
                            None => return,
                            Some(b) => {
                                if best.is_none_or(|cur| b.len() < cur.len()) {
                                    best = Some(b);
                                }
                            }
                        }
                    }
                    if let Some(b) = best {
                        out.extend_from_slice(b);
                    }
                    return;
                }
            }
            for &(pos, _) in ground {
                self.ensure_index(pos);
            }
        }
    }

    /// Ensures the time index exists, building it from the current entries
    /// when missing (double-checked, like [`Relation::ensure_index`]).
    fn ensure_time_index(&self) {
        if self
            .indexes
            .read()
            .expect("relation index lock poisoned")
            .time
            .is_some()
        {
            return;
        }
        let mut w = self.indexes.write().expect("relation index lock poisoned");
        if w.time.is_none() {
            w.time = Some(match &self.store {
                Store::Row(s) => TimeIndex::build(
                    s.entries
                        .iter()
                        .enumerate()
                        .map(|(id, (_, ivs))| (id as u32, ivs.components())),
                ),
                Store::Col(s) => {
                    TimeIndex::build((0..s.len() as u32).map(|id| (id, s.comps_of(id))))
                }
            });
        }
    }

    /// Time-index probe: tuple ids whose validity can overlap `window`, in
    /// insertion order. Over-approximate (see [`TimeIndex`]): callers must
    /// still clip each candidate's interval set exactly. Builds the index
    /// on first use; it is then maintained incrementally by
    /// [`Relation::insert`] / [`Relation::merge`] and survives cloning.
    pub fn probe_time(&self, window: &Interval) -> Vec<u32> {
        let mut out = Vec::new();
        self.probe_time_into(window, &mut out);
        out
    }

    /// [`Relation::probe_time`] into a reused buffer.
    pub fn probe_time_into(&self, window: &Interval, out: &mut Vec<u32>) {
        // Steady-state fast path: probe under the single read guard; only
        // the very first call pays the build detour.
        {
            let r = self.indexes.read().expect("relation index lock poisoned");
            if let Some(t) = r.time.as_ref() {
                t.probe_into(window, out);
                return;
            }
        }
        self.ensure_time_index();
        self.indexes
            .read()
            .expect("relation index lock poisoned")
            .time
            .as_ref()
            .expect("time index built above")
            .probe_into(window, out);
    }

    /// Number of built indexes (per-position value indexes + time index).
    pub fn built_index_count(&self) -> usize {
        let r = self.indexes.read().expect("relation index lock poisoned");
        r.by_pos.len() + usize::from(r.time.is_some())
    }

    /// Number of distinct semantic values at argument position `pos`,
    /// among *live* tuples. Columnar relations answer exactly from their
    /// per-column live semantic-class counts (maintained on tuple
    /// birth/death, so retractions shrink the answer); row relations only
    /// know once the per-position value index has been built, and that
    /// answer still counts emptied entries. Strictly read-only — never
    /// triggers an index build — so the planner can consult cardinalities
    /// without perturbing access-path counters.
    pub fn distinct_count(&self, pos: usize) -> Option<usize> {
        if let Store::Col(s) = &self.store {
            if let Some(live) = s.sid_live.get(pos) {
                return Some(live.len());
            }
        }
        self.indexes
            .read()
            .expect("relation index lock poisoned")
            .by_pos
            .get(&pos)
            .map(|buckets| buckets.len())
    }

    /// Number of indexed interval components (sorted entries plus pending
    /// tail), when the time index has already been built. Read-only, like
    /// [`Relation::distinct_count`].
    pub fn time_entry_count(&self) -> Option<usize> {
        self.indexes
            .read()
            .expect("relation index lock poisoned")
            .time
            .as_ref()
            .map(|t| t.entries.len() + t.pending.len())
    }
}

/// A temporal database: one [`Relation`] per predicate, all in the same
/// [`StorageMode`].
#[derive(Clone, Debug)]
pub struct Database {
    rels: FxHashMap<Symbol, Relation>,
    mode: StorageMode,
}

impl Default for Database {
    fn default() -> Database {
        Database::with_mode(StorageMode::default())
    }
}

impl Database {
    /// Empty database in the default (columnar) layout.
    pub fn new() -> Database {
        Database::default()
    }

    /// Empty database in an explicit layout.
    pub fn with_mode(mode: StorageMode) -> Database {
        Database {
            rels: FxHashMap::default(),
            mode,
        }
    }

    /// The layout new relations are created in.
    pub fn mode(&self) -> StorageMode {
        self.mode
    }

    /// A copy of this database in `mode`: a cheap structural clone when the
    /// mode already matches, otherwise a full re-load (indexes start cold).
    pub fn to_mode(&self, mode: StorageMode) -> Database {
        if self.mode == mode {
            return self.clone();
        }
        let mut out = Database::with_mode(mode);
        for (pred, tuple, comps) in self.iter() {
            let ivs = IntervalSet::from_sorted(comps.to_vec());
            out.merge(pred, &tuple.to_vec(), &ivs)
                .expect("re-interning an existing database cannot overflow");
        }
        out
    }

    /// Inserts a parsed fact. Returns `true` iff the database grew.
    pub fn insert_fact(&mut self, fact: &Fact) -> Result<bool> {
        self.insert(fact.pred, &fact.args, fact.interval)
    }

    /// Inserts facts from an iterator.
    pub fn extend_facts<'a, I: IntoIterator<Item = &'a Fact>>(&mut self, facts: I) -> Result<()> {
        for f in facts {
            self.insert_fact(f)?;
        }
        Ok(())
    }

    /// Inserts a single `(pred, tuple)@interval`. Returns `true` iff grew.
    /// Fails only on value-interner exhaustion (columnar mode).
    pub fn insert(&mut self, pred: Symbol, tuple: &[Value], interval: Interval) -> Result<bool> {
        self.rel_mut(pred).insert(tuple, interval)
    }

    fn rel_mut(&mut self, pred: Symbol) -> &mut Relation {
        let mode = self.mode;
        self.rels
            .entry(pred)
            .or_insert_with(|| Relation::with_mode(mode))
    }

    /// Convenience insertion with builder-style values (panics on the
    /// process-level interner-exhaustion limit; use [`Database::insert`]
    /// for the fallible form).
    pub fn assert_at(&mut self, pred: &str, args: &[Value], t: i64) -> &mut Self {
        self.insert(Symbol::new(pred), args, Interval::at(t))
            .expect("value interner exhausted");
        self
    }

    /// Convenience insertion over an interval.
    pub fn assert_over(&mut self, pred: &str, args: &[Value], interval: Interval) -> &mut Self {
        self.insert(Symbol::new(pred), args, interval)
            .expect("value interner exhausted");
        self
    }

    /// The relation for a predicate, if any tuple exists.
    pub fn relation(&self, pred: Symbol) -> Option<&Relation> {
        self.rels.get(&pred)
    }

    /// Merges `(pred, tuple)@ivs`; returns the genuinely new intervals.
    pub fn merge(
        &mut self,
        pred: Symbol,
        tuple: &[Value],
        ivs: &IntervalSet,
    ) -> Result<IntervalSet> {
        self.rel_mut(pred).merge(tuple, ivs)
    }

    /// Removes `ivs` from `(pred, tuple)`'s validity; returns the part
    /// actually removed. See [`Relation::remove`] for the index-soundness
    /// contract (entries are kept, the time index stays over-approximate).
    pub fn remove(&mut self, pred: Symbol, tuple: &[Value], ivs: &IntervalSet) -> IntervalSet {
        self.rels
            .get_mut(&pred)
            .map(|r| r.remove(tuple, ivs))
            .unwrap_or_default()
    }

    /// The interval set of a specific ground atom.
    pub fn intervals(&self, pred: Symbol, args: &[Value]) -> IntervalSet {
        self.rels
            .get(&pred)
            .and_then(|r| r.components_of(args))
            .map(|comps| IntervalSet::from_sorted(comps.to_vec()))
            .unwrap_or_default()
    }

    /// Does `pred(args)` hold at time `t`?
    pub fn holds_at(&self, pred: &str, args: &[Value], t: i64) -> bool {
        self.holds_at_rational(Symbol::new(pred), args, Rational::integer(t))
    }

    /// Does `pred(args)` hold at rational time `t`?
    pub fn holds_at_rational(&self, pred: Symbol, args: &[Value], t: Rational) -> bool {
        self.rels
            .get(&pred)
            .and_then(|r| r.components_of(args))
            .is_some_and(|comps| IntervalSet::components_contain(comps, t))
    }

    /// All predicates present.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rels.keys().copied()
    }

    /// Iterates every `(pred, tuple, components)`.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, TupleRef<'_>, &[Interval])> {
        self.rels
            .iter()
            .flat_map(|(p, r)| r.iter().map(move |(t, ivs)| (*p, t, ivs)))
    }

    /// Renders the database as parseable fact text, sorted for determinism.
    pub fn to_facts_text(&self) -> String {
        let mut lines: Vec<String> = self
            .iter()
            .flat_map(|(p, tuple, comps)| {
                let args = tuple
                    .to_vec()
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                comps
                    .iter()
                    .map(move |iv| format!("{p}({args})@{iv}."))
                    .collect::<Vec<_>>()
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Total number of distinct tuples across relations.
    pub fn tuple_count(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Pattern query: all tuples of `pattern.pred` unifying with the
    /// pattern's arguments (variables bind, repeated variables must agree,
    /// constants filter — numeric constants match semantically), together
    /// with their validity. Optionally restricted to a time window.
    ///
    /// ```
    /// use chronolog_core::{parse_facts, Atom, Database, Term, Value};
    /// let mut db = Database::new();
    /// db.extend_facts(&parse_facts("p(a, 1)@3.\np(a, 2)@5.\np(b, 1)@4.").unwrap())
    ///     .unwrap();
    /// let pattern = Atom::new("p", vec![Term::Val(Value::sym("a")), Term::var("N")]);
    /// let hits = db.query(&pattern, None);
    /// assert_eq!(hits.len(), 2);
    /// ```
    pub fn query(
        &self,
        pattern: &crate::ast::Atom,
        window: Option<&Interval>,
    ) -> Vec<(Tuple, IntervalSet)> {
        let Some(rel) = self.rels.get(&pattern.pred) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        'tuples: for (tuple, comps) in rel.iter() {
            if tuple.len() != pattern.args.len() {
                continue;
            }
            let values = tuple.to_vec();
            let mut bound: FxHashMap<Symbol, Value> = FxHashMap::default();
            for (term, v) in pattern.args.iter().zip(values.iter()) {
                match term {
                    crate::ast::Term::Val(c) => {
                        if !c.semantic_eq(v) {
                            continue 'tuples;
                        }
                    }
                    crate::ast::Term::Var(x) => match bound.get(x) {
                        Some(prev) if !prev.semantic_eq(v) => continue 'tuples,
                        _ => {
                            bound.insert(*x, *v);
                        }
                    },
                }
            }
            let clipped = match window {
                Some(w) => IntervalSet::clip_components(comps, w),
                None => IntervalSet::from_sorted(comps.to_vec()),
            };
            if !clipped.is_empty() {
                out.push((values.into_boxed_slice(), clipped));
            }
        }
        out
    }

    /// Parses fact text (as produced by [`Database::to_facts_text`]) back
    /// into a database — the snapshot counterpart of the renderer.
    pub fn from_facts_text(text: &str) -> crate::error::Result<Database> {
        let facts = crate::parser::parse_facts(text)?;
        let mut db = Database::new();
        db.extend_facts(&facts)?;
        Ok(db)
    }

    /// Total number of interval components (a proxy for memory footprint).
    /// O(relations): each relation maintains its live count on mutation.
    pub fn component_count(&self) -> usize {
        self.rels.values().map(Relation::live_component_count).sum()
    }

    /// Total number of built secondary indexes across relations. A clone
    /// carries these over, so the count right after cloning measures the
    /// index rebuilds the clone avoided.
    pub fn built_index_count(&self) -> usize {
        self.rels.values().map(Relation::built_index_count).sum()
    }

    /// Bytes held by interval storage across relations (the columnar
    /// arenas, or the row layout's per-tuple component vectors).
    pub fn interval_arena_bytes(&self) -> usize {
        self.rels.values().map(Relation::interval_bytes).sum()
    }

    /// Approximate bytes of tuple-value + interval storage across
    /// relations (excludes hash tables and indexes); divide by
    /// [`Database::tuple_count`] for a bytes-per-tuple figure.
    pub fn storage_bytes(&self) -> usize {
        self.rels
            .values()
            .map(|r| r.value_bytes() + r.interval_bytes())
            .sum()
    }

    /// `(freed, reused)` interval-arena slab counts summed over relations
    /// (all zeros in row mode).
    pub fn arena_reuse_counts(&self) -> (u64, u64) {
        self.rels
            .values()
            .map(Relation::arena_reuse)
            .fold((0, 0), |(f, r), (df, dr)| (f + df, r + dr))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_facts_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_modes() -> [Database; 2] {
        [
            Database::with_mode(StorageMode::Columnar),
            Database::with_mode(StorageMode::Row),
        ]
    }

    #[test]
    fn insert_and_query() {
        for mut db in both_modes() {
            db.assert_at("price", &[Value::num(1300.0)], 10);
            assert!(db.holds_at("price", &[Value::num(1300.0)], 10));
            assert!(!db.holds_at("price", &[Value::num(1300.0)], 11));
            assert!(!db.holds_at("price", &[Value::num(9.0)], 10));
        }
    }

    #[test]
    fn repeated_insert_reports_growth_correctly() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            let tup = [Value::Int(1)];
            assert!(db.insert(pred, &tup, Interval::closed_int(0, 5)).unwrap());
            assert!(!db.insert(pred, &tup, Interval::closed_int(2, 4)).unwrap());
            assert!(db.insert(pred, &tup, Interval::closed_int(4, 8)).unwrap());
        }
    }

    #[test]
    fn merge_returns_only_new_part() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            let tup = [Value::Int(1)];
            db.insert(pred, &tup, Interval::closed_int(0, 5)).unwrap();
            let delta = db
                .merge(
                    pred,
                    &tup,
                    &IntervalSet::from_interval(Interval::closed_int(3, 8)),
                )
                .unwrap();
            assert_eq!(
                delta.components(),
                &[Interval::new(
                    Rational::integer(5).into(),
                    false,
                    Rational::integer(8).into(),
                    true
                )
                .unwrap()]
            );
        }
    }

    #[test]
    fn facts_text_is_sorted_and_parseable() {
        for mut db in both_modes() {
            db.assert_at("b", &[Value::Int(2)], 3);
            db.assert_at("a", &[Value::sym("x")], 1);
            let text = db.to_facts_text();
            assert!(text.starts_with("a(x)@[1]."));
            let reparsed = crate::parser::parse_facts(&text).unwrap();
            assert_eq!(reparsed.len(), 2);
        }
    }

    #[test]
    fn query_patterns() {
        for mut db in both_modes() {
            db.extend_facts(
                &crate::parser::parse_facts("p(a, 1)@3.\np(a, 2)@5.\np(b, 1)@4.\nq(a)@1.").unwrap(),
            )
            .unwrap();
            use crate::ast::{Atom, Term};
            // All p-tuples.
            let all = db.query(&Atom::new("p", vec![Term::var("X"), Term::var("Y")]), None);
            assert_eq!(all.len(), 3);
            // Constant filter.
            let a_only = db.query(
                &Atom::new("p", vec![Term::Val(Value::sym("a")), Term::var("Y")]),
                None,
            );
            assert_eq!(a_only.len(), 2);
            // Repeated variable: p(X, X) matches nothing here.
            let diag = db.query(&Atom::new("p", vec![Term::var("X"), Term::var("X")]), None);
            assert!(diag.is_empty());
            // Window restriction.
            let windowed = db.query(
                &Atom::new("p", vec![Term::var("X"), Term::var("Y")]),
                Some(&Interval::closed_int(4, 5)),
            );
            assert_eq!(windowed.len(), 2);
            // Unknown predicate.
            assert!(db.query(&Atom::new("zzz", vec![]), None).is_empty());
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        for mut db in both_modes() {
            db.extend_facts(
                &crate::parser::parse_facts(
                    "margin(acc1, 97.5)@[3, 9].\nprice(1330.0)@4.\nflag(true).",
                )
                .unwrap(),
            )
            .unwrap();
            let text = db.to_facts_text();
            let back = Database::from_facts_text(&text).unwrap();
            assert_eq!(back.to_facts_text(), text);
        }
    }

    #[test]
    fn probe_finds_semantic_matches_in_scan_order() {
        for mut db in both_modes() {
            db.extend_facts(
                &crate::parser::parse_facts(
                    "p(a, 1)@0.\np(b, 2)@1.\np(a, 3.0)@2.\np(c, 1.0)@3.\np(a, 2)@4.",
                )
                .unwrap(),
            )
            .unwrap();
            let rel = db.relation(Symbol::new("p")).unwrap();
            // Probe on position 0 = a.
            let ids = rel.probe(&[(0, Value::sym("a"))]);
            assert_eq!(ids.len(), 3);
            // Insertion (scan) order preserved.
            assert_eq!(rel.entry(ids[0]).0.value(1), Value::Int(1));
            assert_eq!(rel.entry(ids[1]).0.value(1), Value::num(3.0));
            assert_eq!(rel.entry(ids[2]).0.value(1), Value::Int(2));
            // Numeric buckets are semantic: Int 1 and Num 1.0 share one.
            let ids = rel.probe(&[(1, Value::num(1.0))]);
            assert_eq!(ids.len(), 2);
            let ids = rel.probe(&[(1, Value::Int(3))]);
            assert_eq!(ids.len(), 1);
            // Most selective position wins: (a, 3.0) → bucket of size 1.
            let ids = rel.probe(&[(0, Value::sym("a")), (1, Value::Int(3))]);
            assert_eq!(ids.len(), 1);
            // A ground value with no bucket short-circuits to no candidates.
            assert!(rel.probe(&[(0, Value::sym("zzz"))]).is_empty());
        }
    }

    #[test]
    fn probe_indexes_stay_fresh_under_inserts_and_merges() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            db.assert_at("p", &[Value::sym("a"), Value::Int(1)], 0);
            // Build the index...
            assert_eq!(
                db.relation(pred)
                    .unwrap()
                    .probe(&[(0, Value::sym("a"))])
                    .len(),
                1
            );
            // ...then grow the relation through both mutation paths.
            db.assert_at("p", &[Value::sym("a"), Value::Int(2)], 1);
            db.merge(
                pred,
                &[Value::sym("a"), Value::num(2.0)],
                &IntervalSet::from_interval(Interval::at(2)),
            )
            .unwrap();
            let rel = db.relation(pred).unwrap();
            assert_eq!(rel.probe(&[(0, Value::sym("a"))]).len(), 3);
            // Int 2 and Num 2.0 are distinct tuples but share a value bucket.
            assert_eq!(rel.probe(&[(1, Value::Int(2))]).len(), 2);
            // Cloning keeps both built position indexes warm...
            let mut cloned = rel.clone();
            assert_eq!(cloned.built_index_count(), 2);
            assert_eq!(cloned.probe(&[(0, Value::sym("a"))]).len(), 3);
            // ...and the carried-over index stays fresh under further growth.
            cloned
                .insert(&[Value::sym("a"), Value::Int(9)], Interval::at(5))
                .unwrap();
            assert_eq!(cloned.probe(&[(0, Value::sym("a"))]).len(), 4);
        }
    }

    #[test]
    fn time_probe_overlaps_only_window() {
        for mut db in both_modes() {
            db.assert_over("p", &[Value::Int(0)], Interval::closed_int(0, 4));
            db.assert_over("p", &[Value::Int(1)], Interval::closed_int(10, 12));
            db.assert_over("p", &[Value::Int(2)], Interval::closed_int(20, 24));
            db.assert_over(
                "p",
                &[Value::Int(3)],
                Interval::from_instant(Rational::integer(100)),
            );
            let rel = db.relation(Symbol::new("p")).unwrap();
            // Unbounded tuple 3 is always a candidate; exact clipping is the
            // caller's job.
            assert_eq!(rel.probe_time(&Interval::closed_int(11, 21)), vec![1, 2, 3]);
            assert_eq!(rel.probe_time(&Interval::closed_int(5, 9)), vec![3]);
            assert_eq!(
                rel.probe_time(&Interval::closed_int(0, 100)),
                vec![0, 1, 2, 3]
            );
        }
    }

    #[test]
    fn time_index_stays_fresh_under_growth_and_clone() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            db.assert_over("p", &[Value::Int(0)], Interval::closed_int(0, 2));
            // Build the index, then grow through both mutation paths.
            assert_eq!(
                db.relation(pred)
                    .unwrap()
                    .probe_time(&Interval::closed_int(0, 100))
                    .len(),
                1
            );
            db.assert_over("p", &[Value::Int(0)], Interval::closed_int(50, 52));
            db.merge(
                pred,
                &[Value::Int(1)],
                &IntervalSet::from_interval(Interval::closed_int(60, 61)),
            )
            .unwrap();
            let rel = db.relation(pred).unwrap();
            assert_eq!(rel.probe_time(&Interval::closed_int(49, 70)), vec![0, 1]);
            assert_eq!(rel.probe_time(&Interval::closed_int(0, 3)), vec![0]);
            assert!(rel.probe_time(&Interval::closed_int(10, 20)).is_empty());
            // The clone carries the index and keeps patching it.
            let mut cloned = rel.clone();
            assert_eq!(cloned.built_index_count(), 1);
            cloned
                .insert(&[Value::Int(2)], Interval::closed_int(15, 16))
                .unwrap();
            assert_eq!(cloned.probe_time(&Interval::closed_int(10, 20)), vec![2]);
        }
    }

    #[test]
    fn time_probe_never_misses_after_coalescing() {
        // Coalescing leaves stale sub-entries behind; they may only add
        // false positives, never hide a tuple.
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            db.assert_over("p", &[Value::Int(0)], Interval::closed_int(0, 1));
            db.relation(pred).unwrap().probe_time(&Interval::at(0)); // build
            db.assert_over("p", &[Value::Int(0)], Interval::closed_int(3, 9));
            db.assert_over("p", &[Value::Int(0)], Interval::closed_int(1, 3)); // glue
            let rel = db.relation(pred).unwrap();
            for t in 0..=9 {
                assert_eq!(rel.probe_time(&Interval::at(t)), vec![0], "at t={t}");
            }
        }
    }

    #[test]
    fn remove_clips_exactly_and_keeps_entries() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            let tup = [Value::Int(1)];
            db.insert(pred, &tup, Interval::closed_int(0, 10)).unwrap();
            // Removing the middle leaves two components.
            let removed = db.remove(
                pred,
                &tup,
                &IntervalSet::from_interval(Interval::closed_int(4, 6)),
            );
            assert_eq!(removed.components(), &[Interval::closed_int(4, 6)]);
            assert!(db.holds_at("p", &[Value::Int(1)], 3));
            assert!(!db.holds_at("p", &[Value::Int(1)], 5));
            assert!(db.holds_at("p", &[Value::Int(1)], 7));
            // Disjoint removal is a no-op; unknown tuples and predicates too.
            assert!(db
                .remove(
                    pred,
                    &tup,
                    &IntervalSet::from_interval(Interval::closed_int(40, 60)),
                )
                .is_empty());
            assert!(db
                .remove(
                    pred,
                    &[Value::Int(9)],
                    &IntervalSet::from_interval(Interval::ALL),
                )
                .is_empty());
            assert!(db
                .remove(
                    Symbol::new("zzz"),
                    &tup,
                    &IntervalSet::from_interval(Interval::ALL),
                )
                .is_empty());
            // Emptying the set keeps the entry (stable ids) but drops it
            // from the rendered facts and the component count.
            db.remove(pred, &tup, &IntervalSet::from_interval(Interval::ALL));
            assert_eq!(db.tuple_count(), 1);
            assert_eq!(db.component_count(), 0);
            assert_eq!(db.to_facts_text(), "");
            // The tuple can come back through the ordinary merge path.
            let added = db
                .merge(
                    pred,
                    &tup,
                    &IntervalSet::from_interval(Interval::closed_int(1, 2)),
                )
                .unwrap();
            assert!(!added.is_empty());
            assert!(db.holds_at("p", &[Value::Int(1)], 2));
        }
    }

    #[test]
    fn remove_keeps_value_and_time_probes_sound() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            db.assert_over("p", &[Value::sym("a")], Interval::closed_int(0, 4));
            db.assert_over("p", &[Value::sym("b")], Interval::closed_int(10, 14));
            // Build both index kinds, then remove tuple `a` entirely.
            assert_eq!(
                db.relation(pred).unwrap().probe(&[(0, Value::sym("a"))]),
                vec![0]
            );
            assert_eq!(
                db.relation(pred)
                    .unwrap()
                    .probe_time(&Interval::closed_int(0, 4)),
                vec![0]
            );
            db.remove(
                pred,
                &[Value::sym("a")],
                &IntervalSet::from_interval(Interval::ALL),
            );
            let rel = db.relation(pred).unwrap();
            // Probes may still surface the emptied tuple (over-approximation)
            // but its interval set is empty, so the exact clip drops it.
            for &id in &rel.probe(&[(0, Value::sym("a"))]) {
                assert!(
                    IntervalSet::clip_components(rel.entry(id).1, &Interval::closed_int(0, 4))
                        .is_empty()
                );
            }
            assert_eq!(rel.probe(&[(0, Value::sym("b"))]), vec![1]);
            assert!(rel
                .probe_time(&Interval::closed_int(10, 14))
                .contains(&1u32));
        }
    }

    #[test]
    fn counts() {
        for mut db in both_modes() {
            db.assert_at("p", &[Value::Int(1)], 0);
            db.assert_at("p", &[Value::Int(1)], 2); // second component
            db.assert_at("p", &[Value::Int(2)], 0);
            assert_eq!(db.tuple_count(), 2);
            assert_eq!(db.component_count(), 3);
        }
    }

    /// Retracting most of a relation must shrink the planner-facing live
    /// statistics (`live_len`, columnar `distinct_count`) even though the
    /// dense id space — and with it `len()` — keeps the emptied entries.
    #[test]
    fn remove_shrinks_live_stats_to_survivors() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            for i in 0..20 {
                db.insert(pred, &[Value::Int(i), Value::sym("hub")], Interval::at(0))
                    .unwrap();
            }
            {
                let rel = db.relation(pred).unwrap();
                assert_eq!(rel.len(), 20);
                assert_eq!(rel.live_len(), 20);
                if rel.mode() == StorageMode::Columnar {
                    assert_eq!(rel.distinct_count(0), Some(20));
                    assert_eq!(rel.distinct_count(1), Some(1));
                }
            }
            // Retract 18 of the 20 tuples entirely.
            for i in 0..18 {
                db.remove(
                    pred,
                    &[Value::Int(i), Value::sym("hub")],
                    &IntervalSet::from_interval(Interval::ALL),
                );
            }
            {
                let rel = db.relation(pred).unwrap();
                assert_eq!(rel.len(), 20, "ids stay dense");
                assert_eq!(rel.live_len(), 2, "live count tracks survivors");
                if rel.mode() == StorageMode::Columnar {
                    assert_eq!(rel.distinct_count(0), Some(2));
                    assert_eq!(rel.distinct_count(1), Some(1));
                }
            }
            // Revival through merge counts the tuple (and its values) again.
            db.merge(
                pred,
                &[Value::Int(0), Value::sym("hub")],
                &IntervalSet::from_interval(Interval::at(1)),
            )
            .unwrap();
            let rel = db.relation(pred).unwrap();
            assert_eq!(rel.live_len(), 3);
            if rel.mode() == StorageMode::Columnar {
                assert_eq!(rel.distinct_count(0), Some(3));
            }
        }
    }

    /// The in-place tail-append fast path in `insert`/`merge` must produce
    /// exactly the same stored components, deltas, and live statistics as
    /// the general difference/union path — across disjoint appends, touching
    /// merges, slab growth, and overlap fallbacks, in both layouts.
    #[test]
    fn append_fast_path_matches_general_path() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            let tup = [Value::Int(7)];
            let mut oracle = IntervalSet::new();
            let steps = [
                Interval::closed_int(0, 2),   // birth
                Interval::closed_int(5, 6),   // disjoint append
                Interval::closed_int(8, 9),   // append forcing slab growth
                Interval::closed_int(12, 12), // punctual append
                Interval::closed_int(1, 7),   // overlap: general path
                Interval::closed_int(20, 21), // append again after fallback
            ];
            for iv in steps {
                let expect = IntervalSet::from_interval(iv).difference(&oracle);
                let delta = db
                    .merge(pred, &tup, &IntervalSet::from_interval(iv))
                    .unwrap();
                assert_eq!(delta.components(), expect.components(), "delta for {iv}");
                oracle.union_with(&IntervalSet::from_interval(iv));
                let rel = db.relation(pred).unwrap();
                assert_eq!(rel.components_of(&tup).unwrap(), oracle.components());
                assert_eq!(rel.live_len(), 1);
                assert_eq!(rel.live_component_count(), oracle.components().len());
            }
            // A touching append extends the last component in place.
            let open_touch = Interval::new(
                Rational::integer(21).into(),
                false,
                Rational::integer(25).into(),
                true,
            )
            .unwrap();
            db.merge(pred, &tup, &IntervalSet::from_interval(open_touch))
                .unwrap();
            oracle.union_with(&IntervalSet::from_interval(open_touch));
            let rel = db.relation(pred).unwrap();
            assert_eq!(rel.components_of(&tup).unwrap(), oracle.components());
            assert_eq!(rel.live_component_count(), oracle.components().len());
        }
    }

    #[test]
    fn row_and_columnar_agree_everywhere() {
        let facts = crate::parser::parse_facts(
            "p(a, 1)@[0, 5].\np(a, 2.0)@3.\np(b, 2)@[1, 4].\nq(1.0)@2.\nq(1)@7.\nr(true, x)@[2, 9].",
        )
        .unwrap();
        let mut col = Database::with_mode(StorageMode::Columnar);
        let mut row = Database::with_mode(StorageMode::Row);
        col.extend_facts(&facts).unwrap();
        row.extend_facts(&facts).unwrap();
        assert_eq!(col.to_facts_text(), row.to_facts_text());
        assert_eq!(col.tuple_count(), row.tuple_count());
        assert_eq!(col.component_count(), row.component_count());
        let pred = Symbol::new("p");
        let (c, r) = (col.relation(pred).unwrap(), row.relation(pred).unwrap());
        assert_eq!(
            c.probe(&[(0, Value::sym("a"))]),
            r.probe(&[(0, Value::sym("a"))])
        );
        assert_eq!(
            c.probe(&[(1, Value::num(2.0))]),
            r.probe(&[(1, Value::num(2.0))])
        );
        assert_eq!(
            c.probe_time(&Interval::closed_int(0, 2)),
            r.probe_time(&Interval::closed_int(0, 2))
        );
        // Mode conversion round-trips byte-identically.
        assert_eq!(
            col.to_mode(StorageMode::Row).to_facts_text(),
            col.to_facts_text()
        );
        assert_eq!(
            row.to_mode(StorageMode::Columnar).to_facts_text(),
            row.to_facts_text()
        );
    }

    #[test]
    fn columnar_ids_are_stable_across_clone() {
        let mut db = Database::new();
        db.assert_over("p", &[Value::sym("a"), Value::Int(1)], Interval::at(0));
        db.assert_over("p", &[Value::sym("b"), Value::num(1.0)], Interval::at(1));
        let rel = db.relation(Symbol::new("p")).unwrap();
        let ids = rel.probe(&[(1, Value::Int(1))]);
        assert_eq!(ids, vec![0, 1]);
        let values: Vec<Vec<Value>> = ids.iter().map(|&id| rel.entry(id).0.to_vec()).collect();
        let cloned = rel.clone();
        // Same ids decode to the same values after cloning: vids are
        // global, the clone shares the id space.
        for (&id, vals) in ids.iter().zip(&values) {
            assert_eq!(&cloned.entry(id).0.to_vec(), vals);
            assert_eq!(cloned.entry(id).1, rel.entry(id).1);
        }
    }

    #[test]
    fn arena_reuses_slabs_released_by_remove() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        db.assert_over("p", &[Value::Int(0)], Interval::closed_int(0, 10));
        let bytes_before = db.interval_arena_bytes();
        // Churn: empty the tuple, then refill it, many times over. Without
        // slab reuse every refill would extend the arena.
        for round in 0..64 {
            db.remove(
                pred,
                &[Value::Int(0)],
                &IntervalSet::from_interval(Interval::ALL),
            );
            db.merge(
                pred,
                &[Value::Int(0)],
                &IntervalSet::from_interval(Interval::closed_int(round, round + 10)),
            )
            .unwrap();
        }
        let (freed, reused) = db.arena_reuse_counts();
        assert!(
            freed >= 64,
            "every emptied slab is released (freed={freed})"
        );
        assert!(reused >= 64, "released slabs are reused (reused={reused})");
        assert_eq!(
            db.interval_arena_bytes(),
            bytes_before,
            "steady-state churn does not grow the arena"
        );
    }

    #[test]
    fn interned_ids_are_stable_across_relation_clone() {
        // The id-stability contract: cloning a relation (or the database
        // holding it) copies the `u32` columns verbatim — the clone's ids
        // decode through the same global interner, so no re-interning, no
        // remapping, and bit-identical column contents.
        let mut db = Database::new();
        let pred = Symbol::new("p");
        db.assert_over(
            "p",
            &[Value::Int(3), Value::num(3.0)],
            Interval::closed_int(0, 5),
        );
        db.assert_over(
            "p",
            &[Value::num(2.5), Value::Int(7)],
            Interval::closed_int(1, 4),
        );
        let clone = db.clone();
        let (orig, copy) = (db.relation(pred).unwrap(), clone.relation(pred).unwrap());
        assert_eq!(orig.len(), copy.len());
        let (Store::Col(a), Store::Col(b)) = (&orig.store, &copy.store) else {
            panic!("default layout is columnar");
        };
        for id in 0..orig.len() as u32 {
            assert_eq!(a.len_of(id), b.len_of(id));
            for pos in 0..a.len_of(id) {
                assert_eq!(
                    a.vid_at(pos, id),
                    b.vid_at(pos, id),
                    "clone must not remap interned ids"
                );
            }
        }
        // Interning new values after the clone does not disturb either
        // copy: ids are append-only and process-global.
        let before = crate::intern::interned_value_count();
        db.assert_over(
            "p",
            &[Value::Int(-12345), Value::Int(-54321)],
            Interval::at(9),
        );
        assert!(crate::intern::interned_value_count() > before);
        assert_eq!(
            clone.relation(pred).unwrap().len(),
            2,
            "clone is unaffected by post-clone inserts"
        );
    }

    #[test]
    fn mixed_arity_tuples_coexist() {
        for mut db in both_modes() {
            let pred = Symbol::new("p");
            db.insert(pred, &[Value::Int(1)], Interval::at(0)).unwrap();
            db.insert(pred, &[Value::Int(1), Value::Int(2)], Interval::at(1))
                .unwrap();
            let rel = db.relation(pred).unwrap();
            assert_eq!(rel.len(), 2);
            assert_eq!(rel.entry(0).0.len(), 1);
            assert_eq!(rel.entry(1).0.len(), 2);
            assert_eq!(rel.entry(1).0.value(1), Value::Int(2));
            assert!(db.holds_at("p", &[Value::Int(1)], 0));
            assert!(db.holds_at("p", &[Value::Int(1), Value::Int(2)], 1));
            assert!(!db.holds_at("p", &[Value::Int(1), Value::Int(2)], 0));
        }
    }
}
