//! The append-only ledger: a totally ordered, hash-chained record of every
//! interaction with the contract — the role the L2 chain plays for the real
//! ETH-PERP. Tampering with any past record breaks the chain.

use chronolog_obs::Json;
use chronolog_perp::{AccountId, Event, Method, Trace};

/// Serializable method payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MethodRecord {
    /// `tranM(A, M)`.
    TransferMargin {
        /// Deposit amount.
        amount: f64,
    },
    /// `withdraw(A)`.
    Withdraw,
    /// `modPos(A, S)`.
    ModifyPosition {
        /// Size delta.
        size: f64,
    },
    /// `closePos(A)`.
    ClosePosition,
}

impl From<Method> for MethodRecord {
    fn from(m: Method) -> Self {
        match m {
            Method::TransferMargin { amount } => MethodRecord::TransferMargin { amount },
            Method::Withdraw => MethodRecord::Withdraw,
            Method::ModifyPosition { size } => MethodRecord::ModifyPosition { size },
            Method::ClosePosition => MethodRecord::ClosePosition,
        }
    }
}

impl From<MethodRecord> for Method {
    fn from(m: MethodRecord) -> Self {
        match m {
            MethodRecord::TransferMargin { amount } => Method::TransferMargin { amount },
            MethodRecord::Withdraw => Method::Withdraw,
            MethodRecord::ModifyPosition { size } => Method::ModifyPosition { size },
            MethodRecord::ClosePosition => Method::ClosePosition,
        }
    }
}

/// One ledger entry: an event plus its position and chain hash.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerRecord {
    /// Sequence number (0-based).
    pub index: u64,
    /// Unix timestamp.
    pub time: i64,
    /// Account number.
    pub account: u32,
    /// The method call.
    pub method: MethodRecord,
    /// Oracle price at execution.
    pub price: f64,
    /// Hash of the previous record's `hash` (0 for the genesis record).
    pub prev_hash: u64,
    /// Chain hash of this record.
    pub hash: u64,
}

/// The append-only ledger of one market window.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Ledger {
    /// Window start.
    pub start_time: i64,
    /// Window end.
    pub end_time: i64,
    /// Initial skew.
    pub initial_skew: f64,
    /// Initial oracle price.
    pub initial_price: f64,
    /// The records, in chain order.
    pub records: Vec<LedgerRecord>,
}

/// FNV-1a over the serialized salient fields — a toy integrity chain (the
/// point is the *structure*: any rewrite invalidates all later records).
fn chain_hash(
    prev: u64,
    index: u64,
    time: i64,
    account: u32,
    method: &MethodRecord,
    price: f64,
) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&prev.to_le_bytes());
    eat(&index.to_le_bytes());
    eat(&time.to_le_bytes());
    eat(&account.to_le_bytes());
    let (tag, x): (u8, f64) = match method {
        MethodRecord::TransferMargin { amount } => (0, *amount),
        MethodRecord::Withdraw => (1, 0.0),
        MethodRecord::ModifyPosition { size } => (2, *size),
        MethodRecord::ClosePosition => (3, 0.0),
    };
    eat(&[tag]);
    eat(&x.to_bits().to_le_bytes());
    eat(&price.to_bits().to_le_bytes());
    h
}

impl Ledger {
    /// Opens an empty ledger for a window.
    pub fn open(start_time: i64, end_time: i64, initial_skew: f64, initial_price: f64) -> Ledger {
        Ledger {
            start_time,
            end_time,
            initial_skew,
            initial_price,
            records: Vec::new(),
        }
    }

    /// Appends an event, computing its chain hash. Events must arrive in
    /// strictly increasing time order.
    pub fn append(&mut self, event: &Event) -> Result<&LedgerRecord, String> {
        let last_time = self
            .records
            .last()
            .map(|r| r.time)
            .unwrap_or(self.start_time);
        if event.time <= last_time {
            return Err(format!(
                "event at {} does not advance the chain (last: {last_time})",
                event.time
            ));
        }
        let index = self.records.len() as u64;
        let prev_hash = self.records.last().map(|r| r.hash).unwrap_or(0);
        let method: MethodRecord = event.method.into();
        let hash = chain_hash(
            prev_hash,
            index,
            event.time,
            event.account.0,
            &method,
            event.price,
        );
        self.records.push(LedgerRecord {
            index,
            time: event.time,
            account: event.account.0,
            method,
            price: event.price,
            prev_hash,
            hash,
        });
        Ok(self.records.last().expect("just pushed"))
    }

    /// Verifies the whole hash chain; returns the first bad index if any.
    pub fn verify_chain(&self) -> Result<(), u64> {
        let mut prev = 0u64;
        for r in &self.records {
            if r.prev_hash != prev {
                return Err(r.index);
            }
            let expect = chain_hash(r.prev_hash, r.index, r.time, r.account, &r.method, r.price);
            if r.hash != expect {
                return Err(r.index);
            }
            prev = r.hash;
        }
        Ok(())
    }

    /// Records a whole trace (must be valid and in order).
    pub fn from_trace(trace: &Trace) -> Result<Ledger, String> {
        trace.validate()?;
        let mut ledger = Ledger::open(
            trace.start_time,
            trace.end_time,
            trace.initial_skew,
            trace.initial_price,
        );
        for e in &trace.events {
            ledger.append(e)?;
        }
        Ok(ledger)
    }

    /// Replays the ledger back into a trace (deterministic round-trip).
    pub fn to_trace(&self) -> Trace {
        Trace {
            start_time: self.start_time,
            end_time: self.end_time,
            initial_skew: self.initial_skew,
            initial_price: self.initial_price,
            events: self
                .records
                .iter()
                .map(|r| Event {
                    time: r.time,
                    account: AccountId(r.account),
                    method: r.method.into(),
                    price: r.price,
                })
                .collect(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` iff no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

// --- JSON wire format: internally tagged methods (`kind`), camelCase
// tags, hashes as exact u64 integers. Stable across releases — saved
// ledgers must keep loading. ---

impl MethodRecord {
    /// `{"kind": "transferMargin", "amount": 42.0}` etc.
    pub fn to_json(&self) -> Json {
        match self {
            MethodRecord::TransferMargin { amount } => Json::from_pairs([
                ("kind", Json::from("transferMargin")),
                ("amount", Json::from(*amount)),
            ]),
            MethodRecord::Withdraw => Json::from_pairs([("kind", Json::from("withdraw"))]),
            MethodRecord::ModifyPosition { size } => Json::from_pairs([
                ("kind", Json::from("modifyPosition")),
                ("size", Json::from(*size)),
            ]),
            MethodRecord::ClosePosition => {
                Json::from_pairs([("kind", Json::from("closePosition"))])
            }
        }
    }

    /// Inverse of [`MethodRecord::to_json`].
    pub fn from_json(v: &Json) -> Result<MethodRecord, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("method record needs a string `kind`")?;
        let num = |field: &str| {
            v.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("method record `{kind}` needs a number `{field}`"))
        };
        match kind {
            "transferMargin" => Ok(MethodRecord::TransferMargin {
                amount: num("amount")?,
            }),
            "withdraw" => Ok(MethodRecord::Withdraw),
            "modifyPosition" => Ok(MethodRecord::ModifyPosition { size: num("size")? }),
            "closePosition" => Ok(MethodRecord::ClosePosition),
            other => Err(format!("unknown method kind `{other}`")),
        }
    }
}

impl LedgerRecord {
    /// The record as a JSON object (hashes as exact u64 integers).
    pub fn to_json(&self) -> Json {
        Json::from_pairs([
            ("index", Json::from(self.index)),
            ("time", Json::from(self.time)),
            ("account", Json::from(self.account)),
            ("method", self.method.to_json()),
            ("price", Json::from(self.price)),
            ("prev_hash", Json::from(self.prev_hash)),
            ("hash", Json::from(self.hash)),
        ])
    }

    /// Inverse of [`LedgerRecord::to_json`].
    pub fn from_json(v: &Json) -> Result<LedgerRecord, String> {
        let u = |field: &str| {
            v.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("ledger record needs an unsigned `{field}`"))
        };
        Ok(LedgerRecord {
            index: u("index")?,
            time: v
                .get("time")
                .and_then(Json::as_i64)
                .ok_or("ledger record needs an integer `time`")?,
            account: u("account")? as u32,
            method: MethodRecord::from_json(
                v.get("method").ok_or("ledger record needs a `method`")?,
            )?,
            price: v
                .get("price")
                .and_then(Json::as_f64)
                .ok_or("ledger record needs a number `price`")?,
            prev_hash: u("prev_hash")?,
            hash: u("hash")?,
        })
    }
}

impl Ledger {
    /// The ledger as a JSON object.
    pub fn to_json_value(&self) -> Json {
        Json::from_pairs([
            ("start_time", Json::from(self.start_time)),
            ("end_time", Json::from(self.end_time)),
            ("initial_skew", Json::from(self.initial_skew)),
            ("initial_price", Json::from(self.initial_price)),
            (
                "records",
                Json::Arr(self.records.iter().map(LedgerRecord::to_json).collect()),
            ),
        ])
    }

    /// Inverse of [`Ledger::to_json_value`]. Does *not* verify the chain —
    /// callers decide (see `persist::from_json`).
    pub fn from_json_value(v: &Json) -> Result<Ledger, String> {
        let i = |field: &str| {
            v.get(field)
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("ledger needs an integer `{field}`"))
        };
        let f = |field: &str| {
            v.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("ledger needs a number `{field}`"))
        };
        let records = v
            .get("records")
            .and_then(Json::as_array)
            .ok_or("ledger needs a `records` array")?
            .iter()
            .map(LedgerRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Ledger {
            start_time: i("start_time")?,
            end_time: i("end_time")?,
            initial_skew: f("initial_skew")?,
            initial_price: f("initial_price")?,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t: i64, acc: u32, method: Method) -> Event {
        Event {
            time: t,
            account: AccountId(acc),
            method,
            price: 1300.0,
        }
    }

    #[test]
    fn append_builds_a_valid_chain() {
        let mut l = Ledger::open(0, 7200, 0.0, 1300.0);
        l.append(&event(10, 1, Method::TransferMargin { amount: 50.0 }))
            .unwrap();
        l.append(&event(20, 1, Method::ModifyPosition { size: 0.5 }))
            .unwrap();
        l.append(&event(30, 1, Method::ClosePosition)).unwrap();
        assert_eq!(l.len(), 3);
        l.verify_chain().unwrap();
    }

    #[test]
    fn tampering_breaks_the_chain() {
        let mut l = Ledger::open(0, 7200, 0.0, 1300.0);
        l.append(&event(10, 1, Method::TransferMargin { amount: 50.0 }))
            .unwrap();
        l.append(&event(20, 1, Method::ModifyPosition { size: 0.5 }))
            .unwrap();
        l.records[0].price = 9999.0;
        assert_eq!(l.verify_chain(), Err(0));
        // Fixing record 0's hash still breaks record 1's prev link.
        l.records[0].hash = chain_hash(0, 0, 10, 1, &l.records[0].method.clone(), 9999.0);
        assert_eq!(l.verify_chain(), Err(1));
    }

    #[test]
    fn rejects_out_of_order_events() {
        let mut l = Ledger::open(0, 7200, 0.0, 1300.0);
        l.append(&event(10, 1, Method::TransferMargin { amount: 50.0 }))
            .unwrap();
        assert!(l
            .append(&event(10, 2, Method::TransferMargin { amount: 1.0 }))
            .is_err());
        assert!(l
            .append(&event(5, 2, Method::TransferMargin { amount: 1.0 }))
            .is_err());
    }

    #[test]
    fn trace_roundtrip_is_lossless() {
        let trace = Trace {
            start_time: 100,
            end_time: 7300,
            initial_skew: -12.5,
            initial_price: 1310.0,
            events: vec![
                event(110, 1, Method::TransferMargin { amount: 50.0 }),
                event(120, 1, Method::ModifyPosition { size: -0.75 }),
                event(130, 1, Method::ClosePosition),
                event(140, 1, Method::Withdraw),
            ],
        };
        let ledger = Ledger::from_trace(&trace).unwrap();
        assert_eq!(ledger.to_trace(), trace);
        ledger.verify_chain().unwrap();
    }
}
