//! The ETH-PERP smart contract as a DatalogMTL program — the paper's
//! contribution (rules 1–48 of §3), organized in the modules of Figure 1:
//! MARGIN, POSITION, RETURNS, F-RATE (events/skew/tdiff/rate/frs/indF),
//! and FEES.
//!
//! Two timeline encodings produce bit-identical results:
//! * [`TimelineMode::DenseSeconds`] — the timeline is Unix seconds, exactly
//!   as the paper runs it; rules 23/25 use the `@T` time capture (the
//!   Vadalog `unix(t)` promotion).
//! * [`TimelineMode::EventEpochs`] — the timeline is compressed to
//!   consecutive event indices and real timestamps flow through `ts(U)`
//!   facts; funding arithmetic still uses real second differences. This is
//!   the ablation variant (orders of magnitude fewer propagation steps).
//!
//! Deviations from the paper's printed rules are deliberate and documented
//! in DESIGN.md: the rule-36 typo fix, fee-rate naming per the §3.7 table,
//! a `live()` liveness predicate in rules 21/24/32 (the paper's `isOpen()`
//! leaves the skew un-propagated before the first deposit), and `K = 0`
//! folded into the non-negative skew branch of the fee rules.

use crate::params::MarketParams;
use chronolog_core::{parse_program, Program, Result};

/// Which timeline the generated program runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimelineMode {
    /// Unix-second timeline; `[1,1]` operators step one second.
    DenseSeconds,
    /// Event-epoch timeline; `[1,1]` operators step one event, real
    /// timestamps come from `ts(U)` facts.
    EventEpochs,
}

/// Renders the full DatalogMTL source with the market parameters inlined.
pub fn program_source(params: &MarketParams, mode: TimelineMode) -> String {
    let taker = fmt_f64(params.taker_fee);
    let maker = fmt_f64(params.maker_fee);
    let imax = fmt_f64(params.max_funding_rate);
    let scale = fmt_f64(params.skew_scale_notional);
    let period = fmt_f64(params.funding_period_secs);

    let tdiff_module = match mode {
        TimelineMode::DenseSeconds => {
            "% ----- TDIFF (rules 23-26): seconds between events, via @T capture -----\n\
             tdiff(T, T) :- start()@T.\n\
             tdiff(T1, T2) :- diamondminus tdiff(T1, T2), not event(_), live().\n\
             tdiff(T2, T) :- diamondminus tdiff(T1, T2), event(S)@T.\n\
             diff(D) :- tdiff(T1, T2), event(S), D = T2 - T1.\n"
        }
        TimelineMode::EventEpochs => {
            "% ----- TDIFF (rules 23-26): seconds between events, via ts(U) facts -----\n\
             tdiff(U, U) :- start(), ts(U).\n\
             tdiff(T1, T2) :- diamondminus tdiff(T1, T2), not event(_), live().\n\
             tdiff(T2, U) :- diamondminus tdiff(T1, T2), event(S), ts(U).\n\
             diff(D) :- tdiff(T1, T2), event(S), D = T2 - T1.\n"
        }
    };

    format!(
        "% ============================================================\n\
         % ETH-PERP perpetual future in DatalogMTL\n\
         % (rules 1-48 of 'Smart Derivative Contracts in DatalogMTL')\n\
         % ============================================================\n\
         \n\
         % ----- MARKET liveness (DESIGN.md erratum #3) -----\n\
         live() :- start().\n\
         live() :- boxminus live().\n\
         \n\
         % ----- MARGIN (rules 1-9) -----\n\
         isOpen(A) :- tranM(A, M).\n\
         isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
         margin(A, M) :- tranM(A, M), not boxminus isOpen(A).\n\
         changeM(A) :- withdraw(A).\n\
         changeM(A) :- tranM(A, M).\n\
         changeM(A) :- closePos(A).\n\
         margin(A, M) :- diamondminus margin(A, M), not changeM(A).\n\
         margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), tranM(A, Y), M = X + Y.\n\
         margin(A, M) :- diamondminus margin(A, X), pnl(A, PL), finalFee(A, C), funding(A, IF), M = X + PL - C + IF.\n\
         \n\
         % ----- POSITION (rules 10-15) -----\n\
         position(A, S, N) :- tranM(A, M), not boxminus isOpen(A), S = 0.0, N = 0.0.\n\
         order(A, S) :- modPos(A, S).\n\
         order(A, S) :- closePos(A), S = 0.0.\n\
         position(A, S, N) :- diamondminus position(A, S, N), not order(A, _), isOpen(A).\n\
         position(A, S, N) :- diamondminus position(A, Y, Z), price(P), modPos(A, X), S = X + Y, N = Z + X * P.\n\
         position(A, S, N) :- closePos(A), S = 0.0, N = 0.0.\n\
         \n\
         % ----- RETURNS (rule 16) -----\n\
         pnl(A, PL) :- closePos(A), boxminus position(A, S, N), price(P), PL = S * P - N.\n\
         \n\
         % ----- F-RATE: interaction events (rules 17-20) -----\n\
         event(sum(S)) :- tranM(A, M), S = 0.0.\n\
         event(sum(S)) :- withdraw(A), S = 0.0.\n\
         event(sum(S)) :- modPos(A, S).\n\
         event(sum(S)) :- closePos(A), boxminus position(A, X, N), S = -X.\n\
         \n\
         % ----- SKEW (rules 21-22) -----\n\
         skew(K) :- startSkew(K).\n\
         skew(K) :- diamondminus skew(K), not event(_), live().\n\
         skew(K) :- diamondminus skew(X), event(S), K = X + S.\n\
         \n\
         {tdiff_module}\
         \n\
         % ----- RATE (rules 27-30): instantaneous funding rate -----\n\
         rate(I) :- event(S), boxminus skew(K), price(P), I = -K * P / {scale}.\n\
         clampR(C) :- rate(I), I > 1.0, C = 1.0.\n\
         clampR(C) :- rate(I), I < -1.0, C = -1.0.\n\
         clampR(I) :- rate(I), I >= -1.0, I <= 1.0.\n\
         \n\
         % ----- FRS (rules 31-33): the funding rate sequence -----\n\
         unrFund(UF) :- clampR(I), price(P), diff(T), UF = I * P * T * {imax} / {period}.\n\
         frs(F) :- startFrs(F).\n\
         frs(F) :- diamondminus frs(F), not unrFund(_), live().\n\
         frs(F) :- diamondminus frs(X), unrFund(UF), F = X + UF.\n\
         \n\
         % ----- INDF (rules 34-37): individual funding -----\n\
         indF(A, F, AF) :- boxminus position(A, S, N), frs(F), modPos(A, C), S = 0.0, AF = 0.0.\n\
         indF(A, F, AF) :- diamondminus indF(A, F, AF), not order(A, _).\n\
         indF(A, F, AF) :- diamondminus indF(A, PF, PAF), frs(F), modPos(A, C), boxminus position(A, S, N), AF = PAF + S * (F - PF).\n\
         funding(A, IF) :- diamondminus indF(A, PF, AF), closePos(A), frs(F), boxminus position(A, S, N), IF = AF + S * (F - PF).\n\
         \n\
         % ----- FEES (rules 38-48) -----\n\
         fee(A, C) :- tranM(A, M), not boxminus isOpen(A), C = 0.0.\n\
         fee(A, C) :- diamondminus fee(A, C), not order(A, _), isOpen(A).\n\
         fee(A, C) :- modPos(A, S), price(P), diamondminus fee(A, OldC), skew(K), K >= 0.0, S > 0.0, C = OldC + abs(S * P * {taker}).\n\
         fee(A, C) :- modPos(A, S), price(P), diamondminus fee(A, OldC), skew(K), K < 0.0, S > 0.0, C = OldC + abs(S * P * {maker}).\n\
         fee(A, C) :- modPos(A, S), price(P), diamondminus fee(A, OldC), skew(K), K >= 0.0, S < 0.0, C = OldC + abs(S * P * {maker}).\n\
         fee(A, C) :- modPos(A, S), price(P), diamondminus fee(A, OldC), skew(K), K < 0.0, S < 0.0, C = OldC + abs(S * P * {taker}).\n\
         finalFee(A, C) :- closePos(A), boxminus position(A, S, N), skew(K), price(P), diamondminus fee(A, OldC), K >= 0.0, S < 0.0, C = OldC + abs(S * P * {taker}).\n\
         finalFee(A, C) :- closePos(A), boxminus position(A, S, N), skew(K), price(P), diamondminus fee(A, OldC), K < 0.0, S < 0.0, C = OldC + abs(S * P * {maker}).\n\
         finalFee(A, C) :- closePos(A), boxminus position(A, S, N), skew(K), price(P), diamondminus fee(A, OldC), K >= 0.0, S > 0.0, C = OldC + abs(S * P * {maker}).\n\
         finalFee(A, C) :- closePos(A), boxminus position(A, S, N), skew(K), price(P), diamondminus fee(A, OldC), K < 0.0, S > 0.0, C = OldC + abs(S * P * {taker}).\n\
         fee(A, C) :- closePos(A), C = 0.0.\n"
    )
}

/// Formats an `f64` so it reparses to the identical value and always looks
/// like a decimal literal to the lexer.
fn fmt_f64(v: f64) -> String {
    let s = format!("{v:?}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Human-readable labels for the generated rules, aligned with the paper's
/// rule numbering (plus the auxiliary rules we added).
const RULE_LABELS: &[&str] = &[
    "live-init",
    "live-propagate",
    "rule 1 (isOpen init)",
    "rule 2 (isOpen propagate)",
    "rule 3 (margin init)",
    "rule 4 (changeM withdraw)",
    "rule 5 (changeM deposit)",
    "rule 6 (changeM close)",
    "rule 7 (margin propagate)",
    "rule 8 (margin deposit)",
    "rule 9 (margin settle)",
    "rule 10 (position init)",
    "rule 11 (order modPos)",
    "rule 12 (order closePos)",
    "rule 13 (position propagate)",
    "rule 14 (position modify)",
    "rule 15 (position close)",
    "rule 16 (PNL)",
    "rule 17 (event tranM)",
    "rule 18 (event withdraw)",
    "rule 19 (event modPos)",
    "rule 20 (event closePos)",
    "skew-init",
    "rule 21 (skew propagate)",
    "rule 22 (skew update)",
    "rule 23 (tdiff init)",
    "rule 24 (tdiff propagate)",
    "rule 25 (tdiff update)",
    "rule 26 (diff)",
    "rule 27 (rate)",
    "rule 28 (clamp high)",
    "rule 29 (clamp low)",
    "rule 30 (clamp pass)",
    "rule 31 (unrecorded funding)",
    "frs-init",
    "rule 32 (FRS propagate)",
    "rule 33 (FRS update)",
    "rule 34 (indF init)",
    "rule 35 (indF propagate)",
    "rule 36 (indF update)",
    "rule 37 (funding settle)",
    "rule 38 (fee init)",
    "rule 39 (fee propagate)",
    "rule 40 (fee K>=0 long: taker)",
    "rule 41 (fee K<0 long: maker)",
    "rule 42 (fee K>=0 short: maker)",
    "rule 43 (fee K<0 short: taker)",
    "rule 44 (finalFee K>=0 short: taker)",
    "rule 45 (finalFee K<0 short: maker)",
    "rule 46 (finalFee K>=0 long: maker)",
    "rule 47 (finalFee K<0 long: taker)",
    "rule 48 (fee reset)",
];

/// Parses the generated source into a labeled [`Program`].
pub fn build_program(params: &MarketParams, mode: TimelineMode) -> Result<Program> {
    let mut program = parse_program(&program_source(params, mode))?;
    assert_eq!(
        program.rules.len(),
        RULE_LABELS.len(),
        "rule labels out of sync with the program source"
    );
    for (rule, label) in program.rules.iter_mut().zip(RULE_LABELS) {
        rule.label = Some((*label).to_string());
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronolog_core::{Reasoner, ReasonerConfig, Stratification, Symbol};

    #[test]
    fn both_variants_parse_and_stratify() {
        for mode in [TimelineMode::DenseSeconds, TimelineMode::EventEpochs] {
            let program = build_program(&MarketParams::default(), mode).unwrap();
            assert_eq!(program.rules.len(), RULE_LABELS.len());
            Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 100))
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn stratification_orders_the_modules() {
        let program = build_program(&MarketParams::default(), TimelineMode::DenseSeconds).unwrap();
        let s = Stratification::compute(&program).unwrap();
        let stratum = |p: &str| s.strata[&Symbol::new(p)];
        // event aggregates over position, skew negates event, rate reads skew,
        // frs negates unrFund, funding reads frs, margin reads funding.
        assert!(stratum("position") < stratum("event"));
        assert!(stratum("event") < stratum("skew"));
        assert!(stratum("skew") <= stratum("rate"));
        assert!(stratum("unrFund") < stratum("frs"));
        assert!(stratum("frs") <= stratum("funding"));
        assert!(stratum("funding") <= stratum("margin"));
        assert!(stratum("changeM") < stratum("margin"));
    }

    #[test]
    fn params_are_inlined_and_roundtrip() {
        let params = MarketParams {
            taker_fee: 0.00345,
            maker_fee: 0.00121,
            max_funding_rate: 0.125,
            ..MarketParams::default()
        };
        let src = program_source(&params, TimelineMode::DenseSeconds);
        assert!(src.contains("0.00345"));
        assert!(src.contains("0.00121"));
        assert!(src.contains("0.125"));
        assert!(src.contains("300000000.0"));
        parse_program(&src).unwrap();
    }

    #[test]
    fn fmt_f64_always_reparses_exactly() {
        for v in [0.1, 0.0035, 300_000_000.0, 86_400.0, 1.0, 0.002] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
    }

    #[test]
    fn dense_variant_uses_time_capture_epoch_variant_uses_ts() {
        let d = program_source(&MarketParams::default(), TimelineMode::DenseSeconds);
        let e = program_source(&MarketParams::default(), TimelineMode::EventEpochs);
        assert!(d.contains("start()@T"));
        assert!(!d.contains("ts(U)"));
        assert!(e.contains("ts(U)"));
        assert!(!e.contains("start()@T"));
    }
}
