//! The paper's explainability claim, tested: every state amount of the
//! smart contract can be traced back, through named contract rules, to the
//! user actions (input facts) that caused it.

use chronolog_core::{Reasoner, ReasonerConfig, Symbol};
use chronolog_perp::encode::{account_value, encode_trace};
use chronolog_perp::program::{build_program, TimelineMode};
use chronolog_perp::{AccountId, Event, MarketParams, Method, Trace};

fn ev(t: i64, acc: u32, m: Method, price: f64) -> Event {
    Event {
        time: t,
        account: AccountId(acc),
        method: m,
        price,
    }
}

fn scenario() -> Trace {
    Trace {
        start_time: 0,
        end_time: 600,
        initial_skew: 100.0,
        initial_price: 1300.0,
        events: vec![
            ev(10, 1, Method::TransferMargin { amount: 4_000.0 }, 1300.0),
            ev(20, 1, Method::ModifyPosition { size: 2.0 }, 1305.0),
            ev(60, 1, Method::ClosePosition, 1310.0),
        ],
    }
}

struct Materialized {
    program: chronolog_core::Program,
    out: chronolog_core::Materialization,
}

fn materialize_with_provenance() -> Materialized {
    let params = MarketParams::default();
    let trace = scenario();
    let program = build_program(&params, TimelineMode::EventEpochs).unwrap();
    let encoded = encode_trace(&trace, TimelineMode::EventEpochs);
    let out = Reasoner::new(
        program.clone(),
        ReasonerConfig {
            provenance: true,
            ..ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1)
        },
    )
    .unwrap()
    .materialize(&encoded.database)
    .unwrap();
    Materialized { program, out }
}

/// Finds the (unique) tuple of `pred` for account 1 holding at `t` and
/// explains it.
fn explain_fact(m: &Materialized, pred: &str, t: i64) -> String {
    let rel = m
        .out
        .database
        .relation(Symbol::new(pred))
        .unwrap_or_else(|| panic!("{pred} has facts"));
    let acc = account_value(AccountId(1));
    let (tuple, _) = rel
        .iter()
        .find(|(tuple, ivs)| {
            tuple.value(0).semantic_eq(&acc)
                && chronolog_core::IntervalSet::components_contain(
                    ivs,
                    chronolog_core::Rational::integer(t),
                )
        })
        .unwrap_or_else(|| panic!("{pred} holds for acc at t={t}"));
    m.out
        .provenance
        .as_ref()
        .expect("provenance on")
        .explain(
            &m.program,
            &m.out.database,
            Symbol::new(pred),
            &tuple.to_vec(),
            t,
        )
        .expect("explainable")
        .to_string()
}

#[test]
fn pnl_explanation_reaches_user_actions() {
    let m = materialize_with_provenance();
    // Trade closes at epoch 3.
    let text = explain_fact(&m, "pnl", 3);
    assert!(text.contains("rule 16 (PNL)"), "{text}");
    assert!(text.contains("closePos(acc0001)"), "{text}");
    // The position premise traces back to the opening order and deposit.
    assert!(text.contains("rule 14 (position modify)"), "{text}");
    assert!(text.contains("modPos(acc0001, 2.0)"), "{text}");
    assert!(text.contains("tranM(acc0001, 4000.0)"), "{text}");
    assert!(text.contains("[input]"), "{text}");
}

#[test]
fn funding_explanation_cites_the_funding_pipeline() {
    let m = materialize_with_provenance();
    let text = explain_fact(&m, "funding", 3);
    assert!(text.contains("rule 37 (funding settle)"), "{text}");
    assert!(text.contains("frs("), "{text}");
    assert!(text.contains("indF("), "{text}");
}

#[test]
fn margin_settlement_explanation_combines_all_modules() {
    let m = materialize_with_provenance();
    let text = explain_fact(&m, "margin", 3);
    assert!(text.contains("rule 9 (margin settle)"), "{text}");
    assert!(text.contains("pnl("), "{text}");
    assert!(text.contains("finalFee("), "{text}");
    assert!(text.contains("funding("), "{text}");
}

#[test]
fn propagated_state_explains_through_the_shift_rules() {
    let m = materialize_with_provenance();
    // Margin at epoch 2 (no event for the margin) exists via rule 7.
    let text = explain_fact(&m, "margin", 2);
    assert!(text.contains("rule 7 (margin propagate)"), "{text}");
}

#[test]
fn absent_facts_are_not_explained() {
    let m = materialize_with_provenance();
    let log = m.out.provenance.as_ref().unwrap();
    assert!(log
        .explain(
            &m.program,
            &m.out.database,
            Symbol::new("pnl"),
            &[account_value(AccountId(1)), chronolog_core::Value::num(1.0)],
            3,
        )
        .is_none());
}

#[test]
fn every_recorded_step_names_a_real_rule() {
    let m = materialize_with_provenance();
    let log = m.out.provenance.as_ref().unwrap();
    assert!(!log.steps().is_empty());
    for step in log.steps() {
        assert!(step.rule_index < m.program.rules.len());
        assert!(!step.added.is_empty());
    }
}
