//! Temporal aggregation (Vadalog-style stratified semantics).
//!
//! All rules feeding the same aggregate head predicate pool their
//! contributions; at every time point the aggregate ranges over the
//! contributions active there. Exactness over the continuous timeline is
//! obtained by event-point decomposition: the timeline is cut at every
//! contribution endpoint into punctual and open elementary pieces, on each
//! of which the active set — and hence the aggregate — is constant.

use crate::ast::{AggFn, Rule};
use crate::engine::eval::{eval_body, EvalCtx};
use crate::error::{Error, Result};
use crate::value::{Tuple, Value};
use mtl_temporal::{Interval, IntervalSet, Rational, TimeBound};
use std::collections::HashMap;

/// One pooled contribution: the aggregated value and when it is active.
struct Contribution {
    value: Value,
    active: IntervalSet,
}

/// Evaluates a group of aggregate rules sharing one head predicate.
/// Returns derived `(tuple, interval)` pairs (tuple includes the computed
/// aggregate at its argument position).
pub(crate) fn eval_aggregate_rules(
    rules: &[&Rule],
    ctx: &EvalCtx<'_>,
) -> Result<Vec<(Tuple, Interval)>> {
    let first = rules.first().expect("non-empty aggregate group");
    let (fun, pos) = first
        .head
        .aggregate
        .expect("aggregate group contains aggregate rules");
    let arity = first.head.atom.arity();
    for r in rules {
        let (f2, p2) = r.head.aggregate.expect("aggregate rule");
        if f2 != fun || p2 != pos || r.head.atom.arity() != arity {
            return Err(Error::Eval(format!(
                "inconsistent aggregate specifications for predicate {}",
                first.head.atom.pred
            )));
        }
    }

    // Pool contributions per group key (the non-aggregated argument values).
    let mut groups: HashMap<Vec<Value>, Vec<Contribution>> = HashMap::new();
    for rule in rules {
        for (binding, ivs) in eval_body(rule, ctx, None)? {
            let mut key = Vec::with_capacity(arity - 1);
            for (i, term) in rule.head.atom.args.iter().enumerate() {
                if i == pos {
                    continue;
                }
                key.push(ground_term(term, &binding)?);
            }
            let value = ground_term(&rule.head.atom.args[pos], &binding)?;
            groups.entry(key).or_default().push(Contribution {
                value,
                active: ivs.intersect_interval(&ctx.horizon),
            });
        }
    }

    let mut out = Vec::new();
    for (key, contribs) in groups {
        for (agg_value, piece) in decompose_and_aggregate(&contribs, fun)? {
            let mut tuple = Vec::with_capacity(arity);
            let mut key_iter = key.iter();
            for i in 0..arity {
                if i == pos {
                    tuple.push(agg_value);
                } else {
                    tuple.push(*key_iter.next().expect("key arity"));
                }
            }
            out.push((tuple.into_boxed_slice(), piece));
        }
    }
    Ok(out)
}

fn ground_term(term: &crate::ast::Term, b: &crate::engine::eval::Bindings) -> Result<Value> {
    match term {
        crate::ast::Term::Val(v) => Ok(*v),
        crate::ast::Term::Var(x) => b
            .get(x)
            .copied()
            .ok_or_else(|| Error::Eval(format!("unbound aggregate head variable {x}"))),
    }
}

/// Cuts the timeline at all contribution endpoints and aggregates the active
/// contributions on each elementary piece.
fn decompose_and_aggregate(
    contribs: &[Contribution],
    fun: AggFn,
) -> Result<Vec<(Value, Interval)>> {
    // Collect finite boundary points.
    let mut points: Vec<Rational> = Vec::new();
    let mut has_neg_inf = false;
    let mut has_pos_inf = false;
    for c in contribs {
        for iv in c.active.iter() {
            match iv.lo() {
                TimeBound::Finite(r) => points.push(r),
                TimeBound::NegInf => has_neg_inf = true,
                TimeBound::PosInf => unreachable!("lower bound cannot be +inf"),
            }
            match iv.hi() {
                TimeBound::Finite(r) => points.push(r),
                TimeBound::PosInf => has_pos_inf = true,
                TimeBound::NegInf => unreachable!("upper bound cannot be -inf"),
            }
        }
    }
    points.sort();
    points.dedup();

    // Elementary pieces: [p,p] for each boundary, (p,q) between consecutive
    // boundaries, and unbounded tails where contributions extend to ±inf.
    let mut pieces: Vec<(Interval, Rational)> = Vec::new(); // (piece, representative)
    if let (Some(&first), true) = (points.first(), has_neg_inf) {
        let piece =
            Interval::new(TimeBound::NegInf, false, first.into(), false).expect("non-empty tail");
        pieces.push((piece, first - Rational::ONE));
    }
    for (i, &p) in points.iter().enumerate() {
        pieces.push((Interval::point(p), p));
        if let Some(&q) = points.get(i + 1) {
            let piece = Interval::open(p, q);
            pieces.push((piece, (p + q) / Rational::integer(2)));
        }
    }
    if let (Some(&last), true) = (points.last(), has_pos_inf) {
        let piece =
            Interval::new(last.into(), false, TimeBound::PosInf, false).expect("non-empty tail");
        pieces.push((piece, last + Rational::ONE));
    }

    let mut out: Vec<(Value, Interval)> = Vec::new();
    for (piece, rep) in pieces {
        let active: Vec<&Contribution> =
            contribs.iter().filter(|c| c.active.contains(rep)).collect();
        if active.is_empty() {
            continue;
        }
        let value = aggregate(&active, fun)?;
        out.push((value, piece));
    }
    Ok(out)
}

fn aggregate(active: &[&Contribution], fun: AggFn) -> Result<Value> {
    match fun {
        AggFn::Count => Ok(Value::Int(active.len() as i64)),
        AggFn::Sum => {
            let mut acc = Value::Int(0);
            for c in active {
                acc = add_values(acc, c.value)?;
            }
            Ok(acc)
        }
        AggFn::Avg => {
            let mut acc = Value::Int(0);
            for c in active {
                acc = add_values(acc, c.value)?;
            }
            let total = acc
                .as_f64()
                .ok_or_else(|| Error::Eval("avg over non-numeric values".into()))?;
            Ok(Value::num(total / active.len() as f64))
        }
        AggFn::Min | AggFn::Max => {
            let mut best = active[0].value;
            for c in &active[1..] {
                let ord = c.value.semantic_cmp(&best).ok_or_else(|| {
                    Error::Eval(format!("cannot order {} and {best} in aggregate", c.value))
                })?;
                let replace = match fun {
                    AggFn::Min => ord.is_lt(),
                    AggFn::Max => ord.is_gt(),
                    _ => unreachable!("outer match restricts to min/max"),
                };
                if replace {
                    best = c.value;
                }
            }
            Ok(best)
        }
    }
}

/// Integer-preserving addition with float coercion.
fn add_values(a: Value, b: Value) -> Result<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match x.checked_add(y) {
            Some(v) => Ok(Value::Int(v)),
            None => Ok(Value::num(x as f64 + y as f64)),
        },
        _ => {
            let (x, y) = (
                a.as_f64()
                    .ok_or_else(|| Error::Eval(format!("sum over non-numeric value {a}")))?,
                b.as_f64()
                    .ok_or_else(|| Error::Eval(format!("sum over non-numeric value {b}")))?,
            );
            Ok(Value::num(x + y))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::parser::{parse_facts, parse_program};

    fn run_agg(rules_src: &str, facts: &str) -> Vec<(Tuple, Interval)> {
        let program = parse_program(rules_src).unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts(facts).unwrap()).unwrap();
        let counters = crate::engine::eval::JoinCounters::default();
        let ctx = EvalCtx {
            total: &db,
            delta: None,
            horizon: Interval::closed_int(0, 100),
            index_joins: true,
            time_index: true,
            threads: 1,
            pool: None,
            counters: &counters,
            profiler: None,
        };
        let rules: Vec<&Rule> = program.rules.iter().collect();
        let mut out = eval_aggregate_rules(&rules, &ctx).unwrap();
        out.sort_by(|a, b| a.1.cmp_position(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    #[test]
    fn sum_pools_across_rules_and_time() {
        let out = run_agg(
            "event(sum(S)) :- modPos(A, S).\nevent(sum(S)) :- tranM(A, M), S = 0.",
            "modPos(a, 3)@5.\nmodPos(b, 4)@5.\ntranM(c, 100)@5.\nmodPos(a, 9)@8.",
        );
        // at t=5: 3 + 4 + 0 = 7; at t=8: 9
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0[0], Value::Int(7));
        assert_eq!(out[0].1, Interval::at(5));
        assert_eq!(out[1].0[0], Value::Int(9));
        assert_eq!(out[1].1, Interval::at(8));
    }

    #[test]
    fn overlapping_intervals_decompose() {
        let out = run_agg(
            "load(sum(S)) :- job(J, S).",
            "job(a, 1)@[0, 10].\njob(b, 2)@[5, 15].",
        );
        // [0,5): 1 at [0,5) minus endpoints... decomposition: [0], (0,5), [5], (5,10), [10], (10,15), [15]
        // values: 1,1,3,3,3,2,2
        let find = |t: i64| -> Option<Value> {
            out.iter()
                .find(|(_, iv)| iv.contains(Rational::integer(t)))
                .map(|(tup, _)| tup[0])
        };
        assert_eq!(find(0), Some(Value::Int(1)));
        assert_eq!(find(5), Some(Value::Int(3)));
        assert_eq!(find(10), Some(Value::Int(3)));
        assert_eq!(find(12), Some(Value::Int(2)));
        assert_eq!(find(16), None);
    }

    #[test]
    fn group_by_keys_split_aggregation() {
        let out = run_agg(
            "tally(G, count(S)) :- obs(G, S).",
            "obs(g1, 10)@3.\nobs(g1, 20)@3.\nobs(g2, 30)@3.",
        );
        let mut counts: Vec<(Value, Value)> = out.iter().map(|(t, _)| (t[0], t[1])).collect();
        counts.sort();
        assert_eq!(
            counts,
            vec![
                (Value::sym("g1"), Value::Int(2)),
                (Value::sym("g2"), Value::Int(1)),
            ]
        );
    }

    #[test]
    fn min_max_avg() {
        let out = run_agg(
            "lo(min(S)) :- p(A, S).",
            "p(a, 5)@1.\np(b, 2)@1.\np(c, 9)@1.",
        );
        assert_eq!(out[0].0[0], Value::Int(2));
        let out = run_agg("hi(max(S)) :- p(A, S).", "p(a, 5)@1.\np(b, 2)@1.");
        assert_eq!(out[0].0[0], Value::Int(5));
        let out = run_agg("mean(avg(S)) :- p(A, S).", "p(a, 5)@1.\np(b, 2)@1.");
        assert_eq!(out[0].0[0], Value::num(3.5));
    }

    #[test]
    fn duplicate_values_from_distinct_derivations_both_count() {
        // Two accounts each contribute S = 0: bag semantics must yield 2 contributions.
        let out = run_agg(
            "event(count(S)) :- tranM(A, M), S = 0.",
            "tranM(a, 10)@4.\ntranM(b, 20)@4.",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0[0], Value::Int(2));
    }

    #[test]
    fn mixed_int_float_sum_coerces() {
        let out = run_agg("s(sum(S)) :- p(A, S).", "p(a, 1)@1.\np(b, 0.5)@1.");
        assert_eq!(out[0].0[0], Value::num(1.5));
    }
}
