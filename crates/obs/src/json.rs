//! A minimal JSON document model with a writer and a strict parser.
//!
//! Objects preserve insertion order (reports have stable, diffable field
//! order), integers and unsigned 64-bit values are kept exact (the ledger
//! chain hashes are `u64` and must round-trip bit-for-bit), and floats are
//! written in Rust's shortest round-trippable form.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (written without a decimal point).
    Int(i64),
    /// An unsigned integer outside `i64` range.
    UInt(u64),
    /// A finite float (non-finite values are written as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => {
                let value = value.into();
                match fields.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v = value,
                    None => fields.push((key.to_string(), value)),
                }
                self
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i64` (integral floats are accepted).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            Json::Float(v) if v.fract() == 0.0 && v.abs() < 9e15 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) => u64::try_from(v).ok(),
            Json::UInt(v) => Some(v),
            Json::Float(v) if v.fract() == 0.0 && (0.0..9e15).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that round-trips
                    // and always keeps a decimal point or exponent.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1)
            }),
        }
    }

    /// A canonical description of the value's *shape*: field names and
    /// scalar types, with arrays described by their first element. Used to
    /// pin report schemas in golden tests without pinning the values.
    pub fn type_signature(&self) -> String {
        let mut out = String::new();
        self.signature(&mut out, 0);
        out
    }

    fn signature(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(_) => out.push_str("bool"),
            Json::Int(_) | Json::UInt(_) => out.push_str("int"),
            Json::Float(_) => out.push_str("float"),
            Json::Str(_) => out.push_str("string"),
            Json::Arr(items) => match items.first() {
                None => out.push_str("array[]"),
                Some(first) => {
                    out.push_str("array of ");
                    first.signature(out, depth);
                }
            },
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (k, v) in fields {
                    out.push_str(&pad);
                    out.push_str("  ");
                    out.push_str(k);
                    out.push_str(": ");
                    v.signature(out, depth + 1);
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(v as i64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::UInt(v),
        }
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\\n\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_roundtrips_exactly() {
        let h = 0xcbf29ce484222325u64;
        let v = Json::from(h);
        let back = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(h));
    }

    #[test]
    fn floats_keep_their_point() {
        let v = Json::Float(42.0);
        assert_eq!(v.to_compact(), "42.0");
        assert_eq!(Json::parse("42.0").unwrap(), Json::Float(42.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let mut o = Json::object();
        o.set("b", 1i64).set("a", Json::Arr(vec![Json::Null]));
        assert_eq!(o.to_compact(), "{\"b\":1,\"a\":[null]}");
        let back = Json::parse(&o.to_pretty()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".to_string())
        );
    }

    #[test]
    fn type_signature_is_shape_only() {
        let a = Json::parse("{\"n\": 1, \"xs\": [{\"k\": 2.5}]}").unwrap();
        let b = Json::parse("{\"n\": 99, \"xs\": [{\"k\": 0.1}, {\"k\": 7.0}]}").unwrap();
        assert_eq!(a.type_signature(), b.type_signature());
        assert!(a.type_signature().contains("n: int"));
    }
}
