//! Physical plans: each rule body is compiled — once per stratum, and again
//! whenever its input cardinalities shift — into an ordered list of
//! [`PlanStep`]s that both evaluators execute.
//!
//! A plan fixes three decisions that `eval_body` used to make interpretively
//! on every fixpoint iteration:
//!
//! 1. **Join order.** The delta-restricted literal always goes first (that is
//!    what makes semi-naive evaluation pay off); the remaining positive
//!    literals are ordered greedily by estimated output rows when
//!    [`PlanConfig::cost_based`] is set, and keep their textual order
//!    otherwise. Ties break toward textual order, so a plan with no
//!    cardinality information is exactly the old interpretive order.
//! 2. **Constraint scheduling.** Constraints are batched after the join that
//!    binds their variables, replicating the runtime scheduling passes
//!    statically from the rule text alone. A constraint whose variables can
//!    never be bound compiles to an explicit unschedulable step that raises
//!    [`Error::Unsafe`] when reached — unconditionally, where the old
//!    interpretive loop could mask the error behind an empty accumulator.
//! 3. **Access path.** Each join step carries the access path the executor
//!    takes (scan / value probe / time probe / both), derived at plan time
//!    from the same thresholds `eval_rel` used to re-derive per lookup. For
//!    plans built with live cardinalities ([`PlanConfig::authoritative`])
//!    the choice is binding: `eval_rel` follows it, keeping only a runtime
//!    guard that degrades to a scan when the chosen index's preconditions
//!    do not hold at execution time (relation shrank below the index
//!    threshold, no read mask for a time probe). Throwaway plans (compiled
//!    with no cardinality information) stay advisory, so their `eval_rel`
//!    calls keep the legacy per-lookup selection. Composite (`since` /
//!    `until`) steps always resolve per leaf at runtime.
//!
//! Plans are cheap to build (linear passes over the body) and carry a
//! [`RulePlan::fingerprint`] over coarse (power-of-two bucketed) relation
//! sizes, so the stratum loop only re-plans when a relation crosses a
//! magnitude boundary, not on every delta tick. On top of that fingerprint
//! gate the stratum loop *forces* a replan when a plan's observed rows
//! drift a sustained factor from its estimate (see
//! [`RulePlan::observed_error`]), feeding per-literal correction factors
//! back into [`build_plan`] — the self-tuning loop described in
//! `docs/PERFORMANCE.md`.

use crate::ast::{CmpOp, Expr, Literal, MetricAtom, Rule, Term};
use crate::engine::cost::{estimate_rows, size_bucket, CardinalitySource};
use crate::engine::eval::INDEX_MIN_TUPLES;
use crate::symbol::Symbol;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Planner knobs, mirroring the [`ReasonerConfig`](crate::ReasonerConfig)
/// switches that influence physical plans.
pub(crate) struct PlanConfig {
    /// Reorder positive literals by estimated cost (`false` preserves the
    /// textual order — the `--no-reorder` ablation baseline).
    pub cost_based: bool,
    /// Value indexes are enabled, so ground positions can probe.
    pub index_joins: bool,
    /// The time index is enabled, so masked reads can probe by window.
    pub time_index: bool,
    /// The compiled access paths are binding for the executor. Set by the
    /// fixpoint loop, whose plans see live cardinalities; `false` for
    /// throwaway plans (`eval_body`, the naive oracle), which plan against
    /// [`NoCardinalities`](crate::engine::cost::NoCardinalities) and would
    /// otherwise pin every step to a size-0 scan.
    pub authoritative: bool,
}

/// The access path a join step takes. For authoritative plans the executor
/// follows it (with a runtime degrade-to-scan guard when the index
/// preconditions no longer hold); for throwaway plans `eval_rel` re-derives
/// the decision per lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AccessPath {
    /// Full relation scan (small relation, or no usable index).
    Scan,
    /// Value-index probe on the most selective ground position.
    ValueProbe,
    /// Sorted-endpoint time-index probe on the read mask.
    TimeProbe,
    /// Value probe intersected with a time probe.
    ValueTimeProbe,
}

impl AccessPath {
    pub(crate) fn tag(self) -> &'static str {
        match self {
            AccessPath::Scan => "scan",
            AccessPath::ValueProbe => "value-probe",
            AccessPath::TimeProbe => "time-probe",
            AccessPath::ValueTimeProbe => "value+time-probe",
        }
    }

    /// Whether this path probes the secondary value index.
    pub(crate) fn uses_value(self) -> bool {
        matches!(self, AccessPath::ValueProbe | AccessPath::ValueTimeProbe)
    }

    /// Whether this path probes the sorted-endpoint time index.
    pub(crate) fn uses_time(self) -> bool {
        matches!(self, AccessPath::TimeProbe | AccessPath::ValueTimeProbe)
    }
}

/// How a scheduled constraint executes (moved here from `eval.rs`; the
/// planner decides the mode statically, both executors apply it).
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum ConstraintMode {
    /// All variables bound: evaluate and filter.
    Filter,
    /// `X = expr` with X unbound: bind X (left side).
    AssignLeft,
    /// `expr = X` with X unbound: bind X (right side).
    AssignRight,
}

/// One executable step of a rule-body plan.
#[derive(Debug)]
pub(crate) enum StepKind {
    /// Join the accumulator with the positive literal.
    Join { access: AccessPath },
    /// Subtract the negated literal's intervals.
    Negation,
    /// Apply a constraint in the scheduled mode; `None` means the
    /// constraint can never be scheduled and executing it is an error.
    Constraint { mode: Option<ConstraintMode> },
}

/// A plan step: which body literal to process, how, and what the planner
/// expected it to produce. `actual_rows` accumulates accumulator sizes
/// observed at execution time (relaxed: statistics, not synchronization).
#[derive(Debug)]
pub(crate) struct PlanStep {
    /// Index into `rule.body`.
    pub literal: usize,
    pub kind: StepKind,
    /// Estimated accumulator rows after this step, per plan build. Only
    /// meaningful for join steps; filters and negations carry `0`.
    pub est_rows: u64,
    /// Total accumulator rows observed after this step across executions.
    pub actual_rows: AtomicU64,
}

impl PlanStep {
    pub(crate) fn note_actual(&self, rows: usize) {
        self.actual_rows.fetch_add(rows as u64, Ordering::Relaxed);
    }
}

/// A compiled rule body: ordered steps plus the metadata the stratum loop
/// needs to decide when the plan has gone stale.
#[derive(Debug)]
pub(crate) struct RulePlan {
    /// The delta-restricted literal of this semi-naive variant, if any.
    pub delta_literal: Option<usize>,
    pub steps: Vec<PlanStep>,
    /// Product of the join steps' row estimates: the planner's guess at
    /// total bindings flowing out of the join pipeline.
    pub est_total: u64,
    /// `true` iff cost-based ordering chose a join order different from
    /// the delta-first textual order.
    pub reordered: bool,
    /// `true` iff some constraint can never be scheduled; executing the
    /// plan then raises [`Unsafe`](crate::Error::Unsafe) instead of
    /// silently returning an empty result.
    pub has_unschedulable: bool,
    /// Hash over coarse input cardinalities; see [`fingerprint`].
    pub fingerprint: u64,
    /// `true` iff the compiled access paths are binding for the executor
    /// (see [`PlanConfig::authoritative`]).
    pub authoritative: bool,
    /// Misestimate correction factors applied to this build, as
    /// `(literal index, factor)` pairs — empty until runtime feedback has
    /// forced a replan of this variant. Surfaced by `--explain-plans` and
    /// the stats-json `planner.plans[].corrections` field.
    pub corrections: Vec<(usize, f64)>,
    /// Times this plan has been executed (relaxed: statistics). Divides
    /// the steps' accumulated `actual_rows` back into per-execution
    /// averages for the misestimate report.
    pub executions: AtomicU64,
}

impl RulePlan {
    pub(crate) fn note_execution(&self) {
        self.executions.fetch_add(1, Ordering::Relaxed);
    }

    /// The plan's observed symmetric error factor — how far the average
    /// bindings out of the join pipeline sit from `est_total`, as a ratio
    /// `>= 1` — together with the execution count it was averaged over.
    /// `None` until the plan has executed (or when it has no join steps).
    /// The `+1` smoothing matches `RunStats::plan_feedback`, so the replan
    /// trigger and the misestimate report agree on what "off" means.
    pub(crate) fn observed_error(&self) -> Option<(f64, u64)> {
        let execs = self.executions.load(Ordering::Relaxed);
        if execs == 0 {
            return None;
        }
        let last_join = self
            .steps
            .iter()
            .rev()
            .find(|s| matches!(s.kind, StepKind::Join { .. }))?;
        let avg = last_join.actual_rows.load(Ordering::Relaxed) as f64 / execs as f64;
        let f = (avg + 1.0) / (self.est_total as f64 + 1.0);
        Some((f.max(1.0 / f), execs))
    }

    /// Per-literal correction factors learned from this plan's execution
    /// history, blended into `prior` (the factors this plan was built
    /// with): for each join step, the incremental drift of the observed
    /// cumulative row count against the estimated one is attributed to that
    /// step's literal, then geometrically averaged with the prior factor so
    /// one noisy window cannot whipsaw the estimates. Factors are clamped
    /// to `[1/1024, 1024]`; the product over all join steps reproduces the
    /// plan-level drift [`RulePlan::observed_error`] reports.
    pub(crate) fn corrected_factors(&self, prior: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let execs = self.executions.load(Ordering::Relaxed);
        if execs == 0 {
            return prior.to_vec();
        }
        let mut out: Vec<(usize, f64)> = Vec::new();
        let mut cum_est: f64 = 1.0;
        let mut prev_ratio: f64 = 1.0;
        for step in &self.steps {
            let StepKind::Join { .. } = step.kind else {
                continue;
            };
            cum_est *= step.est_rows as f64;
            let avg = step.actual_rows.load(Ordering::Relaxed) as f64 / execs as f64;
            let ratio = (avg + 1.0) / (cum_est + 1.0);
            let drift = ratio / prev_ratio;
            prev_ratio = ratio;
            let old = prior
                .iter()
                .find(|(l, _)| *l == step.literal)
                .map_or(1.0, |&(_, c)| c);
            // `est_rows` already carries `old`, so the residual drift moves
            // the factor toward `old * drift`; the geometric mean with the
            // current factor halves the step (in log space) for damping.
            let blended = (old * drift.sqrt()).clamp(1.0 / 1024.0, 1024.0);
            out.push((step.literal, blended));
        }
        out
    }
}

/// Hash over the body's predicates and power-of-two-bucketed relation
/// sizes (total, plus delta for the delta literal). Stable across runs —
/// `DefaultHasher` with default keys is deterministic — and intentionally
/// coarse: a plan is only invalidated when a relation crosses a magnitude
/// boundary, not on every single-tuple change.
pub(crate) fn fingerprint(
    rule: &Rule,
    delta_literal: Option<usize>,
    cards: &dyn CardinalitySource,
) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for (i, lit) in rule.body.iter().enumerate() {
        if let Literal::Pos(m) = lit {
            for a in m.atoms() {
                a.pred.hash(&mut h);
                size_bucket(cards.relation_size(a.pred)).hash(&mut h);
                if delta_literal == Some(i) {
                    size_bucket(cards.delta_size(a.pred)).hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

/// Estimated rows a positive literal produces per outer binding, given the
/// variables already bound. Single-atom operator chains estimate from the
/// base relation's size and the selectivity of its ground positions;
/// composite atoms (`since`/`until`) fall back to the sum of their base
/// relation sizes; `⊤` is one row, `⊥` none.
fn est_positive(
    m: &MetricAtom,
    is_delta: bool,
    bound: &HashSet<Symbol>,
    cards: &dyn CardinalitySource,
) -> u64 {
    let atoms = m.atoms();
    match atoms.as_slice() {
        [] => u64::from(!matches!(m, MetricAtom::Bottom)),
        [a] => {
            let size = if is_delta {
                cards.delta_size(a.pred)
            } else {
                cards.relation_size(a.pred)
            };
            let bound_positions: Vec<usize> = a
                .args
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t {
                    Term::Val(_) => Some(i),
                    Term::Var(x) => bound.contains(x).then_some(i),
                })
                .collect();
            estimate_rows(cards, a.pred, size, &bound_positions)
        }
        many => many
            .iter()
            .map(|a| cards.relation_size(a.pred) as u64)
            .sum(),
    }
}

/// Advisory access path for a join step, mirroring the thresholds
/// `eval_rel` applies at runtime (`INDEX_MIN_TUPLES`, ground positions,
/// masked reads — joins after the first always carry a hull mask, and the
/// first carries the horizon).
fn access_for(
    m: &MetricAtom,
    is_delta: bool,
    bound: &HashSet<Symbol>,
    cfg: &PlanConfig,
    cards: &dyn CardinalitySource,
) -> AccessPath {
    let atoms = m.atoms();
    let [a] = atoms.as_slice() else {
        return AccessPath::Scan;
    };
    let size = if is_delta {
        cards.delta_size(a.pred)
    } else {
        cards.relation_size(a.pred)
    };
    if size < INDEX_MIN_TUPLES {
        return AccessPath::Scan;
    }
    let value = cfg.index_joins
        && a.args.iter().any(|t| match t {
            Term::Val(_) => true,
            Term::Var(x) => bound.contains(x),
        });
    match (value, cfg.time_index) {
        (false, false) => AccessPath::Scan,
        (true, false) => AccessPath::ValueProbe,
        (false, true) => AccessPath::TimeProbe,
        (true, true) => AccessPath::ValueTimeProbe,
    }
}

/// Scheduling mode for a constraint under a set of bound variables, or
/// `None` when it cannot run yet. Shared by the static scheduler here and
/// (transitively) both executors.
pub(crate) fn constraint_mode(
    lhs: &Expr,
    op: CmpOp,
    rhs: &Expr,
    bound: &HashSet<Symbol>,
) -> Option<ConstraintMode> {
    let lv = lhs.variables();
    let rv = rhs.variables();
    let l_bound = lv.iter().all(|v| bound.contains(v));
    let r_bound = rv.iter().all(|v| bound.contains(v));
    if l_bound && r_bound {
        return Some(ConstraintMode::Filter);
    }
    if op == CmpOp::Eq {
        if let Expr::Term(Term::Var(v)) = lhs {
            if !bound.contains(v) && r_bound {
                return Some(ConstraintMode::AssignLeft);
            }
        }
        if let Expr::Term(Term::Var(v)) = rhs {
            if !bound.contains(v) && l_bound {
                return Some(ConstraintMode::AssignRight);
            }
        }
    }
    None
}

/// Appends every not-yet-planned constraint that is schedulable under the
/// current bound set, repeating in passes exactly like the old runtime
/// loop: within one pass the bound set is frozen, so an assignment only
/// enables later constraints from the next pass on. This keeps the
/// compiled constraint order identical to what `eval_body` used to do.
fn schedule_constraints(
    rule: &Rule,
    done: &mut [bool],
    bound: &mut HashSet<Symbol>,
    steps: &mut Vec<PlanStep>,
) {
    loop {
        let mut progressed = false;
        let mut newly_bound: Vec<Symbol> = Vec::new();
        #[allow(clippy::needless_range_loop)] // index drives both body and done
        for i in 0..rule.body.len() {
            if done[i] {
                continue;
            }
            if let Literal::Constraint(lhs, op, rhs) = &rule.body[i] {
                if let Some(mode) = constraint_mode(lhs, *op, rhs, bound) {
                    match (mode, lhs, rhs) {
                        (ConstraintMode::AssignLeft, Expr::Term(Term::Var(x)), _)
                        | (ConstraintMode::AssignRight, _, Expr::Term(Term::Var(x))) => {
                            newly_bound.push(*x);
                        }
                        _ => {}
                    }
                    steps.push(PlanStep {
                        literal: i,
                        kind: StepKind::Constraint { mode: Some(mode) },
                        est_rows: 0,
                        actual_rows: AtomicU64::new(0),
                    });
                    done[i] = true;
                    progressed = true;
                }
            }
        }
        bound.extend(newly_bound);
        if !progressed {
            return;
        }
    }
}

/// Multiplies a literal's row estimate by its learned correction factor
/// (identity when no feedback has been recorded for it). A zero estimate
/// stays zero — corrections scale what the cost model believes, they do
/// not resurrect empty relations — and a corrected non-zero estimate stays
/// at least 1 so ordering comparisons keep their sign.
fn corrected(est: u64, literal: usize, corrections: &[(usize, f64)]) -> u64 {
    if est == 0 {
        return 0;
    }
    match corrections.iter().find(|(l, _)| *l == literal) {
        Some(&(_, c)) => ((est as f64 * c).round()).max(1.0) as u64,
        None => est,
    }
}

/// Compiles one rule body (for one semi-naive variant) into a plan.
///
/// `corrections` holds per-literal misestimate correction factors for this
/// rule (from [`RulePlan::corrected_factors`] of the variant's previous
/// incarnation); pass an empty slice for a cold build or when adaptive
/// replanning is disabled.
pub(crate) fn build_plan(
    rule: &Rule,
    delta_literal: Option<usize>,
    cfg: &PlanConfig,
    cards: &dyn CardinalitySource,
    corrections: &[(usize, f64)],
) -> RulePlan {
    let n = rule.body.len();
    let positives: Vec<usize> = (0..n)
        .filter(|&i| matches!(rule.body[i], Literal::Pos(_)))
        .collect();

    // The order `eval_body` always used: delta first, then textual order.
    let base_order: Vec<usize> = match delta_literal {
        Some(d) => std::iter::once(d)
            .chain(positives.iter().copied().filter(|&i| i != d))
            .collect(),
        None => positives.clone(),
    };

    let join_order: Vec<usize> = if !cfg.cost_based || positives.len() <= 1 {
        base_order.clone()
    } else {
        // Greedy: repeatedly pick the cheapest remaining literal under the
        // variables bound so far. Strict `<` breaks ties toward the lowest
        // literal index, so equal estimates reproduce the base order.
        let mut order = Vec::with_capacity(positives.len());
        let mut bound: HashSet<Symbol> = HashSet::new();
        let mut remaining = positives.clone();
        if let Some(d) = delta_literal {
            order.push(d);
            remaining.retain(|&i| i != d);
            if let Literal::Pos(m) = &rule.body[d] {
                bound.extend(m.variables());
            }
        }
        while !remaining.is_empty() {
            let mut best = 0usize;
            let mut best_est = u64::MAX;
            for (k, &i) in remaining.iter().enumerate() {
                let Literal::Pos(m) = &rule.body[i] else {
                    unreachable!("positives contains only positive literals");
                };
                let est = corrected(est_positive(m, false, &bound, cards), i, corrections);
                if est < best_est {
                    best_est = est;
                    best = k;
                }
            }
            let i = remaining.remove(best);
            order.push(i);
            if let Literal::Pos(m) = &rule.body[i] {
                bound.extend(m.variables());
            }
        }
        order
    };
    let reordered = join_order != base_order;

    let mut steps: Vec<PlanStep> = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut est_total: u64 = 1;

    for &i in &join_order {
        let Literal::Pos(m) = &rule.body[i] else {
            unreachable!("join order contains only positive literals");
        };
        let is_delta = delta_literal == Some(i);
        let est = corrected(est_positive(m, is_delta, &bound, cards), i, corrections);
        est_total = est_total.saturating_mul(est);
        steps.push(PlanStep {
            literal: i,
            kind: StepKind::Join {
                access: access_for(m, is_delta, &bound, cfg, cards),
            },
            est_rows: est,
            actual_rows: AtomicU64::new(0),
        });
        done[i] = true;
        bound.extend(m.variables());
        schedule_constraints(rule, &mut done, &mut bound, &mut steps);
    }
    // Trailing pass: assignment chains in positive-free rules.
    schedule_constraints(rule, &mut done, &mut bound, &mut steps);

    // Remaining literals in textual order: negations, then any constraint
    // that never became schedulable (an explicit error step).
    let mut has_unschedulable = false;
    #[allow(clippy::needless_range_loop)] // index drives both body and done
    for i in 0..n {
        if done[i] {
            continue;
        }
        match &rule.body[i] {
            Literal::Neg(_) => steps.push(PlanStep {
                literal: i,
                kind: StepKind::Negation,
                est_rows: 0,
                actual_rows: AtomicU64::new(0),
            }),
            Literal::Constraint(..) => {
                has_unschedulable = true;
                steps.push(PlanStep {
                    literal: i,
                    kind: StepKind::Constraint { mode: None },
                    est_rows: 0,
                    actual_rows: AtomicU64::new(0),
                });
            }
            Literal::Pos(_) => unreachable!("planned in the join loop"),
        }
    }

    // Only corrections for literals this variant actually joins are carried
    // (a factor learned for a literal that became a negation-only variant
    // would be noise in the explain output).
    let applied: Vec<(usize, f64)> = corrections
        .iter()
        .copied()
        .filter(|(l, _)| {
            steps
                .iter()
                .any(|s| s.literal == *l && matches!(s.kind, StepKind::Join { .. }))
        })
        .collect();

    RulePlan {
        delta_literal,
        steps,
        est_total,
        reordered,
        has_unschedulable,
        fingerprint: fingerprint(rule, delta_literal, cards),
        authoritative: cfg.authoritative,
        corrections: applied,
        executions: AtomicU64::new(0),
    }
}

/// A rendered plan for one rule variant: what `--explain-plans` prints and
/// what the stats-json v4 `planner.plans` array carries.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanExplain {
    /// Rule index in the program.
    pub rule: usize,
    /// Rule label (or `r{idx}`).
    pub label: String,
    /// Delta-restricted literal of this semi-naive variant, if any.
    pub delta_literal: Option<usize>,
    /// Whether cost-based ordering changed the join order.
    pub reordered: bool,
    /// Estimated bindings out of the join pipeline.
    pub est_rows: u64,
    /// Times this plan executed.
    pub executions: u64,
    /// Accumulated bindings out of the join pipeline across executions
    /// (the last join step's observed accumulator total; equals
    /// `executions` seed rows for join-free plans).
    pub actual_rows: u64,
    /// Misestimate correction factors this build applied, as
    /// `(literal index, factor)` pairs (empty until adaptive feedback has
    /// forced a replan of this variant).
    pub corrections: Vec<(usize, f64)>,
    /// Steps in execution order.
    pub steps: Vec<PlanStepExplain>,
}

/// One rendered plan step.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanStepExplain {
    /// Human-readable step description, e.g. `join Δprice(S, P)`.
    pub desc: String,
    /// The compiled access path's tag for join steps (`scan`,
    /// `value-probe`, `time-probe`, `value+time-probe`); `-` for
    /// constraints and negations.
    pub access: &'static str,
    /// Estimated rows after this step (join steps only; else 0).
    pub est_rows: u64,
    /// Accumulated rows observed after this step across executions.
    pub actual_rows: u64,
}

/// Renders a plan for explain output / stats-json.
pub(crate) fn explain(rule_idx: usize, label: &str, rule: &Rule, plan: &RulePlan) -> PlanExplain {
    let steps = plan
        .steps
        .iter()
        .map(|s| {
            let lit = &rule.body[s.literal];
            let (desc, access) = match &s.kind {
                StepKind::Join { access } => {
                    let delta = if plan.delta_literal == Some(s.literal) {
                        "Δ"
                    } else {
                        ""
                    };
                    (format!("join {delta}{lit}"), access.tag())
                }
                StepKind::Negation => (format!("negate {lit}"), "-"),
                StepKind::Constraint { mode: Some(m) } => (
                    match m {
                        ConstraintMode::Filter => format!("filter {lit}"),
                        ConstraintMode::AssignLeft | ConstraintMode::AssignRight => {
                            format!("assign {lit}")
                        }
                    },
                    "-",
                ),
                StepKind::Constraint { mode: None } => (format!("unschedulable {lit}"), "-"),
            };
            PlanStepExplain {
                desc,
                access,
                est_rows: s.est_rows,
                actual_rows: s.actual_rows.load(Ordering::Relaxed),
            }
        })
        .collect();
    let executions = plan.executions.load(Ordering::Relaxed);
    // Bindings out of the join pipeline: the accumulated rows after the
    // last join step. A join-free plan seeds one row per execution.
    let actual_rows = plan
        .steps
        .iter()
        .rev()
        .find(|s| matches!(s.kind, StepKind::Join { .. }))
        .map_or(executions, |s| s.actual_rows.load(Ordering::Relaxed));
    PlanExplain {
        rule: rule_idx,
        label: label.to_string(),
        delta_literal: plan.delta_literal,
        reordered: plan.reordered,
        est_rows: plan.est_total,
        executions,
        actual_rows,
        corrections: plan.corrections.clone(),
        steps,
    }
}
