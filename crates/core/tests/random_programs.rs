//! Engine vs brute-force oracle on *randomly generated* stratified
//! programs — beyond the fixed templates of `engine_vs_naive.rs`, this
//! explores rule shapes the templates don't: random operator chains,
//! random join structure, recursion through shifted heads, and negation
//! at random strata.
//!
//! Generation is driven by the deterministic in-repo `SmallRng` (one seed
//! per case), so every failure is reproducible from the printed seed.

use chronolog_core::naive::naive_materialize;
use chronolog_core::{Database, IntervalSet, Rational, Reasoner, ReasonerConfig, Value};
use chronolog_obs::SmallRng;

const T_MIN: i64 = 0;
const T_MAX: i64 = 18;

/// Predicates: EDB e1/1, e2/2; IDB p0/1, p1/2, p2/1, p3/2 — negation is
/// only generated against strictly lower-numbered predicates, which makes
/// every generated program stratifiable by construction.
const IDB: [(&str, usize); 4] = [("p0", 1), ("p1", 2), ("p2", 1), ("p3", 2)];
const EDB: [(&str, usize); 2] = [("e1", 1), ("e2", 2)];

#[derive(Debug, Clone)]
struct RuleSpec {
    head: usize,            // IDB index
    body: Vec<(usize, u8)>, // (atom source, operator code)
    negated: Option<usize>, // atom source for a trailing negation
    window: (i64, i64),     // diamond window
    shift: i64,             // punctual box shift
}

/// Atom sources 0..6: e1, e2, p0, p1, p2, p3.
fn source_pred(src: usize) -> (&'static str, usize) {
    match src {
        0 | 1 => EDB[src],
        _ => IDB[src - 2],
    }
}

/// Draws one rule spec; `max_op` bounds the operator codes (5 = full
/// operator set, 3 = past-only, for the forward-propagating fragment).
fn gen_rule(rng: &mut SmallRng, max_op: u8) -> RuleSpec {
    let head = rng.gen_range_usize(0, IDB.len());
    let body_len = rng.gen_range_usize(1, 4);
    let body = (0..body_len)
        .map(|_| {
            (
                rng.gen_range_usize(0, 6),
                rng.gen_range_i64(0, max_op as i64) as u8,
            )
        })
        .collect();
    let negated = if rng.gen_bool(0.5) {
        Some(rng.gen_range_usize(0, 6))
    } else {
        None
    };
    let wlo = rng.gen_range_i64(0, 3);
    let wlen = rng.gen_range_i64(0, 3);
    RuleSpec {
        head,
        body,
        negated,
        window: (wlo, wlo + wlen),
        shift: rng.gen_range_i64(1, 3),
    }
}

/// Renders a rule spec into concrete syntax, enforcing safety (head
/// variables come from the first body atom) and stratifiability (negation
/// only on strictly lower predicates / EDB).
fn render_rule(spec: &RuleSpec) -> Option<String> {
    let (head_name, head_arity) = IDB[spec.head];
    // Head variables X, Y bound by making the first atom use them.
    let head_args = match head_arity {
        1 => "X".to_string(),
        _ => "X, Y".to_string(),
    };
    let mut body = Vec::new();
    for (i, (src, op)) in spec.body.iter().enumerate() {
        // Positive IDB atoms may only reference same-or-lower predicates
        // (level recursion allowed); together with strictly-lower negation
        // this makes every generated program stratifiable by construction.
        let src = if *src >= 2 && (*src - 2) > spec.head {
            spec.head + 2
        } else {
            *src
        };
        let (name, arity) = source_pred(src);
        // First atom binds X (and Y); later atoms rejoin on X.
        let args = match (i, arity, head_arity) {
            (0, 1, 1) => "X".to_string(),
            (0, 1, _) => return None, // cannot bind Y from a unary atom
            (0, _, 1) => "X, _".to_string(),
            (0, _, _) => "X, Y".to_string(),
            (_, 1, _) => "X".to_string(),
            (_, _, _) => "X, _".to_string(),
        };
        let (wlo, whi) = spec.window;
        let atom = format!("{name}({args})");
        let wrapped = match op {
            0 => atom,
            1 => format!("diamondminus[{wlo}, {whi}] {atom}"),
            2 => format!("boxminus[{s}, {s}] {atom}", s = spec.shift),
            3 => format!("diamondplus[{wlo}, {whi}] {atom}"),
            _ => format!("boxplus[{s}, {s}] {atom}", s = spec.shift),
        };
        body.push(wrapped);
    }
    if let Some(nsrc) = spec.negated {
        let (name, arity) = source_pred(nsrc);
        // Stratifiable by construction: only EDB or strictly lower IDB.
        let lower = nsrc < 2 || (nsrc - 2) < spec.head;
        if lower {
            let args = if arity == 1 { "X" } else { "X, _" };
            body.push(format!("not {name}({args})"));
        }
    }
    Some(format!("{head_name}({head_args}) :- {}.", body.join(", ")))
}

fn gen_program(rng: &mut SmallRng, max_op: u8) -> String {
    let n = rng.gen_range_usize(1, 6);
    (0..n)
        .map(|_| gen_rule(rng, max_op))
        .filter_map(|spec| render_rule(&spec))
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_facts(rng: &mut SmallRng) -> Vec<(usize, i64, i64, i64)> {
    let n = rng.gen_range_usize(0, 10);
    (0..n)
        .map(|_| {
            (
                rng.gen_range_usize(0, 2),
                rng.gen_range_i64(0, 3),
                rng.gen_range_i64(0, 3),
                rng.gen_range_i64(T_MIN, T_MAX + 1),
            )
        })
        .collect()
}

fn build_db(facts: &[(usize, i64, i64, i64)]) -> Database {
    let mut db = Database::new();
    for &(e, x, y, t) in facts {
        let (name, arity) = EDB[e];
        let args: Vec<Value> = if arity == 1 {
            vec![Value::Int(x)]
        } else {
            vec![Value::Int(x), Value::Int(y)]
        };
        db.assert_at(name, &args, t);
    }
    db
}

fn engine_text(db: &Database) -> String {
    let mut lines = Vec::new();
    for (pred, tuple, ivs) in db.iter() {
        for t in T_MIN..=T_MAX {
            if IntervalSet::components_contain(ivs, Rational::integer(t)) {
                let args = (0..tuple.len())
                    .map(|i| tuple.value(i).to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                lines.push(format!("{pred}({args})@{t}"));
            }
        }
    }
    lines.sort();
    lines.join("\n")
}

#[test]
fn random_programs_agree_with_oracle() {
    for case in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ case);
        let src = gen_program(&mut rng, 5);
        let facts = gen_facts(&mut rng);
        if src.is_empty() {
            continue;
        }
        let program = chronolog_core::parse_program(&src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        // Generated programs are stratifiable and safe by construction.
        let reasoner = Reasoner::new(
            program.clone(),
            ReasonerConfig::default().with_horizon(T_MIN, T_MAX),
        )
        .unwrap_or_else(|e| panic!("generated program must validate: {e}\n{src}"));
        let db = build_db(&facts);
        let naive = naive_materialize(&program, &db, T_MIN, T_MAX).unwrap();
        let engine = reasoner.materialize(&db).unwrap();
        assert_eq!(
            engine_text(&engine.database),
            naive.to_text(),
            "case {case}: program:\n{src}\nfacts: {facts:?}"
        );
    }
}

/// Streaming facts in time order through a Session equals the batch
/// materialization — the incremental engine misses and invents nothing.
/// Operators restricted to `◇⁻`/`⊟` so programs are session-eligible.
#[test]
fn session_streaming_equals_batch() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xFACADE ^ (case << 8));
        let src = gen_program(&mut rng, 3);
        let facts = gen_facts(&mut rng);
        if src.is_empty() {
            continue;
        }
        let program = chronolog_core::parse_program(&src).unwrap();
        let batch_db = build_db(&facts);
        let batch = Reasoner::new(
            program.clone(),
            ReasonerConfig::default().with_horizon(T_MIN, T_MAX),
        )
        .unwrap()
        .materialize(&batch_db)
        .unwrap();

        // Stream the same facts in time order: genesis facts (at T_MIN)
        // seed the session; later facts are grouped by timestamp, submitted
        // together, and the watermark advances after each group.
        let mk_fact = |&(e, x, y, t): &(usize, i64, i64, i64)| {
            let (name, arity) = EDB[e];
            let args: Vec<Value> = if arity == 1 {
                vec![Value::Int(x)]
            } else {
                vec![Value::Int(x), Value::Int(y)]
            };
            chronolog_core::Fact::at(name, args, t)
        };
        let mut genesis = Database::new();
        for f in facts.iter().filter(|&&(_, _, _, t)| t == T_MIN) {
            genesis.insert_fact(&mk_fact(f)).unwrap();
        }
        let mut later: Vec<&(usize, i64, i64, i64)> =
            facts.iter().filter(|&&(_, _, _, t)| t > T_MIN).collect();
        later.sort_by_key(|&&(_, _, _, t)| t);
        let mut session = Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .into_session(&genesis, T_MIN)
            .unwrap();
        let mut i = 0;
        while i < later.len() {
            let t = later[i].3;
            while i < later.len() && later[i].3 == t {
                session.submit(mk_fact(later[i])).unwrap();
                i += 1;
            }
            session.advance_to(t).unwrap();
        }
        session.advance_to(T_MAX).unwrap();
        assert_eq!(
            engine_text(session.database()),
            engine_text(&batch.database),
            "case {case}: program:\n{src}\nfacts: {facts:?}"
        );
    }
}
