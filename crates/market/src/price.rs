//! The external price oracle: a geometric-Brownian-motion ETH price path
//! sampled at event times, standing in for the Chainlink-style feed the
//! real contract reads (§3.1: "the price of the ETH-PERP is obtained from
//! an external oracle").

use chronolog_obs::SmallRng;

/// A geometric Brownian motion price process, advanced at irregular
/// timestamps (funding math only reads the price at interaction times).
pub struct GbmPrice {
    price: f64,
    last_time: i64,
    /// Annualized drift.
    pub drift: f64,
    /// Annualized volatility (crypto-typical default: 0.9).
    pub volatility: f64,
}

const SECONDS_PER_YEAR: f64 = 365.0 * 86_400.0;

impl GbmPrice {
    /// Starts the process at `price` and time `t0`.
    pub fn new(price: f64, t0: i64, drift: f64, volatility: f64) -> GbmPrice {
        assert!(price > 0.0, "GBM needs a positive start price");
        GbmPrice {
            price,
            last_time: t0,
            drift,
            volatility,
        }
    }

    /// Current price.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// Advances to `t` (seconds), sampling one GBM step, and returns the
    /// new price. Steps of zero or negative duration leave it unchanged.
    pub fn advance(&mut self, t: i64, rng: &mut SmallRng) -> f64 {
        let dt_secs = t - self.last_time;
        if dt_secs > 0 {
            let dt = dt_secs as f64 / SECONDS_PER_YEAR;
            let z = gaussian(rng);
            let step = (self.drift - 0.5 * self.volatility * self.volatility) * dt
                + self.volatility * dt.sqrt() * z;
            self.price *= step.exp();
            self.last_time = t;
        }
        self.price
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range_f64(f64::MIN_POSITIVE, 1.0);
    let u2: f64 = rng.gen_range_f64(0.0, 1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_positive_and_moves() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p = GbmPrice::new(1300.0, 0, 0.0, 0.9);
        let mut moved = false;
        let mut t = 0;
        for _ in 0..500 {
            t += 13;
            let v = p.advance(t, &mut rng);
            assert!(v > 0.0);
            moved |= (v - 1300.0).abs() > 1e-9;
        }
        assert!(moved);
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p = GbmPrice::new(1300.0, 100, 0.0, 0.9);
        assert_eq!(p.advance(100, &mut rng), 1300.0);
        assert_eq!(p.advance(50, &mut rng), 1300.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut p = GbmPrice::new(1300.0, 0, 0.05, 0.9);
            (1..50)
                .map(|i| p.advance(i * 60, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn volatility_scales_dispersion() {
        let spread = |vol: f64| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut p = GbmPrice::new(1000.0, 0, 0.0, vol);
            let mut min = f64::MAX;
            let mut max = f64::MIN;
            for i in 1..2000 {
                let v = p.advance(i * 60, &mut rng);
                min = min.min(v);
                max = max.max(v);
            }
            max - min
        };
        assert!(spread(2.0) > spread(0.1));
    }
}
