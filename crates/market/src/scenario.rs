//! Scenario generation: synthesizes trader activity with prescribed
//! aggregate statistics — the stand-in for the real Optimism-Mainnet event
//! stream behind Figure 3.
//!
//! Each scenario fixes the window, the number of interactions, the number
//! of completed trades, and the initial skew; the generator fabricates a
//! *valid* event stream (per-account lifecycles, strictly increasing
//! timestamps) matching those numbers exactly, with GBM oracle prices.

use crate::price::GbmPrice;
use chronolog_obs::SmallRng;
use chronolog_perp::{AccountId, Event, Method, Trace};

/// Configuration of one market window (a row of Figure 3).
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Label, e.g. `2022-09-27 10.30-12.30`.
    pub name: String,
    /// RNG seed (scenarios are fully deterministic).
    pub seed: u64,
    /// Window start (Unix seconds).
    pub start_time: i64,
    /// Window length in seconds (the paper uses 2-hour windows).
    pub duration_secs: i64,
    /// Total interactions with the contract (*# events*).
    pub n_events: usize,
    /// Completed trades, i.e. `closePos` calls (*# trades*).
    pub n_trades: usize,
    /// Market skew at the window start (*Skew*).
    pub initial_skew: f64,
    /// Oracle price at the window start.
    pub initial_price: f64,
    /// Annualized price volatility.
    pub volatility: f64,
    /// Annualized price drift.
    pub drift: f64,
}

impl ScenarioConfig {
    /// A 2-hour window with crypto-typical volatility.
    pub fn new(
        name: &str,
        seed: u64,
        start_time: i64,
        n_events: usize,
        n_trades: usize,
        initial_skew: f64,
        initial_price: f64,
    ) -> ScenarioConfig {
        ScenarioConfig {
            name: name.to_string(),
            seed,
            start_time,
            duration_secs: 7_200,
            n_events,
            n_trades,
            initial_skew,
            initial_price,
            volatility: 0.9,
            drift: 0.0,
        }
    }
}

/// The three intervals of Figure 3, with their published event counts,
/// trade counts, and initial skews (prices are the approximate ETH quotes
/// of those dates).
pub fn paper_intervals() -> Vec<ScenarioConfig> {
    vec![
        // 2022-09-27 10:30–12:30 GMT.
        ScenarioConfig::new(
            "2022-09-27 10.30-12.30",
            20220927,
            1_664_274_600,
            267,
            59,
            -2445.98,
            1330.0,
        ),
        // 2022-10-07 18:00–20:00 GMT.
        ScenarioConfig::new(
            "2022-10-07 18.00-20.00",
            20221007,
            1_665_165_600,
            108,
            16,
            1302.88,
            1350.0,
        ),
        // 2022-10-12 14:00–16:00 GMT.
        ScenarioConfig::new(
            "2022-10-12 14.00-16.00",
            20221012,
            1_665_583_200,
            128,
            29,
            2502.85,
            1290.0,
        ),
    ]
}

/// One account's scripted lifecycle (methods in per-account order; global
/// timestamps assigned later).
struct AccountScript {
    account: AccountId,
    methods: Vec<PlannedMethod>,
}

enum PlannedMethod {
    Deposit,
    Open,
    Modify,
    Close,
    Withdraw,
}

/// Generates a trace matching the scenario's aggregate statistics exactly.
///
/// # Panics
/// Panics when the statistics are infeasible (fewer than `2*n_trades + 1`
/// events, or zero events with nonzero trades).
pub fn generate(config: &ScenarioConfig) -> Trace {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let e = config.n_events;
    let c = config.n_trades;
    assert!(
        e >= 2 * c + usize::from(c > 0),
        "infeasible scenario: {e} events cannot contain {c} trades"
    );

    // --- Event budget: E = deposits + opens + modifies + closes + withdraws.
    let budget = e - c; // non-close events
                        // Every trade needs an open; every account needs a first deposit.
    let n_accounts = if c == 0 {
        budget.clamp(1, 8)
    } else {
        ((2 * c).div_ceil(3)).clamp(1, budget - c)
    };
    let spare = budget - c - n_accounts;
    let n_withdraw = (n_accounts / 4).min(spare);
    let spare = spare - n_withdraw;
    // Position modifications only exist for accounts that trade; with no
    // trades the whole spare budget becomes later deposits.
    let (n_extra_deposits, n_modifies) = if c == 0 {
        (spare, 0)
    } else {
        (spare / 5, spare - spare / 5)
    };

    // --- Distribute trades / modifies / deposits over accounts.
    let mut scripts: Vec<AccountScript> = (0..n_accounts)
        .map(|i| AccountScript {
            account: AccountId(i as u32 + 1),
            methods: vec![PlannedMethod::Deposit],
        })
        .collect();
    let mut trades_of = vec![0usize; n_accounts];
    for _ in 0..c {
        trades_of[rng.gen_range_usize(0, n_accounts)] += 1;
    }
    let mut modifies_of = vec![0usize; n_accounts.max(1)];
    for _ in 0..n_modifies {
        // Modifications only make sense for accounts that trade.
        let candidates: Vec<usize> = (0..n_accounts).filter(|&i| trades_of[i] > 0).collect();
        let i = *rng
            .choose(&candidates)
            .expect("n_modifies > 0 implies trading accounts exist");
        modifies_of[i] += 1;
    }
    for (i, script) in scripts.iter_mut().enumerate() {
        let mut mods_left = modifies_of[i];
        for session in 0..trades_of[i] {
            script.methods.push(PlannedMethod::Open);
            // Spread this account's modifications over its sessions.
            let sessions_left = trades_of[i] - session;
            let take = if sessions_left == 1 {
                mods_left
            } else {
                rng.gen_range_usize(0, mods_left / sessions_left.max(1) + 1)
            };
            for _ in 0..take {
                script.methods.push(PlannedMethod::Modify);
            }
            mods_left -= take;
            script.methods.push(PlannedMethod::Close);
        }
    }
    for _ in 0..n_extra_deposits {
        let i = rng.gen_range_usize(0, n_accounts);
        // A later deposit can land anywhere after the first one; append and
        // let interleaving randomize relative order with other accounts.
        let pos = rng.gen_range_usize(1, scripts[i].methods.len() + 1);
        scripts[i].methods.insert(pos, PlannedMethod::Deposit);
    }
    let mut withdrawn: Vec<usize> = (0..n_accounts).collect();
    rng.shuffle(&mut withdrawn);
    for &i in withdrawn.iter().take(n_withdraw) {
        scripts[i].methods.push(PlannedMethod::Withdraw);
    }

    // --- Strictly increasing global timestamps. ---
    assert_eq!(
        scripts.iter().map(|s| s.methods.len()).sum::<usize>(),
        e,
        "event budget accounting"
    );
    let span = config.duration_secs - 2;
    let mut times: Vec<i64> = rng
        .sample_indices(span as usize, e)
        .into_iter()
        .map(|k| config.start_time + 1 + k as i64)
        .collect();
    times.sort_unstable();

    // --- Interleave account scripts, preserving per-account order. ---
    let mut cursors = vec![0usize; n_accounts];
    let mut price = GbmPrice::new(
        config.initial_price,
        config.start_time,
        config.drift,
        config.volatility,
    );
    let mut events: Vec<Event> = Vec::with_capacity(e);
    let mut positions = vec![0.0f64; n_accounts]; // running sizes
    for t in times {
        let pending: Vec<usize> = (0..n_accounts)
            .filter(|&i| cursors[i] < scripts[i].methods.len())
            .collect();
        // Weight by remaining script length so long scripts finish in time.
        let i = *pending
            .iter()
            .max_by_key(|&&i| {
                let remaining = scripts[i].methods.len() - cursors[i];
                (remaining, rng.gen_range_i64(0, 1_000_000))
            })
            .expect("timestamps equal total events");
        let p = price.advance(t, &mut rng);
        let method = match scripts[i].methods[cursors[i]] {
            PlannedMethod::Deposit => Method::TransferMargin {
                amount: round2(rng.gen_range_f64(500.0, 50_000.0)),
            },
            PlannedMethod::Open => {
                let size = random_size(&mut rng);
                positions[i] = size;
                Method::ModifyPosition { size }
            }
            PlannedMethod::Modify => {
                let mut size = random_size(&mut rng) * 0.4;
                // Never let the running position hit exactly zero: a
                // zero-size open position has no side, and the real
                // contract rejects such orders.
                if (positions[i] + size).abs() < 1e-6 {
                    size += 0.25;
                }
                positions[i] += size;
                Method::ModifyPosition { size }
            }
            PlannedMethod::Close => {
                positions[i] = 0.0;
                Method::ClosePosition
            }
            PlannedMethod::Withdraw => Method::Withdraw,
        };
        cursors[i] += 1;
        events.push(Event {
            time: t,
            account: scripts[i].account,
            method,
            price: p,
        });
    }

    let trace = Trace {
        start_time: config.start_time,
        end_time: config.start_time + config.duration_secs,
        initial_skew: config.initial_skew,
        initial_price: config.initial_price,
        events,
    };
    trace
        .validate()
        .unwrap_or_else(|e| panic!("generator produced an invalid trace: {e}"));
    let registry = chronolog_obs::Registry::global();
    registry.counter("market.scenarios_generated").inc();
    registry
        .counter("market.events_generated")
        .add(trace.events.len() as u64);
    trace
}

/// Signed lognormal-ish position size (median ≈ 4.5 ETH, heavy tail).
fn random_size(rng: &mut SmallRng) -> f64 {
    let magnitude = rng.gen_range_f64(-0.5, 2.5).exp() * 2.5;
    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    round4(sign * magnitude)
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_intervals_match_figure_3_exactly() {
        let expected = [(267, 59, -2445.98), (108, 16, 1302.88), (128, 29, 2502.85)];
        for (config, (e, c, skew)) in paper_intervals().iter().zip(expected) {
            let trace = generate(config);
            assert_eq!(trace.event_count(), e, "{}", config.name);
            assert_eq!(trace.trade_count(), c, "{}", config.name);
            assert_eq!(trace.initial_skew, skew);
            assert_eq!(trace.span_secs(), 7_200);
            trace.validate().unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = &paper_intervals()[0];
        assert_eq!(generate(config), generate(config));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = paper_intervals()[1].clone();
        let b = a.clone();
        a.seed += 1;
        assert_ne!(generate(&a), generate(&b));
    }

    #[test]
    fn small_scenarios_are_feasible() {
        for (e, c) in [(3, 1), (5, 2), (10, 4), (50, 20), (1, 0)] {
            let config = ScenarioConfig::new("tiny", 7, 0, e, c, 0.0, 1500.0);
            let trace = generate(&config);
            assert_eq!(trace.event_count(), e);
            assert_eq!(trace.trade_count(), c);
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_scenario_panics() {
        generate(&ScenarioConfig::new("bad", 7, 0, 2, 1, 0.0, 1500.0));
    }

    #[test]
    fn timestamps_strictly_increase_and_stay_in_window() {
        let trace = generate(&paper_intervals()[2]);
        let mut last = trace.start_time;
        for e in &trace.events {
            assert!(e.time > last);
            assert!(e.time < trace.end_time);
            last = e.time;
        }
    }

    #[test]
    fn scaled_scenarios_for_benchmarks() {
        for n in [32usize, 128, 512] {
            let config = ScenarioConfig::new("scale", 11, 0, n, n / 3, 100.0, 1400.0);
            let trace = generate(&config);
            assert_eq!(trace.event_count(), n);
        }
    }
}
