//! A tour of the temporal operator toolbox on a non-financial scenario:
//! monitoring service SLAs. Shows `⊟` (continuity), `◇⁻` windows,
//! `since`, future operators in heads, and temporal aggregation.
//!
//! ```bash
//! cargo run --release -p chronolog-bench --example temporal_reasoning
//! ```

use chronolog_core::{parse_source, Database, Reasoner, ReasonerConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        % A service is 'stable' at t if it has been up continuously for the
        % last 5 minutes (box minus over a positive-length window).
        stable(S) :- boxminus[0, 5] up(S).

        % An alert fires if there was any error in the last 3 minutes.
        alerted(S) :- diamondminus[0, 3] error(S).

        % 'Degraded since restart': error-free operation since the most
        % recent restart, checked with Since.
        freshSince(S) :- since[0, 10](up(S), restart(S)).

        % A restart schedules a maintenance window for the NEXT 2 minutes
        % (future box operator in the head).
        boxplus[0, 2] maintenance(S) :- restart(S).

        % Fleet health: how many services are up at each time point.
        fleetUp(count(S)) :- up(S).

        % Incident severity: sum of per-service error weights.
        severity(sum(W)) :- error(S), weight(S, W).

        % --- timeline (minutes) ---
        up(api)@[0, 20].
        up(db)@[0, 8].
        up(db)@[11, 20].          % db was down 8-11 (exclusive bounds kept)
        restart(db)@11.
        error(api)@7.
        error(db)@9.
        weight(api, 3.0).
        weight(db, 5.0).
    ";
    let (program, facts) = parse_source(source)?;
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    let reasoner = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 20))?;
    let out = reasoner.materialize(&db)?;
    let d = &out.database;

    println!("t   | api stable | db stable | api alert | db fresh | db maint | fleetUp");
    println!("----|------------|-----------|-----------|----------|----------|--------");
    for t in 0..=20 {
        let cell = |b: bool| if b { "  x  " } else { "     " };
        let fleet = (0..=2i64)
            .find(|&n| d.holds_at("fleetUp", &[Value::Int(n)], t))
            .map(|n| n.to_string())
            .unwrap_or_default();
        println!(
            "{t:3} | {} | {} | {} | {} | {} | {}",
            cell(d.holds_at("stable", &[Value::sym("api")], t)),
            cell(d.holds_at("stable", &[Value::sym("db")], t)),
            cell(d.holds_at("alerted", &[Value::sym("api")], t)),
            cell(d.holds_at("freshSince", &[Value::sym("db")], t)),
            cell(d.holds_at("maintenance", &[Value::sym("db")], t)),
            fleet,
        );
    }

    // Spot checks of the temporal semantics.
    assert!(d.holds_at("stable", &[Value::sym("api")], 5));
    assert!(!d.holds_at("stable", &[Value::sym("api")], 4)); // only 4 min of history
    assert!(!d.holds_at("stable", &[Value::sym("db")], 12)); // too soon after the outage
    assert!(d.holds_at("stable", &[Value::sym("db")], 16));
    assert!(d.holds_at("alerted", &[Value::sym("api")], 10));
    assert!(!d.holds_at("alerted", &[Value::sym("api")], 11));
    assert!(d.holds_at("maintenance", &[Value::sym("db")], 13));
    assert!(!d.holds_at("maintenance", &[Value::sym("db")], 14));
    assert!(d.holds_at("fleetUp", &[Value::Int(2)], 3));
    assert!(d.holds_at("fleetUp", &[Value::Int(1)], 9));
    assert!(d.holds_at("severity", &[Value::num(3.0)], 7));
    assert!(d.holds_at("severity", &[Value::num(5.0)], 9));

    println!("\nall SLA spot-checks hold.");
    Ok(())
}
