//! Market parameters of the ETH-PERP contract (Figure 2 of the paper plus
//! the exchange-fee rates of §3.7).

/// Parameters shared by the DatalogMTL program and the reference engine.
///
/// Defaults follow the paper: `i_max = 0.1`, `W_max = 300,000,000 / p_t`,
/// 86400 funding epochs per day. Fee rates follow the fee *table* of §3.7
/// (skew-increasing orders pay the taker rate; see DESIGN.md erratum #2):
/// the 0.0035 rate of Example 3.6 is the skew-increasing rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MarketParams {
    /// Maximum funding rate per day (`i_max`).
    pub max_funding_rate: f64,
    /// The notional constant of `W_max = skew_scale_notional / p_t`.
    pub skew_scale_notional: f64,
    /// Fee rate charged to skew-increasing orders (`φ_t`).
    pub taker_fee: f64,
    /// Fee rate charged to skew-reducing orders (`φ_m`).
    pub maker_fee: f64,
    /// Seconds per funding period (86400 = 1 day).
    pub funding_period_secs: f64,
}

impl Default for MarketParams {
    fn default() -> Self {
        MarketParams {
            max_funding_rate: 0.1,
            skew_scale_notional: 300_000_000.0,
            taker_fee: 0.0035,
            maker_fee: 0.0020,
            funding_period_secs: 86_400.0,
        }
    }
}

impl MarketParams {
    /// `W_max` at a given price (Figure 2).
    pub fn max_proportional_skew(&self, price: f64) -> f64 {
        self.skew_scale_notional / price
    }

    /// The instantaneous funding rate `i_t` of Figure 2 given the previous
    /// skew and current price: `clamp(-K/W_max, -1, 1) * i_max / 86400`.
    pub fn instantaneous_funding_rate(&self, prev_skew: f64, price: f64) -> f64 {
        let raw = -prev_skew / self.max_proportional_skew(price);
        raw.clamp(-1.0, 1.0) * self.max_funding_rate / self.funding_period_secs
    }

    /// The fee rate for an order of (signed) size delta `dq` given the
    /// market skew: increasing |skew| pays taker, reducing pays maker.
    /// `K = 0` is treated as the non-negative branch.
    pub fn fee_rate(&self, skew: f64, dq: f64) -> f64 {
        let increases = (skew >= 0.0) == (dq > 0.0);
        if increases {
            self.taker_fee
        } else {
            self.maker_fee
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_metric_formulas() {
        let p = MarketParams::default();
        assert_eq!(p.max_proportional_skew(1500.0), 200_000.0);
        // Small skew: unclamped.
        let i = p.instantaneous_funding_rate(2000.0, 1500.0);
        let expected = -(2000.0 / 200_000.0) * 0.1 / 86_400.0;
        assert_eq!(i, expected);
        // Huge skew: clamped to ±1.
        let i = p.instantaneous_funding_rate(1e9, 1500.0);
        assert_eq!(i, -0.1 / 86_400.0);
        let i = p.instantaneous_funding_rate(-1e9, 1500.0);
        assert_eq!(i, 0.1 / 86_400.0);
    }

    #[test]
    fn funding_sign_convention() {
        let p = MarketParams::default();
        // Positive skew (longs heavier) -> negative rate -> longs pay shorts.
        assert!(p.instantaneous_funding_rate(1000.0, 1500.0) < 0.0);
        assert!(p.instantaneous_funding_rate(-1000.0, 1500.0) > 0.0);
        assert_eq!(p.instantaneous_funding_rate(0.0, 1500.0), 0.0);
    }

    #[test]
    fn fee_table_of_section_3_7() {
        let p = MarketParams::default();
        // K>0, dq>0: increases skew -> taker.
        assert_eq!(p.fee_rate(100.0, 1.0), p.taker_fee);
        // K<0, dq>0: reduces -> maker.
        assert_eq!(p.fee_rate(-100.0, 1.0), p.maker_fee);
        // K>0, dq<0: reduces -> maker.
        assert_eq!(p.fee_rate(100.0, -1.0), p.maker_fee);
        // K<0, dq<0: increases -> taker.
        assert_eq!(p.fee_rate(-100.0, -1.0), p.taker_fee);
        // K=0 treated as non-negative branch.
        assert_eq!(p.fee_rate(0.0, 1.0), p.taker_fee);
        assert_eq!(p.fee_rate(0.0, -1.0), p.maker_fee);
    }
}
