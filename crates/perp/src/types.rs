//! Trace types: the method calls of §3.2 with their timestamps and the
//! price stream from the external oracle.

use std::fmt;

/// A trader account identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AccountId(pub u32);

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acc{:04}", self.0)
    }
}

/// A method call of the ETH-PERP smart contract (§3.2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Method {
    /// `tranM(A, M)` — deposit `M` dollars of margin.
    TransferMargin {
        /// Deposit amount in dollars (positive).
        amount: f64,
    },
    /// `withdraw(A)` — close the margin account and withdraw everything.
    Withdraw,
    /// `modPos(A, S)` — open/modify a position by `S` units (sign = side).
    ModifyPosition {
        /// Size delta in base-asset units.
        size: f64,
    },
    /// `closePos(A)` — close the position and settle returns/fees/funding.
    ClosePosition,
}

impl Method {
    /// The skew impact of this interaction: `modPos` moves the skew by its
    /// size, margin operations by 0, `closePos` by minus the open size
    /// (derived at execution time — rule 20).
    pub fn is_order(&self) -> bool {
        matches!(self, Method::ModifyPosition { .. } | Method::ClosePosition)
    }
}

/// One interaction with the contract: an account calls a method at a Unix
/// timestamp while the oracle reports `price`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Event {
    /// Unix timestamp (seconds).
    pub time: i64,
    /// Calling account.
    pub account: AccountId,
    /// The method.
    pub method: Method,
    /// Oracle price of the underlying at `time`.
    pub price: f64,
}

/// A full replayable window of market activity: the paper's "2-hours
/// interval having different initial conditions".
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Window start (Unix seconds); the `start` fact of rule 23.
    pub start_time: i64,
    /// Window end (Unix seconds).
    pub end_time: i64,
    /// Skew at the window start (the *Skew* column of Figure 3), carried by
    /// out-of-window positions.
    pub initial_skew: f64,
    /// Oracle price at the window start.
    pub initial_price: f64,
    /// Events ordered by time (strictly increasing timestamps — the chain
    /// totally orders transactions).
    pub events: Vec<Event>,
}

impl Trace {
    /// Number of interactions (the *# events* column of Figure 3).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of completed trades (*# trades* column): closePos calls.
    pub fn trade_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.method, Method::ClosePosition))
            .count()
    }

    /// Window length in seconds.
    pub fn span_secs(&self) -> i64 {
        self.end_time - self.start_time
    }

    /// All distinct accounts appearing in the trace.
    pub fn accounts(&self) -> Vec<AccountId> {
        let mut v: Vec<AccountId> = self.events.iter().map(|e| e.account).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Validates the trace invariants the encodings rely on:
    /// strictly increasing timestamps within the window, positive prices,
    /// and per-account lifecycle sanity (deposit before trading, close
    /// before withdrawing, no double-open).
    pub fn validate(&self) -> Result<(), String> {
        let mut last_t = self.start_time;
        if self.initial_price <= 0.0 {
            return Err("initial price must be positive".into());
        }
        let mut margin_open: std::collections::HashSet<AccountId> = Default::default();
        let mut pos_open: std::collections::HashSet<AccountId> = Default::default();
        for (i, e) in self.events.iter().enumerate() {
            if e.time <= last_t {
                return Err(format!("event {i} at {} does not advance time", e.time));
            }
            if e.time >= self.end_time {
                return Err(format!("event {i} at {} beyond window end", e.time));
            }
            last_t = e.time;
            if e.price <= 0.0 {
                return Err(format!("event {i} has non-positive price"));
            }
            match e.method {
                Method::TransferMargin { amount } => {
                    if amount <= 0.0 {
                        return Err(format!("event {i}: non-positive deposit"));
                    }
                    margin_open.insert(e.account);
                }
                Method::ModifyPosition { size } => {
                    if !margin_open.contains(&e.account) {
                        return Err(format!("event {i}: modPos before margin deposit"));
                    }
                    if size == 0.0 {
                        return Err(format!("event {i}: zero-size order"));
                    }
                    pos_open.insert(e.account);
                }
                Method::ClosePosition => {
                    if !pos_open.remove(&e.account) {
                        return Err(format!("event {i}: closePos without open position"));
                    }
                }
                Method::Withdraw => {
                    if pos_open.contains(&e.account) {
                        return Err(format!("event {i}: withdraw with open position"));
                    }
                    if !margin_open.remove(&e.account) {
                        return Err(format!("event {i}: withdraw without margin"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The settlement of one completed trade — what the paper validates against
/// the Subgraph (Figure 5: Returns / Fee / Funding).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TradeSettlement {
    /// The trader.
    pub account: AccountId,
    /// Close timestamp.
    pub time: i64,
    /// Profit and loss (rule 16).
    pub pnl: f64,
    /// Total exchange fees of the trade (rules 44–47).
    pub fee: f64,
    /// Individual funding accrued (rule 37).
    pub funding: f64,
}

/// The observable outputs of one engine run over a trace: the funding rate
/// sequence (Figure 4) and every trade settlement (Figure 5).
#[derive(Clone, Debug, Default)]
pub struct MarketRun {
    /// `(event time, F(t))` — the funding rate sequence after each event.
    pub frs: Vec<(i64, f64)>,
    /// Settlements of completed trades, in close order.
    pub trades: Vec<TradeSettlement>,
    /// Final skew at the last event.
    pub final_skew: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: i64, acc: u32, m: Method) -> Event {
        Event {
            time: t,
            account: AccountId(acc),
            method: m,
            price: 1500.0,
        }
    }

    fn base_trace(events: Vec<Event>) -> Trace {
        Trace {
            start_time: 0,
            end_time: 7200,
            initial_skew: 0.0,
            initial_price: 1500.0,
            events,
        }
    }

    #[test]
    fn valid_lifecycle_passes() {
        let t = base_trace(vec![
            ev(10, 1, Method::TransferMargin { amount: 100.0 }),
            ev(20, 1, Method::ModifyPosition { size: 0.5 }),
            ev(30, 1, Method::ClosePosition),
            ev(40, 1, Method::Withdraw),
        ]);
        t.validate().unwrap();
        assert_eq!(t.event_count(), 4);
        assert_eq!(t.trade_count(), 1);
        assert_eq!(t.accounts(), vec![AccountId(1)]);
    }

    #[test]
    fn rejects_time_regression() {
        let t = base_trace(vec![
            ev(10, 1, Method::TransferMargin { amount: 100.0 }),
            ev(10, 2, Method::TransferMargin { amount: 100.0 }),
        ]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_trade_without_margin() {
        let t = base_trace(vec![ev(10, 1, Method::ModifyPosition { size: 1.0 })]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_withdraw_with_open_position() {
        let t = base_trace(vec![
            ev(10, 1, Method::TransferMargin { amount: 100.0 }),
            ev(20, 1, Method::ModifyPosition { size: 0.5 }),
            ev(30, 1, Method::Withdraw),
        ]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_close_without_position() {
        let t = base_trace(vec![
            ev(10, 1, Method::TransferMargin { amount: 100.0 }),
            ev(20, 1, Method::ClosePosition),
        ]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_event_beyond_window() {
        let t = base_trace(vec![ev(8000, 1, Method::TransferMargin { amount: 1.0 })]);
        assert!(t.validate().is_err());
    }
}
