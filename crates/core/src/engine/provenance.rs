//! Derivation provenance and explanation trees.
//!
//! The paper's central claim for DatalogMTL is *explainability*: every state
//! amount of the smart contract should be attributable to contract rules and
//! user actions. When provenance recording is on, the engine logs every
//! novel derivation `(rule, head tuple, added intervals, binding)`;
//! [`ProvenanceLog::explain`] reconstructs a derivation tree for any derived
//! fact by re-grounding the rule body under the recorded binding.

use crate::ast::{Literal, MetricAtom, Program, Term};
use crate::database::Database;
use crate::symbol::Symbol;
use crate::value::{Tuple, Value};
use mtl_temporal::{IntervalSet, Rational};
use std::fmt;

/// One recorded derivation step.
#[derive(Clone, Debug)]
pub struct Derivation {
    /// Index of the applied rule in the program.
    pub rule_index: usize,
    /// Derived predicate.
    pub pred: Symbol,
    /// Derived tuple.
    pub tuple: Tuple,
    /// The genuinely new intervals this step contributed.
    pub added: IntervalSet,
    /// The variable binding of the rule application (empty for aggregates).
    pub binding: Vec<(Symbol, Value)>,
}

/// The full derivation log of a materialization.
#[derive(Default)]
pub struct ProvenanceLog {
    steps: Vec<Derivation>,
}

impl ProvenanceLog {
    pub(crate) fn record(
        &mut self,
        rule_index: usize,
        pred: Symbol,
        tuple: Tuple,
        added: IntervalSet,
        binding: Vec<(Symbol, Value)>,
    ) {
        self.steps.push(Derivation {
            rule_index,
            pred,
            tuple,
            added,
            binding,
        });
    }

    /// All recorded steps.
    pub fn steps(&self) -> &[Derivation] {
        &self.steps
    }

    /// Builds an explanation tree for `pred(args)` at time `t`.
    pub fn explain(
        &self,
        program: &Program,
        db: &Database,
        pred: Symbol,
        args: &[Value],
        t: i64,
    ) -> Option<Explanation> {
        self.explain_rec(program, db, pred, args, Rational::integer(t), 0)
    }

    fn explain_rec(
        &self,
        program: &Program,
        db: &Database,
        pred: Symbol,
        args: &[Value],
        t: Rational,
        depth: usize,
    ) -> Option<Explanation> {
        if !db.holds_at_rational(pred, args, t) {
            return None;
        }
        const MAX_DEPTH: usize = 64;
        // Find the step that contributed this time point.
        let step = self.steps.iter().find(|s| {
            s.pred == pred
                && s.tuple.len() == args.len()
                && s.tuple.iter().zip(args).all(|(a, b)| a.semantic_eq(b))
                && s.added.contains(t)
        });
        let Some(step) = step else {
            // Not derived: an input (EDB) fact.
            return Some(Explanation {
                fact: render_fact(pred, args, t),
                rule: None,
                premises: Vec::new(),
            });
        };
        let rule = &program.rules[step.rule_index];
        let binding: std::collections::HashMap<Symbol, Value> =
            step.binding.iter().copied().collect();
        let mut premises = Vec::new();
        if depth < MAX_DEPTH {
            for lit in &rule.body {
                let m = match lit {
                    Literal::Pos(m) => m,
                    Literal::Neg(_) | Literal::Constraint(..) => continue,
                };
                // Punctual operator chains (the pervasive case) pinpoint the
                // exact premise time; other shapes fall back to the latest
                // validity at or before the shifted time.
                let shift = chain_shift(m);
                for atom in m.atoms() {
                    let ground: Option<Vec<Value>> = atom
                        .args
                        .iter()
                        .map(|term| match term {
                            Term::Val(v) => Some(*v),
                            Term::Var(x) => binding.get(x).copied(),
                        })
                        .collect();
                    let Some(ground) = ground else { continue };
                    let ivs = db.intervals(atom.pred, &ground);
                    let target = match shift {
                        Some(s) => t - s,
                        None => t,
                    };
                    let witness = witness_time(&ivs, target);
                    let node = match witness {
                        Some(w) => self
                            .explain_rec(program, db, atom.pred, &ground, w, depth + 1)
                            .unwrap_or_else(|| Explanation {
                                fact: render_fact(atom.pred, &ground, w),
                                rule: None,
                                premises: Vec::new(),
                            }),
                        None => Explanation {
                            fact: format!("{}({}) [no witness]", atom.pred, render_args(&ground)),
                            rule: None,
                            premises: Vec::new(),
                        },
                    };
                    premises.push(node);
                }
            }
        }
        Some(Explanation {
            fact: render_fact(pred, args, t),
            rule: Some(
                rule.label
                    .clone()
                    .unwrap_or_else(|| format!("rule #{}", step.rule_index)),
            ),
            premises,
        })
    }
}

/// Total backward shift of a punctual unary operator chain: `⊟[c]`/`◇⁻[c]`
/// look `c` into the past (positive shift), the future operators the
/// opposite. `None` when the chain has non-punctual windows or binary
/// operators.
fn chain_shift(m: &MetricAtom) -> Option<Rational> {
    match m {
        MetricAtom::Rel(_) => Some(Rational::ZERO),
        MetricAtom::BoxMinus(rho, inner) | MetricAtom::DiamondMinus(rho, inner) => {
            let c = rho.as_interval().punctual_value()?;
            Some(chain_shift(inner)? + c)
        }
        MetricAtom::BoxPlus(rho, inner) | MetricAtom::DiamondPlus(rho, inner) => {
            let c = rho.as_interval().punctual_value()?;
            Some(chain_shift(inner)? - c)
        }
        _ => None,
    }
}

/// The latest time `w <= t` at which the interval set holds (premises of
/// forward-propagating rules hold at or before the derived time).
fn witness_time(ivs: &IntervalSet, t: Rational) -> Option<Rational> {
    if ivs.contains(t) {
        return Some(t);
    }
    let mut best: Option<Rational> = None;
    for iv in ivs.iter() {
        if let mtl_temporal::TimeBound::Finite(hi) = iv.hi() {
            if hi <= t {
                best = Some(best.map_or(hi, |b: Rational| b.max(hi)));
            }
        }
    }
    best
}

fn render_args(args: &[Value]) -> String {
    args.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_fact(pred: Symbol, args: &[Value], t: Rational) -> String {
    format!("{pred}({})@{t}", render_args(args))
}

/// A derivation tree: the fact, the rule that derived it (or `None` for
/// input facts), and the explanations of its premises.
#[derive(Debug)]
pub struct Explanation {
    /// Rendered fact, e.g. `margin(acc1, 100.0)@10`.
    pub fact: String,
    /// Label of the deriving rule; `None` for EDB facts.
    pub rule: Option<String>,
    /// Premise explanations.
    pub premises: Vec<Explanation>,
}

impl Explanation {
    fn render(&self, indent: usize, out: &mut String) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(&self.fact);
        if let Some(rule) = &self.rule {
            out.push_str(&format!("   [by {rule}]"));
        } else {
            out.push_str("   [input]");
        }
        out.push('\n');
        for p in &self.premises {
            p.render(indent + 1, out);
        }
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(0, &mut s);
        write!(f, "{}", s.trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Reasoner, ReasonerConfig};
    use crate::parser::{parse_facts, parse_program};

    #[test]
    fn explains_a_derivation_chain() {
        let program = parse_program(
            "isOpen(A) :- tranM(A, M).\n\
             isOpen(A) :- boxminus isOpen(A), not withdraw(A).",
        )
        .unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts("tranM(acc, 20)@3.").unwrap())
            .unwrap();
        let m = Reasoner::new(
            program.clone(),
            ReasonerConfig {
                provenance: true,
                ..ReasonerConfig::default().with_horizon(0, 6)
            },
        )
        .unwrap()
        .materialize(&db)
        .unwrap();
        let e = m
            .explain(&program, "isOpen", &[Value::sym("acc")], 5)
            .expect("fact holds and provenance is on");
        let text = e.to_string();
        assert!(text.contains("isOpen(acc)@5"), "{text}");
        assert!(text.contains("rule #1"), "{text}");
        // Chain goes back to the input deposit.
        assert!(text.contains("tranM(acc, 20)"), "{text}");
        assert!(text.contains("[input]"), "{text}");
    }

    #[test]
    fn explain_returns_none_when_fact_absent() {
        let program = parse_program("h(A) :- p(A).").unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts("p(x)@1.").unwrap()).unwrap();
        let m = Reasoner::new(
            program.clone(),
            ReasonerConfig {
                provenance: true,
                ..ReasonerConfig::default()
            },
        )
        .unwrap()
        .materialize(&db)
        .unwrap();
        assert!(m.explain(&program, "h", &[Value::sym("x")], 2).is_none());
        assert!(m.explain(&program, "h", &[Value::sym("x")], 1).is_some());
    }
}
