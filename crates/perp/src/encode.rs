//! Encoding a market [`Trace`] as the temporal database `D` the DatalogMTL
//! program runs over (§3.1: "the user inserts the input facts to call the
//! methods").

use crate::program::TimelineMode;
use crate::types::{Event, Method, Trace};
use chronolog_core::{Database, Value};

/// A trace encoded on a program timeline.
pub struct EncodedTrace {
    /// The input database: method calls, prices, and initial conditions.
    pub database: Database,
    /// Reasoning horizon on the program timeline.
    pub horizon: (i64, i64),
    /// Timeline coordinate of each event (index-aligned with
    /// `trace.events`): the Unix second in dense mode, the epoch in epoch
    /// mode.
    pub event_coords: Vec<i64>,
    /// The encoding mode.
    pub mode: TimelineMode,
}

/// The account symbol used in facts for an account id.
pub fn account_value(account: crate::types::AccountId) -> Value {
    Value::sym(&account.to_string())
}

/// Encodes a (validated) trace.
pub fn encode_trace(trace: &Trace, mode: TimelineMode) -> EncodedTrace {
    let mut db = Database::new();
    let start_coord = match mode {
        TimelineMode::DenseSeconds => trace.start_time,
        TimelineMode::EventEpochs => 0,
    };
    let coord_of = |i: usize, e: &Event| match mode {
        TimelineMode::DenseSeconds => e.time,
        TimelineMode::EventEpochs => (i + 1) as i64,
    };

    // Initial conditions at the window start.
    db.assert_at("start", &[], start_coord);
    db.assert_at("startSkew", &[Value::num(trace.initial_skew)], start_coord);
    db.assert_at("startFrs", &[Value::num(0.0)], start_coord);
    if mode == TimelineMode::EventEpochs {
        db.assert_at("ts", &[Value::Int(trace.start_time)], 0);
    }

    let mut coords = Vec::with_capacity(trace.events.len());
    for (i, event) in trace.events.iter().enumerate() {
        let c = coord_of(i, event);
        coords.push(c);
        let acc = account_value(event.account);
        match event.method {
            Method::TransferMargin { amount } => {
                db.assert_at("tranM", &[acc, Value::num(amount)], c);
            }
            Method::Withdraw => {
                db.assert_at("withdraw", &[acc], c);
            }
            Method::ModifyPosition { size } => {
                db.assert_at("modPos", &[acc, Value::num(size)], c);
            }
            Method::ClosePosition => {
                db.assert_at("closePos", &[acc], c);
            }
        }
        // The oracle price is observed at every interaction.
        db.assert_at("price", &[Value::num(event.price)], c);
        if mode == TimelineMode::EventEpochs {
            db.assert_at("ts", &[Value::Int(event.time)], c);
        }
    }

    let horizon = match mode {
        TimelineMode::DenseSeconds => (trace.start_time, trace.end_time),
        TimelineMode::EventEpochs => (0, trace.events.len() as i64),
    };
    EncodedTrace {
        database: db,
        horizon,
        event_coords: coords,
        mode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AccountId;

    fn trace() -> Trace {
        Trace {
            start_time: 1_000,
            end_time: 8_200,
            initial_skew: -2445.98,
            initial_price: 1362.5,
            events: vec![
                Event {
                    time: 1_010,
                    account: AccountId(1),
                    method: Method::TransferMargin { amount: 100.0 },
                    price: 1362.5,
                },
                Event {
                    time: 1_025,
                    account: AccountId(1),
                    method: Method::ModifyPosition { size: 0.5 },
                    price: 1363.0,
                },
                Event {
                    time: 1_100,
                    account: AccountId(1),
                    method: Method::ClosePosition,
                    price: 1361.0,
                },
            ],
        }
    }

    #[test]
    fn dense_mode_uses_unix_seconds() {
        let e = encode_trace(&trace(), TimelineMode::DenseSeconds);
        assert_eq!(e.horizon, (1_000, 8_200));
        assert_eq!(e.event_coords, vec![1_010, 1_025, 1_100]);
        assert!(e.database.holds_at("start", &[], 1_000));
        assert!(e
            .database
            .holds_at("tranM", &[Value::sym("acc0001"), Value::num(100.0)], 1_010));
        assert!(e.database.holds_at("price", &[Value::num(1363.0)], 1_025));
        assert!(e
            .database
            .holds_at("closePos", &[Value::sym("acc0001")], 1_100));
        // No ts facts in dense mode.
        assert_eq!(
            e.database
                .intervals(chronolog_core::Symbol::new("ts"), &[Value::Int(1_000)])
                .components()
                .len(),
            0
        );
    }

    #[test]
    fn epoch_mode_compresses_the_timeline() {
        let e = encode_trace(&trace(), TimelineMode::EventEpochs);
        assert_eq!(e.horizon, (0, 3));
        assert_eq!(e.event_coords, vec![1, 2, 3]);
        assert!(e.database.holds_at("start", &[], 0));
        assert!(e.database.holds_at("ts", &[Value::Int(1_000)], 0));
        assert!(e.database.holds_at("ts", &[Value::Int(1_025)], 2));
        assert!(e
            .database
            .holds_at("modPos", &[Value::sym("acc0001"), Value::num(0.5)], 2));
    }

    #[test]
    fn initial_conditions_present_in_both_modes() {
        for mode in [TimelineMode::DenseSeconds, TimelineMode::EventEpochs] {
            let e = encode_trace(&trace(), mode);
            let t0 = e.horizon.0;
            assert!(e
                .database
                .holds_at("startSkew", &[Value::num(-2445.98)], t0));
            assert!(e.database.holds_at("startFrs", &[Value::num(0.0)], t0));
        }
    }
}
