//! The temporal database: ground tuples annotated with interval sets.
//!
//! A database `D` in the paper is a finite set of facts `P(v̄)@ρ`; here each
//! `(P, v̄)` maps to the coalesced [`IntervalSet`] of all its annotations,
//! which is the canonical representation of the induced interpretation.

use crate::ast::Fact;
use crate::symbol::Symbol;
use crate::value::{Tuple, Value};
use mtl_temporal::{Interval, IntervalSet, Rational};
use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// Index key of one argument value, normalized so semantically equal values
/// (`3` and `3.0`) land in the same bucket. Numeric values key on the `f64`
/// bit pattern — exactly the equivalence [`Value::semantic_eq`] uses, so an
/// index probe never misses a tuple a full scan would unify with.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum IndexKey {
    Num(u64),
    Sym(Symbol),
    Bool(bool),
}

impl IndexKey {
    fn of(v: &Value) -> IndexKey {
        match v.as_f64() {
            // `-0.0` is normalized at Value construction and `Int` cannot
            // produce it, so the bit pattern is canonical.
            Some(f) => IndexKey::Num(f.to_bits()),
            None => match v {
                Value::Sym(s) => IndexKey::Sym(*s),
                Value::Bool(b) => IndexKey::Bool(*b),
                Value::Int(_) | Value::Num(_) => unreachable!("numeric handled above"),
            },
        }
    }
}

/// Per-argument-position secondary indexes: `value → tuple ids`, built
/// lazily on first probe and maintained incrementally afterwards. Bucket id
/// lists are kept in ascending (insertion) order so a probe visits tuples
/// in the same order a full scan would — determinism is preserved.
#[derive(Default, Debug)]
struct SecondaryIndexes {
    by_pos: HashMap<usize, HashMap<IndexKey, Vec<u32>>>,
}

/// All tuples of one predicate with their validity intervals.
///
/// Tuples live in a dense, insertion-ordered arena (`entries`) with a
/// hash lookup (`ids`) for exact-tuple access; value indexes hang off the
/// side under a lock so read-only evaluation threads can build them on
/// first use.
#[derive(Default, Debug)]
pub struct Relation {
    entries: Vec<(Tuple, IntervalSet)>,
    ids: HashMap<Tuple, u32>,
    indexes: RwLock<SecondaryIndexes>,
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Indexes are a cache; the clone rebuilds its own lazily.
        Relation {
            entries: self.entries.clone(),
            ids: self.ids.clone(),
            indexes: RwLock::new(SecondaryIndexes::default()),
        }
    }
}

impl Relation {
    /// The id of `tuple`, allocating a fresh entry (and updating any built
    /// indexes) when unseen.
    fn id_of(&mut self, tuple: Tuple) -> u32 {
        if let Some(&id) = self.ids.get(&tuple) {
            return id;
        }
        let id = u32::try_from(self.entries.len()).expect("relation tuple-id overflow");
        let indexes = self
            .indexes
            .get_mut()
            .expect("relation index lock poisoned");
        for (&pos, buckets) in indexes.by_pos.iter_mut() {
            if let Some(v) = tuple.get(pos) {
                buckets.entry(IndexKey::of(v)).or_default().push(id);
            }
        }
        self.ids.insert(tuple.clone(), id);
        self.entries.push((tuple, IntervalSet::new()));
        id
    }

    /// Inserts an interval for a tuple; returns `true` iff the set grew.
    pub fn insert(&mut self, tuple: Tuple, interval: Interval) -> bool {
        let id = self.id_of(tuple);
        self.entries[id as usize].1.insert(interval)
    }

    /// Merges an interval set for a tuple; returns the genuinely new part
    /// (empty when nothing grew).
    pub fn merge(&mut self, tuple: Tuple, ivs: &IntervalSet) -> IntervalSet {
        let id = self.id_of(tuple);
        let entry = &mut self.entries[id as usize].1;
        let delta = ivs.difference(entry);
        if !delta.is_empty() {
            entry.union_with(&delta);
        }
        delta
    }

    /// The interval set of a tuple (empty-set view for missing tuples).
    pub fn get(&self, tuple: &[Value]) -> Option<&IntervalSet> {
        self.ids.get(tuple).map(|&id| &self.entries[id as usize].1)
    }

    /// Iterates `(tuple, intervals)` in insertion order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &IntervalSet)> {
        self.entries.iter().map(|(t, ivs)| (t, ivs))
    }

    /// The tuple and intervals stored under a tuple id (from
    /// [`Relation::probe`]).
    pub fn entry(&self, id: u32) -> (&Tuple, &IntervalSet) {
        let (t, ivs) = &self.entries[id as usize];
        (t, ivs)
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ensures the position index for `pos` exists, building it from the
    /// current entries when missing.
    fn ensure_index(&self, pos: usize) {
        if self
            .indexes
            .read()
            .expect("relation index lock poisoned")
            .by_pos
            .contains_key(&pos)
        {
            return;
        }
        let mut w = self.indexes.write().expect("relation index lock poisoned");
        // Double-checked: another thread may have built it while we waited.
        if w.by_pos.contains_key(&pos) {
            return;
        }
        let mut buckets: HashMap<IndexKey, Vec<u32>> = HashMap::new();
        for (id, (tuple, _)) in self.entries.iter().enumerate() {
            if let Some(v) = tuple.get(pos) {
                buckets.entry(IndexKey::of(v)).or_default().push(id as u32);
            }
        }
        w.by_pos.insert(pos, buckets);
    }

    /// Index probe: tuple ids whose argument at some ground position
    /// semantically equals the bound value, using the most selective
    /// (smallest-bucket) position among `ground`. Candidate ids come back
    /// in insertion order, i.e. the order a full scan would visit them, so
    /// callers only need to re-verify with full unification.
    ///
    /// Builds missing per-position indexes on first use; they are then
    /// maintained incrementally by [`Relation::insert`] /
    /// [`Relation::merge`].
    pub fn probe(&self, ground: &[(usize, Value)]) -> Vec<u32> {
        for &(pos, _) in ground {
            self.ensure_index(pos);
        }
        let r = self.indexes.read().expect("relation index lock poisoned");
        let mut best: Option<&Vec<u32>> = None;
        for (pos, v) in ground {
            let bucket = r.by_pos[pos].get(&IndexKey::of(v));
            match bucket {
                // A ground position with no bucket means no tuple can match.
                None => return Vec::new(),
                Some(b) => {
                    if best.is_none_or(|cur| b.len() < cur.len()) {
                        best = Some(b);
                    }
                }
            }
        }
        best.cloned().unwrap_or_default()
    }
}

/// A temporal database: one [`Relation`] per predicate.
#[derive(Clone, Default, Debug)]
pub struct Database {
    rels: HashMap<Symbol, Relation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts a parsed fact. Returns `true` iff the database grew.
    pub fn insert_fact(&mut self, fact: &Fact) -> bool {
        self.insert(
            fact.pred,
            fact.args.clone().into_boxed_slice(),
            fact.interval,
        )
    }

    /// Inserts facts from an iterator.
    pub fn extend_facts<'a, I: IntoIterator<Item = &'a Fact>>(&mut self, facts: I) {
        for f in facts {
            self.insert_fact(f);
        }
    }

    /// Inserts a single `(pred, tuple)@interval`. Returns `true` iff grew.
    pub fn insert(&mut self, pred: Symbol, tuple: Tuple, interval: Interval) -> bool {
        self.rels.entry(pred).or_default().insert(tuple, interval)
    }

    /// Convenience insertion with builder-style values.
    pub fn assert_at(&mut self, pred: &str, args: &[Value], t: i64) -> &mut Self {
        self.insert(
            Symbol::new(pred),
            args.to_vec().into_boxed_slice(),
            Interval::at(t),
        );
        self
    }

    /// Convenience insertion over an interval.
    pub fn assert_over(&mut self, pred: &str, args: &[Value], interval: Interval) -> &mut Self {
        self.insert(
            Symbol::new(pred),
            args.to_vec().into_boxed_slice(),
            interval,
        );
        self
    }

    /// The relation for a predicate, if any tuple exists.
    pub fn relation(&self, pred: Symbol) -> Option<&Relation> {
        self.rels.get(&pred)
    }

    /// Merges `(pred, tuple)@ivs`; returns the genuinely new intervals.
    pub fn merge(&mut self, pred: Symbol, tuple: Tuple, ivs: &IntervalSet) -> IntervalSet {
        self.rels.entry(pred).or_default().merge(tuple, ivs)
    }

    /// The interval set of a specific ground atom.
    pub fn intervals(&self, pred: Symbol, args: &[Value]) -> IntervalSet {
        self.rels
            .get(&pred)
            .and_then(|r| r.get(args))
            .cloned()
            .unwrap_or_default()
    }

    /// Does `pred(args)` hold at time `t`?
    pub fn holds_at(&self, pred: &str, args: &[Value], t: i64) -> bool {
        self.holds_at_rational(Symbol::new(pred), args, Rational::integer(t))
    }

    /// Does `pred(args)` hold at rational time `t`?
    pub fn holds_at_rational(&self, pred: Symbol, args: &[Value], t: Rational) -> bool {
        self.rels
            .get(&pred)
            .and_then(|r| r.get(args))
            .is_some_and(|ivs| ivs.contains(t))
    }

    /// All predicates present.
    pub fn predicates(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.rels.keys().copied()
    }

    /// Iterates every `(pred, tuple, intervals)`.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Tuple, &IntervalSet)> {
        self.rels
            .iter()
            .flat_map(|(p, r)| r.iter().map(move |(t, ivs)| (*p, t, ivs)))
    }

    /// Renders the database as parseable fact text, sorted for determinism.
    pub fn to_facts_text(&self) -> String {
        let mut lines: Vec<String> = self
            .iter()
            .flat_map(|(p, tuple, ivs)| {
                ivs.iter()
                    .map(move |iv| {
                        let args = tuple
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!("{p}({args})@{iv}.")
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Total number of distinct tuples across relations.
    pub fn tuple_count(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Pattern query: all tuples of `pattern.pred` unifying with the
    /// pattern's arguments (variables bind, repeated variables must agree,
    /// constants filter — numeric constants match semantically), together
    /// with their validity. Optionally restricted to a time window.
    ///
    /// ```
    /// use chronolog_core::{parse_facts, Atom, Database, Term, Value};
    /// let mut db = Database::new();
    /// db.extend_facts(&parse_facts("p(a, 1)@3.\np(a, 2)@5.\np(b, 1)@4.").unwrap());
    /// let pattern = Atom::new("p", vec![Term::Val(Value::sym("a")), Term::var("N")]);
    /// let hits = db.query(&pattern, None);
    /// assert_eq!(hits.len(), 2);
    /// ```
    pub fn query(
        &self,
        pattern: &crate::ast::Atom,
        window: Option<&Interval>,
    ) -> Vec<(Tuple, IntervalSet)> {
        let Some(rel) = self.rels.get(&pattern.pred) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        'tuples: for (tuple, ivs) in rel.iter() {
            if tuple.len() != pattern.args.len() {
                continue;
            }
            let mut bound: HashMap<Symbol, Value> = HashMap::new();
            for (term, v) in pattern.args.iter().zip(tuple.iter()) {
                match term {
                    crate::ast::Term::Val(c) => {
                        if !c.semantic_eq(v) {
                            continue 'tuples;
                        }
                    }
                    crate::ast::Term::Var(x) => match bound.get(x) {
                        Some(prev) if !prev.semantic_eq(v) => continue 'tuples,
                        _ => {
                            bound.insert(*x, *v);
                        }
                    },
                }
            }
            let clipped = match window {
                Some(w) => ivs.intersect_interval(w),
                None => ivs.clone(),
            };
            if !clipped.is_empty() {
                out.push((tuple.clone(), clipped));
            }
        }
        out
    }

    /// Parses fact text (as produced by [`Database::to_facts_text`]) back
    /// into a database — the snapshot counterpart of the renderer.
    pub fn from_facts_text(text: &str) -> crate::error::Result<Database> {
        let facts = crate::parser::parse_facts(text)?;
        let mut db = Database::new();
        db.extend_facts(&facts);
        Ok(db)
    }

    /// Total number of interval components (a proxy for memory footprint).
    pub fn component_count(&self) -> usize {
        self.iter().map(|(_, _, ivs)| ivs.components().len()).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_facts_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        db.assert_at("price", &[Value::num(1300.0)], 10);
        assert!(db.holds_at("price", &[Value::num(1300.0)], 10));
        assert!(!db.holds_at("price", &[Value::num(1300.0)], 11));
        assert!(!db.holds_at("price", &[Value::num(9.0)], 10));
    }

    #[test]
    fn repeated_insert_reports_growth_correctly() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        let tup: Tuple = vec![Value::Int(1)].into_boxed_slice();
        assert!(db.insert(pred, tup.clone(), Interval::closed_int(0, 5)));
        assert!(!db.insert(pred, tup.clone(), Interval::closed_int(2, 4)));
        assert!(db.insert(pred, tup, Interval::closed_int(4, 8)));
    }

    #[test]
    fn merge_returns_only_new_part() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        let tup: Tuple = vec![Value::Int(1)].into_boxed_slice();
        db.insert(pred, tup.clone(), Interval::closed_int(0, 5));
        let delta = db.merge(
            pred,
            tup,
            &IntervalSet::from_interval(Interval::closed_int(3, 8)),
        );
        assert_eq!(
            delta.components(),
            &[Interval::new(
                Rational::integer(5).into(),
                false,
                Rational::integer(8).into(),
                true
            )
            .unwrap()]
        );
    }

    #[test]
    fn facts_text_is_sorted_and_parseable() {
        let mut db = Database::new();
        db.assert_at("b", &[Value::Int(2)], 3);
        db.assert_at("a", &[Value::sym("x")], 1);
        let text = db.to_facts_text();
        assert!(text.starts_with("a(x)@[1]."));
        let reparsed = crate::parser::parse_facts(&text).unwrap();
        assert_eq!(reparsed.len(), 2);
    }

    #[test]
    fn query_patterns() {
        let mut db = Database::new();
        db.extend_facts(
            &crate::parser::parse_facts("p(a, 1)@3.\np(a, 2)@5.\np(b, 1)@4.\nq(a)@1.").unwrap(),
        );
        use crate::ast::{Atom, Term};
        // All p-tuples.
        let all = db.query(&Atom::new("p", vec![Term::var("X"), Term::var("Y")]), None);
        assert_eq!(all.len(), 3);
        // Constant filter.
        let a_only = db.query(
            &Atom::new("p", vec![Term::Val(Value::sym("a")), Term::var("Y")]),
            None,
        );
        assert_eq!(a_only.len(), 2);
        // Repeated variable: p(X, X) matches nothing here.
        let diag = db.query(&Atom::new("p", vec![Term::var("X"), Term::var("X")]), None);
        assert!(diag.is_empty());
        // Window restriction.
        let windowed = db.query(
            &Atom::new("p", vec![Term::var("X"), Term::var("Y")]),
            Some(&Interval::closed_int(4, 5)),
        );
        assert_eq!(windowed.len(), 2);
        // Unknown predicate.
        assert!(db.query(&Atom::new("zzz", vec![]), None).is_empty());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut db = Database::new();
        db.extend_facts(
            &crate::parser::parse_facts(
                "margin(acc1, 97.5)@[3, 9].\nprice(1330.0)@4.\nflag(true).",
            )
            .unwrap(),
        );
        let text = db.to_facts_text();
        let back = Database::from_facts_text(&text).unwrap();
        assert_eq!(back.to_facts_text(), text);
    }

    #[test]
    fn probe_finds_semantic_matches_in_scan_order() {
        let mut db = Database::new();
        db.extend_facts(
            &crate::parser::parse_facts(
                "p(a, 1)@0.\np(b, 2)@1.\np(a, 3.0)@2.\np(c, 1.0)@3.\np(a, 2)@4.",
            )
            .unwrap(),
        );
        let rel = db.relation(Symbol::new("p")).unwrap();
        // Probe on position 0 = a.
        let ids = rel.probe(&[(0, Value::sym("a"))]);
        let tuples: Vec<&Tuple> = ids.iter().map(|&id| rel.entry(id).0).collect();
        assert_eq!(tuples.len(), 3);
        // Insertion (scan) order preserved.
        assert_eq!(tuples[0][1], Value::Int(1));
        assert_eq!(tuples[1][1], Value::num(3.0));
        assert_eq!(tuples[2][1], Value::Int(2));
        // Numeric buckets are semantic: Int 1 and Num 1.0 share one.
        let ids = rel.probe(&[(1, Value::num(1.0))]);
        assert_eq!(ids.len(), 2);
        let ids = rel.probe(&[(1, Value::Int(3))]);
        assert_eq!(ids.len(), 1);
        // Most selective position wins: (a, 3.0) → bucket of size 1.
        let ids = rel.probe(&[(0, Value::sym("a")), (1, Value::Int(3))]);
        assert_eq!(ids.len(), 1);
        // A ground value with no bucket short-circuits to no candidates.
        assert!(rel.probe(&[(0, Value::sym("zzz"))]).is_empty());
    }

    #[test]
    fn probe_indexes_stay_fresh_under_inserts_and_merges() {
        let mut db = Database::new();
        let pred = Symbol::new("p");
        db.assert_at("p", &[Value::sym("a"), Value::Int(1)], 0);
        // Build the index...
        assert_eq!(
            db.relation(pred)
                .unwrap()
                .probe(&[(0, Value::sym("a"))])
                .len(),
            1
        );
        // ...then grow the relation through both mutation paths.
        db.assert_at("p", &[Value::sym("a"), Value::Int(2)], 1);
        db.merge(
            pred,
            vec![Value::sym("a"), Value::num(2.0)].into_boxed_slice(),
            &IntervalSet::from_interval(Interval::at(2)),
        );
        let rel = db.relation(pred).unwrap();
        assert_eq!(rel.probe(&[(0, Value::sym("a"))]).len(), 3);
        // Int 2 and Num 2.0 are distinct tuples but share a value bucket.
        assert_eq!(rel.probe(&[(1, Value::Int(2))]).len(), 2);
        // Cloning drops the cache; a fresh probe rebuilds and agrees.
        let cloned = rel.clone();
        assert_eq!(cloned.probe(&[(0, Value::sym("a"))]).len(), 3);
    }

    #[test]
    fn counts() {
        let mut db = Database::new();
        db.assert_at("p", &[Value::Int(1)], 0);
        db.assert_at("p", &[Value::Int(1)], 2); // second component
        db.assert_at("p", &[Value::Int(2)], 0);
        assert_eq!(db.tuple_count(), 2);
        assert_eq!(db.component_count(), 3);
    }
}
