//! A brute-force DatalogMTL evaluator over a discrete integer timeline,
//! used as a *test oracle* for the interval-based engine.
//!
//! Scope: the **integer-punctual fragment** — every fact holds at single
//! integer time points and every `⊟`/`⊞` operator is punctual (`[c,c]`),
//! while `◇⁻`/`◇⁺` may carry closed integer windows. On this fragment the
//! continuous rational semantics and the pointwise integer semantics
//! coincide (shifts map integer points to integer points, and a diamond
//! witness exists in the continuum iff one exists on the integers), so the
//! oracle's output must match the engine's *exactly*. The ETH-PERP program
//! of the paper lives entirely in this fragment.
//!
//! The implementation maximizes obviousness, not speed: truth is a set of
//! `(predicate, tuple, time)` triples and rules are evaluated by exhaustive
//! grounding at every time point until fixpoint.

use crate::analysis::{check_program, Stratification};
use crate::ast::{AggFn, Atom, HeadOp, Literal, MetricAtom, Program, Rule, Term};
use crate::database::Database;
use crate::engine::apply_constraint_row;
use crate::engine::cost::NoCardinalities;
use crate::engine::plan::{build_plan, PlanConfig, RulePlan, StepKind};
use crate::error::{Error, Result};
use crate::symbol::Symbol;
use crate::value::{Tuple, Value};
use mtl_temporal::{IntervalSet, MetricInterval, TimeBound};
use std::collections::{BTreeSet, HashMap, HashSet};

type Bindings = crate::hash::FxHashMap<Symbol, Value>;

/// Brute-force interpretation: per (pred, tuple), the set of integer times.
#[derive(Default)]
pub struct NaiveInterpretation {
    truth: HashMap<Symbol, HashMap<Tuple, BTreeSet<i64>>>,
}

impl NaiveInterpretation {
    /// Does `pred(args)` hold at `t`?
    pub fn holds_at(&self, pred: &str, args: &[Value], t: i64) -> bool {
        self.holds(Symbol::new(pred), args, t)
    }

    fn holds(&self, pred: Symbol, args: &[Value], t: i64) -> bool {
        self.truth
            .get(&pred)
            .and_then(|m| {
                m.iter()
                    .find(|(tuple, _)| tuples_eq(tuple, args))
                    .map(|(_, ts)| ts.contains(&t))
            })
            .unwrap_or(false)
    }

    fn insert(&mut self, pred: Symbol, tuple: Tuple, t: i64) -> bool {
        self.truth
            .entry(pred)
            .or_default()
            .entry(tuple)
            .or_default()
            .insert(t)
    }

    /// All `(pred, tuple, time)` triples, sorted, as display text — used to
    /// diff oracle and engine outputs in tests.
    pub fn to_text(&self) -> String {
        let mut lines = Vec::new();
        for (p, m) in &self.truth {
            for (tuple, ts) in m {
                for t in ts {
                    let args = tuple
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    lines.push(format!("{p}({args})@{t}"));
                }
            }
        }
        lines.sort();
        lines.join("\n")
    }
}

fn tuples_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.semantic_eq(y))
}

/// Runs the oracle over integer timeline `[t_min, t_max]`.
///
/// Fails with [`Error::Eval`] when the input leaves the supported fragment
/// (non-punctual facts, non-punctual box windows, since/until, fractional
/// interval bounds).
pub fn naive_materialize(
    program: &Program,
    input: &Database,
    t_min: i64,
    t_max: i64,
) -> Result<NaiveInterpretation> {
    check_program(program)?;
    let strat = Stratification::compute(program)?;
    let mut interp = NaiveInterpretation::default();

    // Load punctual EDB facts.
    for (pred, tuple, ivs) in input.iter() {
        let points = IntervalSet::punctual_points_of(ivs)
            .ok_or_else(|| Error::Eval("naive oracle requires punctual facts".to_string()))?;
        for p in points {
            let t = p
                .as_integer()
                .ok_or_else(|| Error::Eval("naive oracle requires integer times".to_string()))?;
            interp.insert(pred, tuple.to_tuple(), t);
        }
    }

    for rule_indices in &strat.rules_by_stratum {
        let (agg, normal): (Vec<_>, Vec<_>) = rule_indices
            .iter()
            .map(|&i| &program.rules[i])
            .partition(|r| r.head.aggregate.is_some());

        // Aggregates: pooled per head predicate, once per stratum.
        let mut groups: HashMap<Symbol, Vec<&Rule>> = HashMap::new();
        for r in agg {
            groups.entry(r.head.atom.pred).or_default().push(r);
        }
        for (pred, rules) in groups {
            let (fun, pos) = rules[0].head.aggregate.expect("aggregate rule");
            let plans: Vec<RulePlan> = rules.iter().map(|r| oracle_plan(r)).collect();
            for t in t_min..=t_max {
                let mut contribs: Vec<(Vec<Value>, Value)> = Vec::new();
                for (rule, plan) in rules.iter().zip(&plans) {
                    for b in satisfy_body(rule, plan, &interp, t)? {
                        let mut key = Vec::new();
                        for (i, term) in rule.head.atom.args.iter().enumerate() {
                            if i != pos {
                                key.push(ground(term, &b)?);
                            }
                        }
                        contribs.push((key, ground(&rule.head.atom.args[pos], &b)?));
                    }
                }
                let mut by_key: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
                for (k, v) in contribs {
                    by_key.entry(k).or_default().push(v);
                }
                for (key, vals) in by_key {
                    let agg_val = fold_aggregate(fun, &vals)?;
                    let mut tuple = Vec::new();
                    let mut it = key.into_iter();
                    for i in 0..rules[0].head.atom.arity() {
                        if i == pos {
                            tuple.push(agg_val);
                        } else {
                            tuple.push(it.next().expect("key arity"));
                        }
                    }
                    insert_head(
                        &mut interp,
                        pred,
                        tuple.into_boxed_slice(),
                        t,
                        &rules[0].head.ops,
                        t_min,
                        t_max,
                    )?;
                }
            }
        }

        // Normal rules: exhaustive fixpoint. Plans are input-independent
        // (the oracle uses no cardinalities), so compile once per stratum.
        let plans: Vec<RulePlan> = normal.iter().map(|r| oracle_plan(r)).collect();
        loop {
            let mut changed = false;
            for (rule, plan) in normal.iter().zip(&plans) {
                for t in t_min..=t_max {
                    for b in satisfy_body(rule, plan, &interp, t)? {
                        let tuple: Vec<Value> = rule
                            .head
                            .atom
                            .args
                            .iter()
                            .map(|term| ground(term, &b))
                            .collect::<Result<_>>()?;
                        changed |= insert_head(
                            &mut interp,
                            rule.head.atom.pred,
                            tuple.into_boxed_slice(),
                            t,
                            &rule.head.ops,
                            t_min,
                            t_max,
                        )?;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    Ok(interp)
}

fn ground(term: &Term, b: &Bindings) -> Result<Value> {
    match term {
        Term::Val(v) => Ok(*v),
        Term::Var(x) => b
            .get(x)
            .copied()
            .ok_or_else(|| Error::Eval(format!("unbound variable {x}"))),
    }
}

fn insert_head(
    interp: &mut NaiveInterpretation,
    pred: Symbol,
    tuple: Tuple,
    t: i64,
    ops: &[HeadOp],
    t_min: i64,
    t_max: i64,
) -> Result<bool> {
    // Punctual head operators are pure shifts.
    let mut times = vec![t];
    for op in ops {
        let (rho, sign) = match op {
            HeadOp::BoxMinus(r) => (r, -1),
            HeadOp::BoxPlus(r) => (r, 1),
        };
        let c = punctual_int(rho).ok_or_else(|| {
            Error::Eval("naive oracle supports only punctual head operators".to_string())
        })?;
        times = times.into_iter().map(|x| x + sign * c).collect();
    }
    let mut changed = false;
    for t in times {
        if t >= t_min && t <= t_max {
            changed |= interp.insert(pred, tuple.clone(), t);
        }
    }
    Ok(changed)
}

fn punctual_int(rho: &MetricInterval) -> Option<i64> {
    rho.as_interval().punctual_value()?.as_integer()
}

fn closed_int_bounds(rho: &MetricInterval) -> Result<(i64, i64)> {
    let iv = rho.as_interval();
    let (lo, hi) = match (iv.lo(), iv.hi()) {
        (TimeBound::Finite(a), TimeBound::Finite(b)) => (a, b),
        _ => return Err(Error::Eval("naive oracle requires finite windows".into())),
    };
    if !iv.lo_closed() || !iv.hi_closed() {
        return Err(Error::Eval("naive oracle requires closed windows".into()));
    }
    match (lo.as_integer(), hi.as_integer()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(Error::Eval("naive oracle requires integer windows".into())),
    }
}

/// Compiles the oracle's physical plan for one rule: no cost model, no
/// indexes — the same step schedule the engine produces with reordering
/// disabled, so both drivers execute one plan semantics.
fn oracle_plan(rule: &Rule) -> RulePlan {
    let cfg = PlanConfig {
        cost_based: false,
        index_joins: false,
        time_index: false,
        authoritative: false,
    };
    build_plan(rule, None, &cfg, &NoCardinalities, &[])
}

/// All bindings making the body true at time `t`, by executing the rule's
/// compiled [`RulePlan`] against the brute-force interpretation.
fn satisfy_body(
    rule: &Rule,
    plan: &RulePlan,
    interp: &NaiveInterpretation,
    t: i64,
) -> Result<Vec<Bindings>> {
    let mut acc: Vec<Bindings> = vec![Bindings::default()];
    for step in &plan.steps {
        match &step.kind {
            StepKind::Join { .. } => {
                let Literal::Pos(m) = &rule.body[step.literal] else {
                    unreachable!("join step points at a positive literal");
                };
                let mut out = Vec::new();
                for b in acc {
                    out.extend(sat_matom(m, interp, t, &b)?);
                }
                acc = dedup(out);
                if acc.is_empty() && !plan.has_unschedulable {
                    return Ok(vec![]);
                }
            }
            StepKind::Constraint { mode: Some(mode) } => {
                let Literal::Constraint(lhs, op, rhs) = &rule.body[step.literal] else {
                    unreachable!("constraint step points at a constraint literal");
                };
                let mut out = Vec::with_capacity(acc.len());
                for b in acc {
                    if let Some(b2) = apply_constraint_row(b, lhs, *op, rhs, *mode)? {
                        out.push(b2);
                    }
                }
                acc = out;
            }
            StepKind::Constraint { mode: None } => {
                return Err(Error::Unsafe(format!(
                    "constraint `{}` could not be scheduled",
                    rule.body[step.literal]
                )))
            }
            StepKind::Negation => {
                let Literal::Neg(m) = &rule.body[step.literal] else {
                    unreachable!("negation step points at a negated literal");
                };
                let mut out = Vec::new();
                for b in acc {
                    if sat_matom(m, interp, t, &b)?.is_empty() {
                        out.push(b);
                    }
                }
                acc = out;
            }
        }
    }
    Ok(acc)
}

fn sat_matom(
    m: &MetricAtom,
    interp: &NaiveInterpretation,
    t: i64,
    b: &Bindings,
) -> Result<Vec<Bindings>> {
    match m {
        MetricAtom::Top => Ok(vec![b.clone()]),
        MetricAtom::Bottom => Ok(vec![]),
        MetricAtom::Rel(atom) => Ok(sat_rel(atom, interp, t, b)),
        MetricAtom::DiamondMinus(rho, inner) => {
            let (lo, hi) = closed_int_bounds(rho)?;
            let mut out = Vec::new();
            for s in (t - hi)..=(t - lo) {
                out.extend(sat_matom(inner, interp, s, b)?);
            }
            Ok(dedup(out))
        }
        MetricAtom::DiamondPlus(rho, inner) => {
            let (lo, hi) = closed_int_bounds(rho)?;
            let mut out = Vec::new();
            for s in (t + lo)..=(t + hi) {
                out.extend(sat_matom(inner, interp, s, b)?);
            }
            Ok(dedup(out))
        }
        MetricAtom::BoxMinus(rho, inner) => {
            let c = punctual_int(rho).ok_or_else(|| {
                Error::Eval(
                    "naive oracle supports only punctual box operators (non-punctual \
                     boxes are vacuously false on punctual facts)"
                        .to_string(),
                )
            })?;
            sat_matom(inner, interp, t - c, b)
        }
        MetricAtom::BoxPlus(rho, inner) => {
            let c = punctual_int(rho).ok_or_else(|| {
                Error::Eval("naive oracle supports only punctual box operators".to_string())
            })?;
            sat_matom(inner, interp, t + c, b)
        }
        MetricAtom::Since(..) | MetricAtom::Until(..) => Err(Error::Eval(
            "naive oracle does not support since/until".to_string(),
        )),
    }
}

fn sat_rel(atom: &Atom, interp: &NaiveInterpretation, t: i64, b: &Bindings) -> Vec<Bindings> {
    let Some(rel) = interp.truth.get(&atom.pred) else {
        return vec![];
    };
    let mut out = Vec::new();
    for (tuple, times) in rel {
        if !times.contains(&t) {
            continue;
        }
        let Some(mut b2) = unify(atom, tuple, b) else {
            continue;
        };
        if let Some(tv) = atom.time_var {
            let tval = Value::Int(t);
            match b2.get(&tv) {
                Some(existing) if !existing.semantic_eq(&tval) => continue,
                _ => {}
            }
            b2.insert(tv, tval);
        }
        out.push(b2);
    }
    out
}

fn unify(atom: &Atom, tuple: &[Value], binding: &Bindings) -> Option<Bindings> {
    if atom.args.len() != tuple.len() {
        return None;
    }
    let mut b = binding.clone();
    for (term, v) in atom.args.iter().zip(tuple.iter()) {
        match term {
            Term::Val(c) => {
                if !c.semantic_eq(v) {
                    return None;
                }
            }
            Term::Var(x) => match b.get(x) {
                Some(bound) => {
                    if !bound.semantic_eq(v) {
                        return None;
                    }
                }
                None => {
                    b.insert(*x, *v);
                }
            },
        }
    }
    Some(b)
}

fn dedup(bs: Vec<Bindings>) -> Vec<Bindings> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for b in bs {
        let mut key: Vec<(Symbol, Value)> = b.iter().map(|(k, v)| (*k, *v)).collect();
        key.sort();
        if seen.insert(key) {
            out.push(b);
        }
    }
    out
}

fn fold_aggregate(fun: AggFn, vals: &[Value]) -> Result<Value> {
    let nums = || -> Result<Vec<f64>> {
        vals.iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| Error::Eval(format!("non-numeric aggregate value {v}")))
            })
            .collect()
    };
    let all_int = vals.iter().all(|v| matches!(v, Value::Int(_)));
    Ok(match fun {
        AggFn::Count => Value::Int(vals.len() as i64),
        AggFn::Sum => {
            if all_int {
                Value::Int(vals.iter().map(|v| v.as_int().expect("all ints")).sum())
            } else {
                Value::num(nums()?.iter().sum())
            }
        }
        AggFn::Avg => Value::num(nums()?.iter().sum::<f64>() / vals.len() as f64),
        AggFn::Min | AggFn::Max => {
            let mut best = vals[0];
            for v in &vals[1..] {
                let ord = v
                    .semantic_cmp(&best)
                    .ok_or_else(|| Error::Eval("incomparable aggregate values".into()))?;
                if (fun == AggFn::Min && ord.is_lt()) || (fun == AggFn::Max && ord.is_gt()) {
                    best = *v;
                }
            }
            best
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_facts, parse_program};

    fn run(rules: &str, facts: &str, span: (i64, i64)) -> NaiveInterpretation {
        let program = parse_program(rules).unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts(facts).unwrap()).unwrap();
        naive_materialize(&program, &db, span.0, span.1).unwrap()
    }

    #[test]
    fn recursion_with_negation_matches_expectation() {
        let i = run(
            "isOpen(A) :- tranM(A, M).\n\
             isOpen(A) :- boxminus isOpen(A), not withdraw(A).",
            "tranM(acc, 20)@3.\nwithdraw(acc)@7.",
            (0, 12),
        );
        for t in 3..=6 {
            assert!(i.holds_at("isOpen", &[Value::sym("acc")], t));
        }
        assert!(!i.holds_at("isOpen", &[Value::sym("acc")], 7));
        assert!(!i.holds_at("isOpen", &[Value::sym("acc")], 8));
    }

    #[test]
    fn diamond_window_semantics() {
        let i = run("h(A) :- diamondminus[0, 3] p(A).", "p(x)@5.", (0, 12));
        for t in 5..=8 {
            assert!(i.holds_at("h", &[Value::sym("x")], t), "t={t}");
        }
        assert!(!i.holds_at("h", &[Value::sym("x")], 4));
        assert!(!i.holds_at("h", &[Value::sym("x")], 9));
    }

    #[test]
    fn aggregation_per_time_point() {
        let i = run(
            "event(sum(S)) :- modPos(A, S).\nevent(sum(S)) :- tranM(A, M), S = 0.",
            "modPos(a, 3)@5.\nmodPos(b, 4)@5.\ntranM(c, 9)@5.\nmodPos(a, 2)@6.",
            (0, 10),
        );
        assert!(i.holds_at("event", &[Value::Int(7)], 5));
        assert!(i.holds_at("event", &[Value::Int(2)], 6));
        assert!(!i.holds_at("event", &[Value::Int(7)], 6));
    }

    #[test]
    fn rejects_unsupported_fragment() {
        let program = parse_program("h(A) :- boxminus[0, 2] p(A).").unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts("p(x)@5.").unwrap()).unwrap();
        assert!(naive_materialize(&program, &db, 0, 10).is_err());
        let program = parse_program("h(A) :- p(A).").unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts("p(x)@[0, 5].").unwrap())
            .unwrap();
        assert!(naive_materialize(&program, &db, 0, 10).is_err());
    }

    #[test]
    fn time_capture_binds_integer() {
        let i = run("h(A, T) :- p(A)@T.", "p(x)@7.", (0, 10));
        assert!(i.holds_at("h", &[Value::sym("x"), Value::Int(7)], 7));
    }
}
