//! Repair-vs-cold equivalence over the real corpus: each program gets a
//! churn stream — a poison fact submitted late and retracted again, plus
//! a real fact retracted and re-delivered late — that leaves the
//! surviving base facts identical to the shipped file. The streamed
//! session must therefore be byte-identical to the plain batch run, both
//! with incremental repair and with `--no-repair` (cold fallback only).

use chronolog_cli::run_cli;

fn disk(path: &str) -> std::io::Result<String> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    std::fs::read_to_string(root)
}

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// Runs the corpus file cold (batch) and churned (session + stream) and
/// asserts all three outputs — batch, repaired, fallback-only — agree.
fn assert_churn_equivalent(corpus: &str, horizon: &str, stream: &str) {
    let stream = stream.to_string();
    let fs = move |path: &str| {
        if path == "churn.stream" {
            Ok(stream.clone())
        } else {
            disk(path)
        }
    };
    let batch = run_cli(
        &args(&["run", corpus, "--horizon", horizon, "--facts"]),
        &fs,
    )
    .unwrap();
    let repaired = run_cli(
        &args(&[
            "run",
            corpus,
            "--horizon",
            horizon,
            "--facts",
            "--session",
            "--stream",
            "churn.stream",
        ]),
        &fs,
    )
    .unwrap();
    let cold_only = run_cli(
        &args(&[
            "run",
            corpus,
            "--horizon",
            horizon,
            "--facts",
            "--session",
            "--stream",
            "churn.stream",
            "--no-repair",
        ]),
        &fs,
    )
    .unwrap();
    assert_eq!(batch, repaired, "{corpus}: repaired session diverged");
    assert_eq!(batch, cold_only, "{corpus}: cold-fallback session diverged");
}

#[test]
fn margin_corpus_survives_churn() {
    assert_churn_equivalent(
        "corpus/margin.dmtl",
        "0..20",
        "advance 20\n\
         tranM(acc999, 1.0)@4.\n\
         retract tranM(acc999, 1.0)@4.\n\
         retract tranM(acc123, 3.0)@10.\n\
         tranM(acc123, 3.0)@10.\n",
    );
}

#[test]
fn sla_corpus_is_rejected_with_a_typed_error() {
    // sla.dmtl uses `since` (a head-operator rewrite), which sessions do
    // not support — streaming it must fail with the typed eligibility
    // error, not a panic or a wrong answer.
    let err = run_cli(
        &args(&["run", "corpus/sla.dmtl", "--horizon", "0..20", "--session"]),
        disk,
    )
    .unwrap_err();
    assert_eq!(err.code, 1);
    assert!(err.message.contains("session mode"), "{}", err.message);
}

#[test]
fn fibonacci_corpus_survives_churn() {
    // The poison seed corrupts the whole downstream sequence until its
    // retraction repairs it — the deepest derived cone in the corpus.
    assert_churn_equivalent(
        "corpus/fibonacci.dmtl",
        "0..10",
        "advance 10\n\
         fib(99)@2.\n\
         retract fib(99)@2.\n\
         retract fib(1)@1.\n\
         fib(1)@1.\n",
    );
}

#[test]
fn funding_corpus_survives_churn() {
    // modPos feeds a sum aggregate: the churn must re-run the aggregate
    // stratum, not just patch intervals.
    assert_churn_equivalent(
        "corpus/funding.dmtl",
        "0..3",
        "advance 3\n\
         modPos(mallory, 9.9)@1.\n\
         retract modPos(mallory, 9.9)@1.\n\
         retract modPos(alice, 2.5)@1.\n\
         modPos(alice, 2.5)@1.\n",
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "every [0,20] correction repairs the full 60-counterparty \
              closure (~6 min unoptimized); run with --release \
              (`just test-slow`, mirrored by the CI slow-suite step)"
)]
fn netting_corpus_survives_the_committed_stream() {
    let stream = disk("corpus/netting.stream").unwrap();
    assert_churn_equivalent("corpus/netting.dmtl", "0..20", &stream);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "replays the full netting repair closure (~5 min unoptimized); \
              run with --release (`just test-slow`, mirrored by the CI \
              slow-suite step)"
)]
fn netting_stream_churn_reuses_arena_slabs() {
    // Regression for Relation::remove leaking arena space: replaying
    // corpus/netting.stream retracts and re-books trades, which empties
    // interval slabs and refills them. Every emptied slab must be
    // released and the re-bookings must reuse released slabs rather
    // than extend the arena.
    let stats_path = std::env::temp_dir().join("chronolog-netting-arena.json");
    let stats_arg = stats_path.to_str().unwrap().to_string();
    run_cli(
        &args(&[
            "run",
            "corpus/netting.dmtl",
            "--horizon",
            "0..20",
            "--session",
            "--stream",
            "corpus/netting.stream",
            "--stats-json",
            &stats_arg,
        ]),
        disk,
    )
    .unwrap();
    let stats = std::fs::read_to_string(&stats_path).unwrap();
    let field = |key: &str| -> u64 {
        let at = stats.find(key).unwrap_or_else(|| panic!("{key} in stats"));
        stats[at + key.len()..]
            .trim_start_matches("\": ")
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let freed = field("arena_slabs_freed");
    let reused = field("arena_slabs_reused");
    assert!(freed > 0, "retractions released no slabs");
    assert!(reused > 0, "re-bookings reused no slabs");
}
