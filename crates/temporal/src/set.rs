//! Coalesced sets of intervals: the temporal annotation of a DatalogMTL fact.
//!
//! Every ground atom in an interpretation maps to an [`IntervalSet`] — the set
//! of time points at which the atom holds, represented as a sorted vector of
//! disjoint, *non-connected* intervals (overlapping or merely touching
//! intervals are merged eagerly). Full coalescing is not just a space
//! optimization: erosion (the `⊟ρ` operator) distributes over components only
//! when no two components can be bridged by an obligation window, which the
//! no-touching invariant guarantees.

use crate::{Interval, MetricInterval, Rational, TimeBound, TimeOverflow};
use std::fmt;

/// A set of rational time points stored as maximal disjoint intervals.
///
/// ```
/// use mtl_temporal::{Interval, IntervalSet, Rational};
/// let mut s = IntervalSet::new();
/// s.insert(Interval::closed_int(0, 2));
/// s.insert(Interval::closed_int(5, 9));
/// s.insert(Interval::closed_int(3, 3));
/// assert_eq!(s.components().len(), 3);
/// s.insert(Interval::open(Rational::integer(2), Rational::integer(3)));
/// // (2,3) glues [0,2] and [3,3] together
/// assert_eq!(s.components().len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IntervalSet {
    /// Sorted by position, pairwise non-connected.
    items: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> IntervalSet {
        IntervalSet { items: Vec::new() }
    }

    /// A set holding a single interval.
    pub fn from_interval(i: Interval) -> IntervalSet {
        IntervalSet { items: vec![i] }
    }

    /// Builds a set from arbitrary (unsorted, overlapping) intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> IntervalSet {
        let mut s = IntervalSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Trusted constructor from components already sorted and pairwise
    /// non-connected — the invariant every slice handed out by
    /// [`IntervalSet::components`] satisfies. Lets arena-backed storage
    /// rebuild a set from a stored component slice without re-coalescing.
    pub fn from_sorted(items: Vec<Interval>) -> IntervalSet {
        let s = IntervalSet { items };
        #[cfg(debug_assertions)]
        s.check_invariant();
        s
    }

    /// Clips a sorted, non-connected component slice against one interval —
    /// [`IntervalSet::intersect_interval`] for callers that hold raw
    /// components (arena slabs) rather than a set.
    pub fn clip_components(items: &[Interval], interval: &Interval) -> IntervalSet {
        let start = items.partition_point(|i| i.entirely_before(interval));
        let mut out = Vec::new();
        for i in &items[start..] {
            if interval.entirely_before(i) {
                break;
            }
            if let Some(x) = i.intersect(interval) {
                out.push(x);
            }
        }
        IntervalSet { items: out }
    }

    /// [`IntervalSet::punctual_points`] over a raw component slice.
    pub fn punctual_points_of(items: &[Interval]) -> Option<Vec<Rational>> {
        items
            .iter()
            .map(|i| i.punctual_value())
            .collect::<Option<Vec<_>>>()
    }

    /// Membership test over a raw component slice ([`IntervalSet::contains`]
    /// without constructing a set).
    pub fn components_contain(items: &[Interval], t: Rational) -> bool {
        let idx = items.partition_point(|i| match i.hi() {
            TimeBound::Finite(h) => h < t,
            TimeBound::NegInf => true,
            TimeBound::PosInf => false,
        });
        items.get(idx).map(|i| i.contains(t)).unwrap_or(false)
            || idx
                .checked_sub(1)
                .and_then(|j| items.get(j))
                .map(|i| i.contains(t))
                .unwrap_or(false)
    }

    /// The maximal disjoint intervals, in increasing order.
    pub fn components(&self) -> &[Interval] {
        &self.items
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the components.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.items.iter()
    }

    /// Membership test for a time point.
    pub fn contains(&self, t: Rational) -> bool {
        // Binary search on component ordering.
        let idx = self.items.partition_point(|i| match i.hi() {
            TimeBound::Finite(h) => h < t,
            TimeBound::NegInf => true,
            TimeBound::PosInf => false,
        });
        self.items.get(idx).map(|i| i.contains(t)).unwrap_or(false)
            || idx
                .checked_sub(1)
                .and_then(|j| self.items.get(j))
                .map(|i| i.contains(t))
                .unwrap_or(false)
    }

    /// Index of the first component that is not entirely before `interval`
    /// (the first candidate for overlap/adjacency).
    fn first_candidate(&self, interval: &Interval) -> usize {
        self.items.partition_point(|i| i.entirely_before(interval))
    }

    /// `true` iff `interval` is entirely contained in the set.
    pub fn contains_interval(&self, interval: &Interval) -> bool {
        // Only one component can contain it: the first not entirely before.
        self.items
            .get(self.first_candidate(interval))
            .is_some_and(|i| i.contains_interval(interval))
    }

    /// Inserts an interval, merging as needed. Returns `true` iff the set of
    /// time points actually grew (used for fixpoint-change detection).
    ///
    /// The dominant reasoning pattern — facts growing monotonically towards
    /// the future — hits O(log n) paths; the general case splices in place.
    pub fn insert(&mut self, interval: Interval) -> bool {
        // Fast path: appending past the end (possibly extending the last
        // component).
        match self.items.last_mut() {
            None => {
                self.items.push(interval);
                return true;
            }
            Some(last) if last.entirely_before(&interval) => {
                if let Some(u) = last.union_if_connected(&interval) {
                    if u == *last {
                        return false;
                    }
                    *last = u;
                } else {
                    self.items.push(interval);
                }
                return true;
            }
            _ => {}
        }
        // General case: find the run of components connected to `interval`.
        let start = self.first_candidate(&interval);
        if let Some(i) = self.items.get(start) {
            if i.contains_interval(&interval) {
                return false;
            }
        }
        // Components before `start` are entirely before and (by invariant)
        // not connected... except possibly items[start - 1] touching by
        // adjacency; `entirely_before` allows touching at an open/closed
        // boundary pair, so check one to the left.
        let mut lo = start;
        if lo > 0 && self.items[lo - 1].connected(&interval) {
            lo -= 1;
        }
        let mut merged = interval;
        let mut hi = lo;
        while hi < self.items.len() {
            match merged.union_if_connected(&self.items[hi]) {
                Some(u) => {
                    merged = u;
                    hi += 1;
                }
                None => break,
            }
        }
        self.items.splice(lo..hi, std::iter::once(merged));
        true
    }

    /// In-place union; returns `true` iff the set grew.
    pub fn union_with(&mut self, other: &IntervalSet) -> bool {
        let mut grew = false;
        for &i in &other.items {
            grew |= self.insert(i);
        }
        grew
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Set intersection (linear merge over both component lists).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.items.len() && j < other.items.len() {
            let a = &self.items[i];
            let b = &other.items[j];
            if let Some(x) = a.intersect(b) {
                out.push(x);
            }
            // Advance whichever ends first.
            if a.hi() < b.hi() || (a.hi() == b.hi() && !a.hi_closed()) {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { items: out }
    }

    /// Intersection with a single interval (clipping), via binary search:
    /// O(log n + |output|). This is the engine's masked-read primitive — a
    /// semi-naive delta join touches only a tiny time window of a relation
    /// whose interval set may have accumulated thousands of components.
    pub fn intersect_interval(&self, interval: &Interval) -> IntervalSet {
        let start = self.first_candidate(interval);
        let mut items = Vec::new();
        for i in &self.items[start..] {
            if interval.entirely_before(i) {
                break;
            }
            if let Some(x) = i.intersect(interval) {
                items.push(x);
            }
        }
        IntervalSet { items }
    }

    /// The convex hull `[min, max]` of the set, if non-empty.
    pub fn hull(&self) -> Option<Interval> {
        let first = self.items.first()?;
        let last = self.items.last()?;
        Interval::new(first.lo(), first.lo_closed(), last.hi(), last.hi_closed())
    }

    /// Set difference `self \ other` — the core of stratified negation and of
    /// semi-naive delta computation.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        if other.is_empty() {
            return self.clone();
        }
        let mut out = Vec::new();
        for &a in &self.items {
            let mut remaining = vec![a];
            // Skip cutters entirely before `a` in O(log n).
            let start = other.items.partition_point(|b| b.entirely_before(&a));
            for &b in &other.items[start..] {
                if a.entirely_before(&b) {
                    break;
                }
                let mut next = Vec::new();
                for piece in remaining {
                    subtract_into(&piece, &b, &mut next);
                }
                remaining = next;
                if remaining.is_empty() {
                    break;
                }
            }
            out.extend(remaining);
        }
        // Pieces from a single component stay sorted and non-connected
        // (subtracting re-opens gaps), and components were non-connected
        // already, so `out` satisfies the invariant directly.
        IntervalSet { items: out }
    }

    /// Complement relative to a horizon interval: `horizon \ self`.
    pub fn complement_within(&self, horizon: &Interval) -> IntervalSet {
        IntervalSet::from_interval(*horizon).difference(self)
    }

    /// `true` iff `self ⊆ other`.
    pub fn subset_of(&self, other: &IntervalSet) -> bool {
        self.items.iter().all(|i| other.contains_interval(i))
    }

    // ------------------------------------------------------------------
    // MTL operator transforms
    // ------------------------------------------------------------------

    /// `◇⁻ρ`: Minkowski sum of every component with `ρ` (re-coalesced).
    /// Errs when a shifted endpoint overflows the rational timeline.
    pub fn checked_diamond_minus(&self, rho: &MetricInterval) -> Result<IntervalSet, TimeOverflow> {
        self.items
            .iter()
            .map(|i| i.checked_diamond_minus(rho))
            .collect()
    }

    /// Panicking shorthand for [`IntervalSet::checked_diamond_minus`].
    pub fn diamond_minus(&self, rho: &MetricInterval) -> IntervalSet {
        self.checked_diamond_minus(rho)
            .expect("temporal endpoint overflow in diamond_minus")
    }

    /// `⊟ρ`: erosion. Exact per component thanks to the full-coalescing
    /// invariant — an obligation window of positive length cannot straddle a
    /// gap, and punctual windows reduce to shifts.
    /// Errs when a shifted endpoint overflows the rational timeline.
    pub fn checked_box_minus(&self, rho: &MetricInterval) -> Result<IntervalSet, TimeOverflow> {
        let mut out = IntervalSet::new();
        for i in &self.items {
            if let Some(x) = i.checked_box_minus(rho)? {
                out.insert(x);
            }
        }
        Ok(out)
    }

    /// Panicking shorthand for [`IntervalSet::checked_box_minus`].
    pub fn box_minus(&self, rho: &MetricInterval) -> IntervalSet {
        self.checked_box_minus(rho)
            .expect("temporal endpoint overflow in box_minus")
    }

    /// `◇⁺ρ`: future diamond (Minkowski sum towards the past).
    /// Errs when a shifted endpoint overflows the rational timeline.
    pub fn checked_diamond_plus(&self, rho: &MetricInterval) -> Result<IntervalSet, TimeOverflow> {
        self.items
            .iter()
            .map(|i| i.checked_diamond_plus(rho))
            .collect()
    }

    /// Panicking shorthand for [`IntervalSet::checked_diamond_plus`].
    pub fn diamond_plus(&self, rho: &MetricInterval) -> IntervalSet {
        self.checked_diamond_plus(rho)
            .expect("temporal endpoint overflow in diamond_plus")
    }

    /// `⊞ρ`: future box (erosion towards the past).
    /// Errs when a shifted endpoint overflows the rational timeline.
    pub fn checked_box_plus(&self, rho: &MetricInterval) -> Result<IntervalSet, TimeOverflow> {
        let mut out = IntervalSet::new();
        for i in &self.items {
            if let Some(x) = i.checked_box_plus(rho)? {
                out.insert(x);
            }
        }
        Ok(out)
    }

    /// Panicking shorthand for [`IntervalSet::checked_box_plus`].
    pub fn box_plus(&self, rho: &MetricInterval) -> IntervalSet {
        self.checked_box_plus(rho)
            .expect("temporal endpoint overflow in box_plus")
    }

    /// `self S_ρ other` (Since): holds at `t` iff there is `s` with
    /// `t − s ∈ ρ` where `other` holds, and `self` holds throughout the open
    /// interval `(s, t)`.
    pub fn since(&self, other: &IntervalSet, rho: &MetricInterval) -> IntervalSet {
        let mut out = IntervalSet::new();
        // s = t case: when 0 ∈ ρ the continuity obligation is vacuous.
        if metric_contains_zero(rho) {
            out.union_with(other);
        }
        for kappa in &self.items {
            let closure = closure_of(kappa);
            // t must not exceed kappa.hi (equality always allowed: (s, hi) ⊆ kappa).
            let upper_cut = Interval::new(TimeBound::NegInf, false, kappa.hi(), true)
                .expect("upper cut is non-empty");
            for iota in &other.items {
                if let Some(s_range) = iota.intersect(&closure) {
                    let t_range = s_range.diamond_minus(rho);
                    if let Some(t) = t_range.intersect(&upper_cut) {
                        out.insert(t);
                    }
                }
            }
        }
        out
    }

    /// `self U_ρ other` (Until): mirror of [`IntervalSet::since`] towards the
    /// future: holds at `t` iff there is `s` with `s − t ∈ ρ` where `other`
    /// holds and `self` holds throughout `(t, s)`.
    pub fn until(&self, other: &IntervalSet, rho: &MetricInterval) -> IntervalSet {
        let mut out = IntervalSet::new();
        if metric_contains_zero(rho) {
            out.union_with(other);
        }
        for kappa in &self.items {
            let closure = closure_of(kappa);
            let lower_cut = Interval::new(kappa.lo(), true, TimeBound::PosInf, false)
                .expect("lower cut is non-empty");
            for iota in &other.items {
                if let Some(s_range) = iota.intersect(&closure) {
                    let t_range = s_range.diamond_plus(rho);
                    if let Some(t) = t_range.intersect(&lower_cut) {
                        out.insert(t);
                    }
                }
            }
        }
        out
    }

    /// The time points of a set whose components are all punctual; `None`
    /// if any component has positive length or is unbounded. Used by the
    /// Vadalog-style `@T` time-capture extension.
    pub fn punctual_points(&self) -> Option<Vec<Rational>> {
        self.items
            .iter()
            .map(|i| i.punctual_value())
            .collect::<Option<Vec<_>>>()
    }

    /// The earliest finite endpoint, if any.
    pub fn min_point(&self) -> Option<TimeBound> {
        self.items.first().map(|i| i.lo())
    }

    /// The latest finite endpoint, if any.
    pub fn max_point(&self) -> Option<TimeBound> {
        self.items.last().map(|i| i.hi())
    }

    /// Debug helper: asserts the internal invariant.
    #[doc(hidden)]
    pub fn check_invariant(&self) {
        for w in self.items.windows(2) {
            assert!(
                w[0].entirely_before(&w[1]) && !w[0].connected(&w[1]),
                "IntervalSet invariant violated: {} then {}",
                w[0],
                w[1]
            );
        }
    }
}

/// `true` iff `0 ∈ ρ` (i.e. its lower bound is a closed 0).
fn metric_contains_zero(rho: &MetricInterval) -> bool {
    rho.as_interval().contains(Rational::ZERO)
}

/// The topological closure of an interval (used when picking the witness `s`
/// of a Since/Until: `s` may sit on an open endpoint of the continuity
/// component because the obligation interval `(s, t)` is open).
fn closure_of(i: &Interval) -> Interval {
    Interval::new(i.lo(), true, i.hi(), true).expect("closure of non-empty interval")
}

/// Appends `a \ b` (zero, one, or two pieces) to `out`.
fn subtract_into(a: &Interval, b: &Interval, out: &mut Vec<Interval>) {
    match a.intersect(b) {
        None => out.push(*a),
        Some(x) => {
            // Left remainder: ⟨a.lo, x.lo⟩ with right end open iff x.lo closed.
            if let Some(left) = Interval::new(a.lo(), a.lo_closed(), x.lo(), !x.lo_closed()) {
                out.push(left);
            }
            // Right remainder.
            if let Some(right) = Interval::new(x.hi(), !x.hi_closed(), a.hi(), a.hi_closed()) {
                out.push(right);
            }
        }
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.items.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        for (k, i) in self.items.iter().enumerate() {
            if k > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::integer(n)
    }

    fn set(v: &[(i64, i64)]) -> IntervalSet {
        IntervalSet::from_intervals(v.iter().map(|&(a, b)| Interval::closed_int(a, b)))
    }

    #[test]
    fn insert_coalesces_overlapping_and_touching() {
        let mut s = IntervalSet::new();
        assert!(s.insert(Interval::closed_int(0, 2)));
        assert!(s.insert(Interval::closed_int(4, 6)));
        assert!(s.insert(Interval::closed_int(2, 4))); // glue
        assert_eq!(s.components(), &[Interval::closed_int(0, 6)]);
        assert!(!s.insert(Interval::closed_int(1, 5))); // no growth
        s.check_invariant();
    }

    #[test]
    fn insert_coalesces_adjacent_half_open() {
        let mut s = IntervalSet::new();
        s.insert(Interval::half_open_right(r(0), r(1))); // [0,1)
        s.insert(Interval::closed(r(1), r(2))); // [1,2]
        assert_eq!(s.components(), &[Interval::closed(r(0), r(2))]);
        // but (2,3) with a point gap stays separate from [0,2] minus endpoint
        s.insert(Interval::open(r(2), r(3)));
        assert_eq!(s.components(), &[Interval::half_open_right(r(0), r(3))]);
    }

    #[test]
    fn point_gap_is_preserved() {
        let mut s = IntervalSet::new();
        s.insert(Interval::half_open_right(r(0), r(1))); // [0,1)
        s.insert(Interval::open(r(1), r(2))); // (1,2): {1} missing
        assert_eq!(s.components().len(), 2);
        assert!(!s.contains(r(1)));
        s.check_invariant();
    }

    #[test]
    fn intersect_sets() {
        let a = set(&[(0, 5), (10, 15)]);
        let b = set(&[(3, 12)]);
        assert_eq!(a.intersect(&b), set(&[(3, 5), (10, 12)]));
        assert!(a.intersect(&IntervalSet::new()).is_empty());
    }

    #[test]
    fn difference_reopens_bounds() {
        let a = set(&[(0, 10)]);
        let b = set(&[(3, 5)]);
        let d = a.difference(&b);
        assert_eq!(
            d.components(),
            &[
                Interval::half_open_right(r(0), r(3)),
                Interval::half_open_left(r(5), r(10)),
            ]
        );
        d.check_invariant();
        // subtracting a point
        let e = a.difference(&IntervalSet::from_interval(Interval::at(7)));
        assert!(!e.contains(r(7)));
        assert!(e.contains(r(6)));
        assert!(e.contains(r(8)));
    }

    #[test]
    fn difference_multiple_cutters() {
        let a = set(&[(0, 20)]);
        let b = set(&[(2, 4), (6, 8), (25, 30)]);
        let d = a.difference(&b);
        assert!(d.contains(r(0)));
        assert!(!d.contains(r(3)));
        assert!(d.contains(r(5)));
        assert!(!d.contains(r(7)));
        assert!(d.contains(r(20)));
        d.check_invariant();
    }

    #[test]
    fn complement_within_horizon() {
        let s = set(&[(2, 3), (5, 6)]);
        let c = s.complement_within(&Interval::closed_int(0, 10));
        assert!(c.contains(r(0)));
        assert!(!c.contains(r(2)));
        assert!(c.contains(r(4)));
        assert!(!c.contains(r(6)));
        assert!(c.contains(r(10)));
        // complement of complement is original (within the horizon)
        let cc = c.complement_within(&Interval::closed_int(0, 10));
        assert_eq!(cc, s.intersect_interval(&Interval::closed_int(0, 10)));
    }

    #[test]
    fn diamond_minus_on_sets() {
        let s = set(&[(0, 0), (10, 10)]);
        let out = s.diamond_minus(&MetricInterval::one());
        assert_eq!(out, set(&[(1, 1), (11, 11)]));
        // widening rho can merge components
        let out = s.diamond_minus(&MetricInterval::closed_int(0, 10));
        assert_eq!(out, set(&[(0, 20)]));
    }

    #[test]
    fn box_minus_respects_gaps() {
        // M on [0,4) ∪ (4,8]: window [t-2,t] cannot cover the missing point 4.
        let s = IntervalSet::from_intervals([
            Interval::half_open_right(r(0), r(4)),
            Interval::half_open_left(r(4), r(8)),
        ]);
        let rho = MetricInterval::closed_int(0, 2);
        let out = s.box_minus(&rho);
        // per component: [2,4) and (6,8]
        assert_eq!(
            out.components(),
            &[
                Interval::half_open_right(r(2), r(4)),
                Interval::half_open_left(r(6), r(8)),
            ]
        );
    }

    #[test]
    fn since_basic() {
        // M2 at [0,0]; M1 on [0, 10]; rho = [1,1]:
        // since holds at t iff exists s=t-1 with M2(s) and M1 on (s,t):
        // t = 1 works (s=0, (0,1) ⊆ M1).
        let m1 = set(&[(0, 10)]);
        let m2 = set(&[(0, 0)]);
        let s = m1.since(&m2, &MetricInterval::one());
        assert_eq!(s, set(&[(1, 1)]));
        // rho = [0,5]: t in [0,5]
        let s = m1.since(&m2, &MetricInterval::closed_int(0, 5));
        assert_eq!(s, set(&[(0, 5)]));
    }

    #[test]
    fn since_requires_continuity() {
        // M1 missing (2,3): since over rho [0,5] can't reach past the hole.
        let m1 = set(&[(0, 2), (3, 10)]);
        let m2 = set(&[(0, 0)]);
        let s = m1.since(&m2, &MetricInterval::closed_int(0, 5));
        // witnesses s=0 require (0,t) ⊆ M1 -> t ≤ 2.
        assert_eq!(s, set(&[(0, 2)]));
    }

    #[test]
    fn since_zero_in_rho_includes_m2() {
        let m1 = IntervalSet::new();
        let m2 = set(&[(4, 6)]);
        let s = m1.since(&m2, &MetricInterval::closed_int(0, 2));
        assert_eq!(s, set(&[(4, 6)]));
        // 0 not in rho: no vacuous case, and M1 empty -> empty.
        let s = m1.since(&m2, &MetricInterval::closed_int(1, 2));
        assert!(s.is_empty());
    }

    #[test]
    fn until_mirrors_since() {
        let m1 = set(&[(0, 10)]);
        let m2 = set(&[(10, 10)]);
        let u = m1.until(&m2, &MetricInterval::one());
        assert_eq!(u, set(&[(9, 9)]));
        let u = m1.until(&m2, &MetricInterval::closed_int(0, 5));
        assert_eq!(u, set(&[(5, 10)]));
    }

    #[test]
    fn contains_uses_binary_search_correctly() {
        let s = set(&[(0, 1), (3, 4), (6, 7), (9, 10)]);
        for t in [0, 1, 3, 4, 6, 7, 9, 10] {
            assert!(s.contains(r(t)), "should contain {t}");
        }
        for t in [-1, 2, 5, 8, 11] {
            assert!(!s.contains(r(t)), "should not contain {t}");
        }
    }

    #[test]
    fn punctual_points_extraction() {
        let s = set(&[(1, 1), (5, 5)]);
        assert_eq!(s.punctual_points(), Some(vec![r(1), r(5)]));
        assert_eq!(set(&[(1, 2)]).punctual_points(), None);
        assert_eq!(IntervalSet::new().punctual_points(), Some(vec![]));
    }

    #[test]
    fn subset_checks() {
        let a = set(&[(1, 2), (5, 6)]);
        let b = set(&[(0, 10)]);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(IntervalSet::new().subset_of(&a));
    }
}
