//! In-tree Fx-style hashing for the engine's internal maps.
//!
//! The workspace is dependency-free by design, so this is a minimal
//! re-implementation of the well-known `rustc-hash` mixing function: one
//! rotate + xor + multiply per word. It is *not* DoS-resistant, which is
//! fine for every map it backs — tuple-id tables, index buckets, bindings —
//! because keys are internal dense ids and interned symbols, never
//! attacker-controlled strings.
//!
//! Determinism note: swapping `RandomState` for a fixed-seed hasher cannot
//! change observable output. `RandomState` is already randomly seeded per
//! process, so no engine output may depend on map iteration order (anything
//! user-visible is explicitly sorted); a fixed seed only makes iteration
//! order reproducible, never *more* load-bearing.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiplicative hasher (rustc-hash style).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the tail length in so "ab" and "ab\0" hash differently.
            self.add(u64::from_le_bytes(buf) ^ (rem.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a slice of interned ids directly (used by the open-addressing
/// tuple-id table, which stores no owned keys at all).
#[inline]
pub fn hash_ids(ids: impl IntoIterator<Item = u32>) -> u64 {
    let mut h = FxHasher::default();
    for id in ids {
        h.write_u32(id);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn tail_length_disambiguates() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"ab");
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.len(), 2);
    }
}
