//! Goal-driven queries must be invisible on the paper's ETH-PERP program:
//! the magic-sets rewrite may only change *how much* of the model is
//! materialized, never what a query answers. The funding pipeline leans on
//! negation and aggregation, so much of it is unguardable — this pins the
//! graceful-degradation path (cone-restricted evaluation) on the real
//! 52-rule program, not just on synthetic fixtures.

use chronolog_core::{parse_query, Reasoner, ReasonerConfig};
use chronolog_perp::encode::encode_trace;
use chronolog_perp::program::{build_program, TimelineMode};
use chronolog_perp::MarketParams;

fn render(answers: &[(chronolog_core::Tuple, chronolog_core::IntervalSet)]) -> String {
    let mut lines: Vec<String> = answers
        .iter()
        .flat_map(|(tuple, ivs)| {
            let args = tuple
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            ivs.iter().map(move |iv| format!("({args})@{iv}"))
        })
        .collect();
    lines.sort();
    lines.join("\n")
}

#[cfg_attr(debug_assertions, ignore = "slow in debug profile; run with --release")]
#[test]
fn perp_queries_match_full_materialization() {
    let config = chronolog_market::paper_intervals().remove(1);
    let trace = chronolog_market::generate(&config);
    let params = MarketParams::default();
    let mode = TimelineMode::EventEpochs;
    let program = build_program(&params, mode).unwrap();
    let encoded = encode_trace(&trace, mode);

    let reasoner = Reasoner::new(
        program,
        ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1),
    )
    .unwrap();
    let full = reasoner.materialize(&encoded.database).unwrap();

    for text in ["frs(F)", "skew(K)", "price(P)"] {
        let query = parse_query(text).unwrap();
        let mut expected = full.database.query(&query.atom, None);
        expected.sort_by(|a, b| a.0.cmp(&b.0));
        let outcome = reasoner.query(&encoded.database, &query).unwrap();
        assert_eq!(
            render(&outcome.answers),
            render(&expected),
            "query {text} diverged from the full materialization \
             (mode {}, degraded {})",
            outcome.stats.magic.mode,
            outcome.stats.magic.degraded
        );
    }
}
