//! Minimal self-contained micro-benchmark harness.
//!
//! Covers the small Criterion subset the benches in `benches/` use —
//! groups, `bench_function`, `iter`, `iter_batched`, per-group sample
//! sizes — with zero external dependencies. Each benchmark is calibrated
//! so one sample takes a few milliseconds, then timed over `sample_size`
//! samples; min/median/mean per iteration are printed as the run goes.
//!
//! Wall-clock numbers from this harness are indicative, not
//! statistically rigorous: there is no outlier rejection and no
//! regression tracking. They are good enough for the relative
//! comparisons the repro tables make (semi-naive vs naive, dense vs
//! epoch timelines, engine vs oracle).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness; hand out groups or run stand-alone benchmarks.
pub struct Bench {
    filter: Option<String>,
}

impl Bench {
    /// Builds a harness, reading an optional substring filter from the
    /// command line (`cargo bench --bench engine_micro -- parse` runs only
    /// benchmarks whose full name contains "parse").
    pub fn from_env() -> Bench {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench { filter }
    }

    /// Starts a named group; benchmark names are prefixed `group/name`.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            prefix: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark with the default sample size.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let filter = self.filter.clone();
        run_one(filter.as_deref(), name, 20, f);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct Group<'a> {
    bench: &'a mut Bench,
    prefix: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets how many timed samples each benchmark in this group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        let filter = self.bench.filter.clone();
        run_one(filter.as_deref(), &full, self.sample_size, f);
    }

    /// Ends the group. (Groups report as they go; this is a no-op kept for
    /// call-site symmetry.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only; `setup` runs outside the timed region each
    /// iteration (for routines that consume their input).
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(filter: Option<&str>, name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    if let Some(filt) = filter {
        if !name.contains(filt) {
            return;
        }
    }
    // Warmup doubles as calibration: size each sample to take ~5ms so
    // Instant resolution noise stays below a percent.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{name:<45} min {:>12}  median {:>12}  mean {:>12}  ({iters} iters x {samples} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_and_runs() {
        let mut b = Bench { filter: None };
        let mut group = b.group("t");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran += 1;
        });
        group.finish();
        assert!(ran >= 3, "warmup + samples should all run, got {ran}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = Bench {
            filter: Some("other".to_string()),
        };
        let mut ran = false;
        b.bench_function("this_one", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
