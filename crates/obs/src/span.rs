//! Hierarchical span profiling: wall-clock timed scopes with per-thread
//! lanes, exported as Chrome `trace_event` JSON (Perfetto) or folded
//! flamegraph stacks.
//!
//! A [`SpanRecorder`] is a cheap cloneable handle (an `Arc`). Opening a
//! span returns an RAII [`SpanGuard`] that records the scope's duration on
//! drop; nesting is tracked per thread, so concurrent workers each get
//! their own *lane* (one track per thread in the Chrome trace). When no
//! recorder is installed the engine pays one `Option` check per site and
//! performs **zero** span allocations — the global [`spans_started`]
//! counter makes that property testable.
//!
//! Spans must start and end on the same thread (the guard is deliberately
//! `!Send`); that is true of every engine instrumentation site, because
//! each worker opens and drops its guards inside its own task closure.

use crate::json::Json;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Process-wide count of spans ever started, across all recorders. The
/// overhead-guard tests assert this does not move during an unprofiled
/// run: with no recorder installed, no span is allocated anywhere.
static SPANS_STARTED: AtomicU64 = AtomicU64::new(0);

/// Monotonic source of recorder identities. Lane lookups are keyed by this
/// id rather than the `Arc` address, which the allocator may recycle.
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// Total spans started process-wide (all recorders, all threads).
pub fn spans_started() -> u64 {
    SPANS_STARTED.load(Ordering::Relaxed)
}

/// One finished span: a named scope on one lane with microsecond
/// timestamps relative to recorder creation.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Lane (thread track) index within the recorder.
    pub lane: usize,
    /// Scope name, e.g. `"stratum 0"` or `"rule funding"`.
    pub name: String,
    /// Start offset in microseconds since the recorder was created.
    pub start_us: u64,
    /// Duration in microseconds (`end_us - start_us`, both truncated).
    pub dur_us: u64,
    /// Nesting depth on this lane when the span opened (0 = top level).
    pub depth: usize,
    /// Counters attached via [`SpanGuard::add`].
    pub counters: Vec<(&'static str, u64)>,
}

#[derive(Debug)]
struct LaneInfo {
    name: String,
    records: Arc<Mutex<Vec<SpanRecord>>>,
}

#[derive(Debug)]
struct Inner {
    id: u64,
    start: Instant,
    /// Per-lane record cap: spans finished past it are dropped (and
    /// counted) — profiling must never OOM the process it profiles.
    capacity: usize,
    lanes: Mutex<Vec<LaneInfo>>,
    dropped: AtomicU64,
}

/// A thread-safe hierarchical span recorder with per-thread lanes.
#[derive(Clone, Debug)]
pub struct SpanRecorder(Arc<Inner>);

struct TlsLane {
    recorder_id: u64,
    lane: usize,
    records: Arc<Mutex<Vec<SpanRecord>>>,
    /// Open spans of this recorder on this thread.
    depth: usize,
}

thread_local! {
    /// Lane registrations of this thread, one per recorder it has served.
    /// Bounded: idle entries are evicted once the list grows past a handful,
    /// so long-lived pool workers serving many short-lived recorders do not
    /// accumulate state.
    static TLS_LANES: RefCell<Vec<TlsLane>> = const { RefCell::new(Vec::new()) };
}

/// Idle TLS entries beyond this count are evicted (oldest first).
const TLS_MAX_ENTRIES: usize = 8;

fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A panicking profiled thread must not cascade into every other
    // thread's profiling: recover the data, which is valid (pushes are
    // single-statement appends).
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SpanRecorder {
    /// Default per-lane record capacity.
    pub const DEFAULT_CAPACITY: usize = 262_144;

    /// A recorder keeping at most `capacity` spans per lane.
    pub fn with_capacity(capacity: usize) -> SpanRecorder {
        SpanRecorder(Arc::new(Inner {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            capacity: capacity.max(1),
            lanes: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }))
    }

    /// A recorder with the default capacity.
    pub fn new() -> SpanRecorder {
        SpanRecorder::with_capacity(SpanRecorder::DEFAULT_CAPACITY)
    }

    /// Opens a span; the returned guard records it when dropped. The lane
    /// is this thread's (registered on first use, named after the thread).
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        SPANS_STARTED.fetch_add(1, Ordering::Relaxed);
        let start_us = self.0.start.elapsed().as_micros() as u64;
        let (lane, records, depth) = TLS_LANES.with(|tls| {
            let mut entries = tls.borrow_mut();
            if let Some(e) = entries.iter_mut().find(|e| e.recorder_id == self.0.id) {
                let depth = e.depth;
                e.depth += 1;
                return (e.lane, Arc::clone(&e.records), depth);
            }
            // First span of this recorder on this thread: register a lane.
            let thread = std::thread::current();
            let mut lanes = lock_recovering(&self.0.lanes);
            let lane = lanes.len();
            let lane_name = thread
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("lane-{lane}"));
            let records = Arc::new(Mutex::new(Vec::new()));
            lanes.push(LaneInfo {
                name: lane_name,
                records: Arc::clone(&records),
            });
            drop(lanes);
            if entries.len() >= TLS_MAX_ENTRIES {
                // Only idle entries are evictable: an entry with open spans
                // still owes depth decrements.
                if let Some(pos) = entries.iter().position(|e| e.depth == 0) {
                    entries.remove(pos);
                }
            }
            entries.push(TlsLane {
                recorder_id: self.0.id,
                lane,
                records: Arc::clone(&records),
                depth: 1,
            });
            (lane, records, 0)
        });
        SpanGuard {
            recorder: self.clone(),
            records,
            lane,
            name: name.into(),
            start_us,
            depth,
            counters: Vec::new(),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Number of spans recorded so far, across all lanes.
    pub fn spans_recorded(&self) -> usize {
        lock_recovering(&self.0.lanes)
            .iter()
            .map(|l| lock_recovering(&l.records).len())
            .sum()
    }

    /// Spans dropped because a lane hit its record capacity.
    pub fn dropped(&self) -> u64 {
        self.0.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of every lane: `(lane name, finished spans)` in lane
    /// registration order. Records appear in *end* order (a child span
    /// ends before its parent), each carrying its start offset and depth.
    pub fn lanes(&self) -> Vec<(String, Vec<SpanRecord>)> {
        lock_recovering(&self.0.lanes)
            .iter()
            .map(|l| (l.name.clone(), lock_recovering(&l.records).clone()))
            .collect()
    }

    /// The profile as Chrome `trace_event` JSON (the object form with a
    /// `traceEvents` array), loadable in Perfetto or `chrome://tracing`.
    /// Every span becomes a complete (`"ph": "X"`) event with microsecond
    /// `ts`/`dur`; each lane becomes its own `tid` with a `thread_name`
    /// metadata record, so worker lanes render as separate tracks.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        for (tid, (lane_name, records)) in self.lanes().into_iter().enumerate() {
            let mut meta = Json::object();
            meta.set("name", "thread_name");
            meta.set("ph", "M");
            meta.set("pid", 1u64);
            meta.set("tid", tid as u64);
            meta.set("args", Json::from_pairs([("name", Json::from(lane_name))]));
            events.push(meta);
            for r in records {
                let mut args = Json::object();
                args.set("depth", r.depth as u64);
                for (k, v) in &r.counters {
                    args.set(k, *v);
                }
                let mut ev = Json::object();
                ev.set("name", r.name);
                ev.set("ph", "X");
                ev.set("ts", r.start_us);
                ev.set("dur", r.dur_us);
                ev.set("pid", 1u64);
                ev.set("tid", tid as u64);
                ev.set("args", args);
                events.push(ev);
            }
        }
        let mut out = Json::object();
        out.set("traceEvents", Json::Arr(events));
        out.set("displayTimeUnit", "ms");
        if self.dropped() > 0 {
            out.set("chronologDroppedSpans", self.dropped());
        }
        out
    }

    /// The profile as folded flamegraph stacks: one
    /// `lane;frame;...;frame <self-µs>` line per distinct stack, sorted,
    /// with self time = span duration minus its children's durations.
    pub fn to_folded(&self) -> String {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for (lane_name, mut records) in self.lanes() {
            // Records are stored in end order; re-sort into start order
            // with parents (lower depth) before children at equal starts,
            // then replay through a stack to rebuild the call tree.
            records.sort_by(|a, b| {
                a.start_us
                    .cmp(&b.start_us)
                    .then(a.depth.cmp(&b.depth))
                    .then(b.dur_us.cmp(&a.dur_us))
            });
            // (frame name, duration, accumulated child duration)
            let mut stack: Vec<(String, u64, u64)> = Vec::new();
            let lane_frame = lane_name.replace(';', ":");
            let pop = |stack: &mut Vec<(String, u64, u64)>, agg: &mut BTreeMap<String, u64>| {
                let (name, dur, child_sum) = stack.pop().expect("pop on non-empty stack");
                let self_us = dur.saturating_sub(child_sum);
                let mut path = String::with_capacity(64);
                path.push_str(&lane_frame);
                for (frame, _, _) in stack.iter() {
                    path.push(';');
                    path.push_str(frame);
                }
                path.push(';');
                path.push_str(&name);
                *agg.entry(path).or_insert(0) += self_us;
                if let Some(parent) = stack.last_mut() {
                    parent.2 += dur;
                }
            };
            for r in records {
                // Frames deeper than or at this record's depth have ended.
                while stack.len() > r.depth {
                    pop(&mut stack, &mut agg);
                }
                stack.push((r.name.replace(';', ":"), r.dur_us, 0));
            }
            while !stack.is_empty() {
                pop(&mut stack, &mut agg);
            }
        }
        let mut out = String::new();
        for (path, self_us) in agg {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
        out
    }
}

impl Default for SpanRecorder {
    fn default() -> SpanRecorder {
        SpanRecorder::new()
    }
}

/// An open span; records itself into its lane when dropped.
#[must_use = "a span measures the scope that holds its guard"]
pub struct SpanGuard {
    recorder: SpanRecorder,
    records: Arc<Mutex<Vec<SpanRecord>>>,
    lane: usize,
    name: String,
    start_us: u64,
    depth: usize,
    counters: Vec<(&'static str, u64)>,
    /// Spans end on the thread that started them (lane depth is TLS).
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attaches (or accumulates into) a named counter on this span.
    pub fn add(&mut self, key: &'static str, value: u64) {
        match self.counters.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v += value,
            None => self.counters.push((key, value)),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_us = self.recorder.0.start.elapsed().as_micros() as u64;
        let dur_us = end_us.saturating_sub(self.start_us);
        TLS_LANES.with(|tls| {
            if let Some(e) = tls
                .borrow_mut()
                .iter_mut()
                .find(|e| e.recorder_id == self.recorder.0.id)
            {
                e.depth = e.depth.saturating_sub(1);
            }
        });
        let mut records = lock_recovering(&self.records);
        if records.len() >= self.recorder.0.capacity {
            self.recorder.0.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        records.push(SpanRecord {
            lane: self.lane,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us,
            depth: self.depth,
            counters: std::mem::take(&mut self.counters),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_depth() {
        let rec = SpanRecorder::new();
        {
            let _outer = rec.span("outer");
            {
                let mut inner = rec.span("inner");
                inner.add("rows", 3);
                inner.add("rows", 4);
            }
        }
        let lanes = rec.lanes();
        assert_eq!(lanes.len(), 1);
        let records = &lanes[0].1;
        assert_eq!(records.len(), 2);
        // End order: inner first.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[0].counters, vec![("rows", 7)]);
        assert_eq!(records[1].name, "outer");
        assert_eq!(records[1].depth, 0);
        // Containment: the child fits inside the parent.
        assert!(records[0].start_us >= records[1].start_us);
        assert!(records[0].start_us + records[0].dur_us <= records[1].start_us + records[1].dur_us);
    }

    #[test]
    fn threads_get_separate_lanes() {
        let rec = SpanRecorder::new();
        let _main = rec.span("main-work");
        let rec2 = rec.clone();
        std::thread::Builder::new()
            .name("helper".into())
            .spawn(move || {
                let _s = rec2.span("thread-work");
            })
            .unwrap()
            .join()
            .unwrap();
        drop(_main);
        let lanes = rec.lanes();
        assert_eq!(lanes.len(), 2);
        let names: Vec<&str> = lanes.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"helper"), "{names:?}");
        for (_, records) in &lanes {
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].depth, 0);
        }
    }

    #[test]
    fn global_counter_tracks_span_starts() {
        let before = spans_started();
        let rec = SpanRecorder::new();
        drop(rec.span("a"));
        drop(rec.span("b"));
        assert!(spans_started() >= before + 2);
    }

    #[test]
    fn capacity_bounds_recorded_spans() {
        let rec = SpanRecorder::with_capacity(2);
        for i in 0..5 {
            drop(rec.span(format!("s{i}")));
        }
        assert_eq!(rec.spans_recorded(), 2);
        assert_eq!(rec.dropped(), 3);
        assert!(rec.to_chrome_trace().get("chronologDroppedSpans").is_some());
    }

    #[test]
    fn chrome_trace_has_thread_metadata_and_complete_events() {
        let rec = SpanRecorder::new();
        {
            let _a = rec.span("phase");
            let _b = rec.span("step");
        }
        let trace = rec.to_chrome_trace();
        let events = trace
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let phs: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(phs.iter().filter(|p| **p == "M").count(), 1);
        assert_eq!(phs.iter().filter(|p| **p == "X").count(), 2);
        for e in events {
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
            if e.get("ph").and_then(Json::as_str) == Some("X") {
                assert!(e.get("ts").and_then(Json::as_u64).is_some());
                assert!(e.get("dur").and_then(Json::as_u64).is_some());
            }
        }
        // Round-trips through the strict parser.
        let text = trace.to_pretty();
        Json::parse(&text).expect("chrome trace parses back");
    }

    #[test]
    fn folded_stacks_aggregate_self_time() {
        let rec = SpanRecorder::new();
        {
            let _outer = rec.span("outer");
            for _ in 0..2 {
                let _inner = rec.span("inner");
                std::hint::black_box(0);
            }
        }
        let folded = rec.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "{folded}");
        assert!(
            lines.iter().any(|l| l.contains(";outer;inner ")),
            "{folded}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.contains(";outer ") && !l.contains("inner")),
            "{folded}"
        );
        for line in lines {
            let (_, count) = line.rsplit_once(' ').expect("space-separated count");
            count.parse::<u64>().expect("numeric self time");
        }
    }

    #[test]
    fn one_thread_can_serve_multiple_recorders() {
        let a = SpanRecorder::new();
        let b = SpanRecorder::new();
        {
            let _sa = a.span("on-a");
            let _sb = b.span("on-b");
        }
        assert_eq!(a.spans_recorded(), 1);
        assert_eq!(b.spans_recorded(), 1);
        assert_eq!(a.lanes().len(), 1);
        assert_eq!(b.lanes().len(), 1);
    }
}
