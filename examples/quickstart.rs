//! Quickstart: write a DatalogMTL program, load facts, materialize, query,
//! and ask the engine to *explain* a derived fact.
//!
//! ```bash
//! cargo run --release -p chronolog-bench --example quickstart
//! ```

use chronolog_core::{parse_source, Database, Reasoner, ReasonerConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The MARGIN-module skeleton from the paper: a margin account opens on
    // the first deposit, stays open until a withdrawal, and its balance
    // carries over time, changing on later deposits.
    let source = "
        % --- rules (paper rules 1-8, abridged) ---
        isOpen(A) :- tranM(A, M).
        isOpen(A) :- boxminus isOpen(A), not withdraw(A).
        margin(A, M) :- tranM(A, M), not boxminus isOpen(A).
        changeM(A) :- tranM(A, M).
        changeM(A) :- withdraw(A).
        margin(A, M) :- diamondminus margin(A, M), not changeM(A).
        margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), tranM(A, Y), M = X + Y.

        % --- facts (Example 3.1 of the paper) ---
        tranM(acc123, 97.0)@9.
        tranM(acc123, 3.0)@10.
        withdraw(acc123)@15.
    ";
    let (program, facts) = parse_source(source)?;
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();

    let config = ReasonerConfig {
        provenance: true, // record derivations so we can explain results
        ..ReasonerConfig::default().with_horizon(0, 20)
    };
    let reasoner = Reasoner::new(program.clone(), config)?;
    let out = reasoner.materialize(&db)?;

    println!("-- margin of acc123 over time --");
    for t in 8..=16 {
        let margin = [97.0, 100.0]
            .iter()
            .find(|&&m| {
                out.database
                    .holds_at("margin", &[Value::sym("acc123"), Value::num(m)], t)
            })
            .copied();
        println!("  t={t:2}  margin = {margin:?}");
    }

    // The paper's Example 3.1: after the second deposit the margin is 100$.
    assert!(out
        .database
        .holds_at("margin", &[Value::sym("acc123"), Value::num(100.0)], 10));
    // The account closes at the withdrawal.
    assert!(!out
        .database
        .holds_at("margin", &[Value::sym("acc123"), Value::num(100.0)], 15));

    println!("\n-- why does margin(acc123, 100$) hold at t=13? --");
    let explanation = out
        .explain(
            &program,
            "margin",
            &[Value::sym("acc123"), Value::num(100.0)],
            13,
        )
        .expect("provenance was recorded");
    println!("{explanation}");

    println!(
        "\nstats: {:?} iterations/stratum, {} derived tuples, {:?}",
        out.stats.iterations, out.stats.derived_tuples, out.stats.elapsed
    );
    Ok(())
}
