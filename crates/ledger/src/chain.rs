//! Block structure over the ledger — the shape the event stream actually
//! has on an L2 like Optimism: transactions are sealed into blocks, each
//! block extends its parent by hash, and downstream consumers (like the
//! live reasoning session) process *block by block* rather than
//! transaction by transaction.
//!
//! The paper's conclusion asks "which blockchains, which consensus
//! protocols" a DatalogMTL deployment would sit on; this module is the
//! minimal deterministic substrate those questions presuppose: a sealing
//! policy, hash-chained blocks, and verified replay.

use crate::log::{Ledger, LedgerRecord};
use chronolog_obs::Json;

/// A sealed block of consecutive ledger records.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Height (0-based).
    pub number: u64,
    /// Block timestamp = timestamp of its last transaction.
    pub timestamp: i64,
    /// Hash of the parent block (0 for the genesis block).
    pub parent_hash: u64,
    /// The transactions, in chain order.
    pub txs: Vec<LedgerRecord>,
    /// This block's hash.
    pub hash: u64,
}

/// A hash-linked chain of blocks over one market window.
///
/// ```
/// use chronolog_ledger::{Chain, Ledger};
/// use chronolog_perp::{AccountId, Event, Method, Trace};
///
/// let trace = Trace {
///     start_time: 0,
///     end_time: 600,
///     initial_skew: 0.0,
///     initial_price: 1300.0,
///     events: vec![
///         Event { time: 5, account: AccountId(1),
///                 method: Method::TransferMargin { amount: 50.0 }, price: 1300.0 },
///         Event { time: 40, account: AccountId(1),
///                 method: Method::ModifyPosition { size: 0.5 }, price: 1301.0 },
///     ],
/// };
/// let ledger = Ledger::from_trace(&trace).unwrap();
/// let chain = Chain::seal(&ledger, 30).unwrap(); // 30-second blocks
/// chain.verify().unwrap();
/// assert_eq!(chain.blocks.len(), 2);
/// assert_eq!(chain.to_ledger(), ledger);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Chain {
    /// Window start.
    pub start_time: i64,
    /// Window end.
    pub end_time: i64,
    /// Initial skew.
    pub initial_skew: f64,
    /// Initial oracle price.
    pub initial_price: f64,
    /// Sealing interval used to build the chain (seconds).
    pub block_interval: i64,
    /// The blocks, by height.
    pub blocks: Vec<Block>,
}

/// FNV-1a over the block header and its transactions' record hashes.
fn block_hash(number: u64, timestamp: i64, parent: u64, txs: &[LedgerRecord]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&number.to_le_bytes());
    eat(&timestamp.to_le_bytes());
    eat(&parent.to_le_bytes());
    for tx in txs {
        eat(&tx.hash.to_le_bytes());
    }
    h
}

impl Chain {
    /// Seals a ledger into blocks: a block closes when the next transaction
    /// would land in a later `block_interval`-second bucket (buckets are
    /// aligned to the window start). Empty buckets produce no block.
    pub fn seal(ledger: &Ledger, block_interval: i64) -> Result<Chain, String> {
        if block_interval <= 0 {
            return Err("block interval must be positive".into());
        }
        ledger
            .verify_chain()
            .map_err(|i| format!("broken ledger at record {i}"))?;
        let bucket_of = |t: i64| -> i64 { (t - ledger.start_time).div_euclid(block_interval) };
        let mut blocks: Vec<Block> = Vec::new();
        let mut pending: Vec<LedgerRecord> = Vec::new();
        let mut current_bucket: Option<i64> = None;
        let mut parent: u64 = 0;
        let seal_pending =
            |pending: &mut Vec<LedgerRecord>, blocks: &mut Vec<Block>, parent: &mut u64| {
                if pending.is_empty() {
                    return;
                }
                let number = blocks.len() as u64;
                let timestamp = pending.last().expect("non-empty").time;
                let txs = std::mem::take(pending);
                let hash = block_hash(number, timestamp, *parent, &txs);
                blocks.push(Block {
                    number,
                    timestamp,
                    parent_hash: *parent,
                    txs,
                    hash,
                });
                *parent = hash;
            };
        for record in &ledger.records {
            let bucket = bucket_of(record.time);
            if current_bucket.is_some_and(|b| b != bucket) {
                seal_pending(&mut pending, &mut blocks, &mut parent);
            }
            current_bucket = Some(bucket);
            pending.push(record.clone());
        }
        seal_pending(&mut pending, &mut blocks, &mut parent);
        Ok(Chain {
            start_time: ledger.start_time,
            end_time: ledger.end_time,
            initial_skew: ledger.initial_skew,
            initial_price: ledger.initial_price,
            block_interval,
            blocks,
        })
    }

    /// Verifies block numbering, parent links, hashes, and tx ordering.
    /// Returns the height of the first bad block.
    pub fn verify(&self) -> Result<(), u64> {
        let mut parent = 0u64;
        let mut last_time = i64::MIN;
        for (i, block) in self.blocks.iter().enumerate() {
            let ok = block.number == i as u64
                && block.parent_hash == parent
                && !block.txs.is_empty()
                && block.timestamp == block.txs.last().expect("non-empty").time
                && block.txs.iter().all(|tx| tx.time > last_time)
                && block.hash == block_hash(block.number, block.timestamp, parent, &block.txs);
            if !ok {
                return Err(i as u64);
            }
            last_time = block.timestamp;
            parent = block.hash;
        }
        Ok(())
    }

    /// Flattens the chain back into a ledger (lossless inverse of `seal`).
    pub fn to_ledger(&self) -> Ledger {
        Ledger {
            start_time: self.start_time,
            end_time: self.end_time,
            initial_skew: self.initial_skew,
            initial_price: self.initial_price,
            records: self
                .blocks
                .iter()
                .flat_map(|b| b.txs.iter().cloned())
                .collect(),
        }
    }

    /// Total number of transactions.
    pub fn tx_count(&self) -> usize {
        self.blocks.iter().map(|b| b.txs.len()).sum()
    }

    /// The chain as a JSON object (same conventions as the ledger format:
    /// hashes as exact u64 integers).
    pub fn to_json_value(&self) -> Json {
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                Json::from_pairs([
                    ("number", Json::from(b.number)),
                    ("timestamp", Json::from(b.timestamp)),
                    ("parent_hash", Json::from(b.parent_hash)),
                    (
                        "txs",
                        Json::Arr(b.txs.iter().map(LedgerRecord::to_json).collect()),
                    ),
                    ("hash", Json::from(b.hash)),
                ])
            })
            .collect();
        Json::from_pairs([
            ("start_time", Json::from(self.start_time)),
            ("end_time", Json::from(self.end_time)),
            ("initial_skew", Json::from(self.initial_skew)),
            ("initial_price", Json::from(self.initial_price)),
            ("block_interval", Json::from(self.block_interval)),
            ("blocks", Json::Arr(blocks)),
        ])
    }

    /// Inverse of [`Chain::to_json_value`].
    pub fn from_json_value(v: &Json) -> Result<Chain, String> {
        let i = |field: &str| {
            v.get(field)
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("chain needs an integer `{field}`"))
        };
        let f = |field: &str| {
            v.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("chain needs a number `{field}`"))
        };
        let blocks = v
            .get("blocks")
            .and_then(Json::as_array)
            .ok_or("chain needs a `blocks` array")?
            .iter()
            .map(|b| {
                let u = |field: &str| {
                    b.get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("block needs an unsigned `{field}`"))
                };
                Ok(Block {
                    number: u("number")?,
                    timestamp: b
                        .get("timestamp")
                        .and_then(Json::as_i64)
                        .ok_or("block needs an integer `timestamp`")?,
                    parent_hash: u("parent_hash")?,
                    txs: b
                        .get("txs")
                        .and_then(Json::as_array)
                        .ok_or("block needs a `txs` array")?
                        .iter()
                        .map(LedgerRecord::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    hash: u("hash")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Chain {
            start_time: i("start_time")?,
            end_time: i("end_time")?,
            initial_skew: f("initial_skew")?,
            initial_price: f("initial_price")?,
            block_interval: i("block_interval")?,
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronolog_perp::{AccountId, Event, Method, Trace};

    fn sample_ledger() -> Ledger {
        let ev = |t, acc, method| Event {
            time: t,
            account: AccountId(acc),
            method,
            price: 1300.0,
        };
        let trace = Trace {
            start_time: 0,
            end_time: 600,
            initial_skew: 10.0,
            initial_price: 1300.0,
            events: vec![
                ev(5, 1, Method::TransferMargin { amount: 100.0 }),
                ev(8, 2, Method::TransferMargin { amount: 200.0 }),
                ev(17, 1, Method::ModifyPosition { size: 0.5 }),
                ev(31, 2, Method::ModifyPosition { size: -0.25 }),
                ev(59, 1, Method::ClosePosition),
                ev(120, 2, Method::ClosePosition),
            ],
        };
        Ledger::from_trace(&trace).unwrap()
    }

    #[test]
    fn sealing_groups_by_time_bucket() {
        let chain = Chain::seal(&sample_ledger(), 12).unwrap();
        chain.verify().unwrap();
        // Buckets of 12s: {5,8}, {17}, {31}, {59}, {120} -> 5 blocks.
        assert_eq!(chain.blocks.len(), 5);
        assert_eq!(chain.blocks[0].txs.len(), 2);
        assert_eq!(chain.blocks[0].timestamp, 8);
        assert_eq!(chain.tx_count(), 6);
    }

    #[test]
    fn chain_roundtrips_to_ledger() {
        let ledger = sample_ledger();
        let chain = Chain::seal(&ledger, 30).unwrap();
        assert_eq!(chain.to_ledger(), ledger);
    }

    #[test]
    fn tampering_is_detected() {
        let mut chain = Chain::seal(&sample_ledger(), 30).unwrap();
        chain.blocks[1].timestamp += 1;
        assert_eq!(chain.verify(), Err(1));
        let mut chain = Chain::seal(&sample_ledger(), 30).unwrap();
        chain.blocks[0].txs.pop();
        assert_eq!(chain.verify(), Err(0));
        // Reordering blocks breaks parent links.
        let mut chain = Chain::seal(&sample_ledger(), 30).unwrap();
        chain.blocks.swap(0, 1);
        assert!(chain.verify().is_err());
    }

    #[test]
    fn one_second_blocks_are_one_tx_each() {
        let chain = Chain::seal(&sample_ledger(), 1).unwrap();
        chain.verify().unwrap();
        assert_eq!(chain.blocks.len(), 6);
        assert!(chain.blocks.iter().all(|b| b.txs.len() == 1));
    }

    #[test]
    fn rejects_bad_interval() {
        assert!(Chain::seal(&sample_ledger(), 0).is_err());
        assert!(Chain::seal(&sample_ledger(), -5).is_err());
    }

    #[test]
    fn chain_serializes() {
        let chain = Chain::seal(&sample_ledger(), 30).unwrap();
        let json = chain.to_json_value().to_compact();
        let back = Chain::from_json_value(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, chain);
        back.verify().unwrap();
    }
}
