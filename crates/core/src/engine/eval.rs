//! Rule-body evaluation: temporal joins, operator application, stratified
//! negation, built-in constraints, and the `@T` time capture.
//!
//! A body evaluates to a set of `(binding, interval set)` pairs: the variable
//! assignments satisfying the relational/constraint part, each with the time
//! points at which the whole conjunction holds.

use crate::ast::{Atom, CmpOp, Expr, Literal, MetricAtom, Rule, Term};
use crate::database::{Database, StoreRef};
use crate::error::{Error, Result};
use crate::hash::FxHashMap;
use crate::intern::{self, NONE_VID};
use crate::symbol::Symbol;
use crate::value::Value;
use chronolog_obs::SpanRecorder;
use mtl_temporal::{Interval, IntervalSet};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use super::cost::NoCardinalities;
use super::plan::{build_plan, AccessPath, ConstraintMode, PlanConfig, RulePlan, StepKind};
use super::pool::WorkerPool;

/// A variable assignment. Fx-hashed: binding maps are cloned once per
/// emitted tuple, which makes rehash speed a join-throughput term.
pub(crate) type Bindings = FxHashMap<Symbol, Value>;

/// Relations smaller than this are scanned directly: probing (and possibly
/// building) an index costs more than walking a handful of tuples.
pub(crate) const INDEX_MIN_TUPLES: usize = 8;

/// Minimum accumulated bindings before `join_positive` considers fanning
/// the per-binding work across the worker pool. Lower than the old scoped
/// threshold (256): the persistent pool has no spawn cost to amortize, only
/// chunking and hand-off.
const PAR_FANOUT_MIN: usize = 64;

/// Minimum estimated work units (accumulated bindings × planner-estimated
/// rows per binding) before the fan-out actually happens. Plan-aware: a
/// wide join fans out early, a selective probe stays sequential even with
/// many bindings.
const PAR_FANOUT_WORK_MIN: u64 = 4096;

/// Join-path counters, shared across evaluation threads (relaxed atomics:
/// these are statistics, not synchronization).
#[derive(Default, Debug)]
pub(crate) struct JoinCounters {
    /// `eval_rel` calls answered through an index probe (value, time, or
    /// both). Every `eval_rel` call bumps exactly one of `index_probes` /
    /// `full_scans`, so the two always account for every call.
    pub index_probes: AtomicU64,
    /// Tuples a probe did *not* visit compared to a full scan.
    pub index_scan_avoided: AtomicU64,
    /// `eval_rel` calls that fell back to a full relation scan (including
    /// missing-relation lookups, which scan zero tuples).
    pub full_scans: AtomicU64,
    /// Tuples visited by full scans.
    pub scanned_tuples: AtomicU64,
    /// Candidate tuples visited by index probes. Together with the other
    /// two tuple counters this partitions every lookup: per `eval_rel`
    /// call on a present relation, `scanned + probed + avoided` equals the
    /// relation's size — an invariant across all four index configs.
    pub probed_tuples: AtomicU64,
    /// `eval_rel` calls that consulted the sorted-endpoint time index.
    pub time_index_probes: AtomicU64,
    /// Candidate tuples the time index excluded before their interval sets
    /// were clipped against the read mask.
    pub interval_clips_avoided: AtomicU64,
}

impl JoinCounters {
    fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Evaluation context for one rule application.
pub(crate) struct EvalCtx<'a> {
    /// Everything derived so far (EDB + all strata up to the current point).
    pub total: &'a Database,
    /// Per-iteration delta of current-stratum predicates (semi-naive).
    pub delta: Option<&'a Database>,
    /// The reasoning horizon.
    pub horizon: Interval,
    /// Probe secondary value indexes instead of scanning relations
    /// (`false` is the ablation baseline).
    pub index_joins: bool,
    /// Probe the sorted-endpoint time index for masked reads instead of
    /// clipping every candidate tuple (`false` is the ablation baseline).
    pub time_index: bool,
    /// Worker budget for the binding fan-out inside [`join_positive`];
    /// `1` keeps body evaluation single-threaded.
    pub threads: usize,
    /// Persistent worker pool backing the fan-out; `None` keeps body
    /// evaluation on the calling thread regardless of `threads`.
    pub pool: Option<&'a WorkerPool>,
    /// Join-path statistics sink.
    pub counters: &'a JoinCounters,
    /// Span profiler for per-step and per-chunk timing; `None` (the
    /// default) records nothing and allocates nothing.
    pub profiler: Option<&'a SpanRecorder>,
}

impl EvalCtx<'_> {
    fn horizon_set(&self) -> IntervalSet {
        IntervalSet::from_interval(self.horizon)
    }
}

/// Is this literal eligible to be the delta-restricted literal of a
/// semi-naive variant? Requires a unary operator chain over a single
/// relational atom where every box operator is punctual (box with a
/// positive-length window is not union-distributive, so reading only the
/// delta would miss derivations that combine old and new time points).
pub(crate) fn delta_eligible(lit: &Literal) -> Option<Symbol> {
    fn chain(m: &MetricAtom) -> Option<Symbol> {
        match m {
            MetricAtom::Rel(a) => Some(a.pred),
            MetricAtom::DiamondMinus(_, inner) | MetricAtom::DiamondPlus(_, inner) => chain(inner),
            MetricAtom::BoxMinus(rho, inner) | MetricAtom::BoxPlus(rho, inner) => {
                if rho.is_punctual() {
                    chain(inner)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
    match lit {
        Literal::Pos(m) => chain(m),
        _ => None,
    }
}

/// Evaluates a rule body. When `delta_literal` is set, that literal's base
/// relation is read from `ctx.delta` instead of `ctx.total`.
///
/// This is the unplanned entry point (aggregates, tests): it compiles an
/// order-preserving plan on the spot — no cardinality information, no
/// reordering, so the join order is exactly the old interpretive
/// delta-first order — and executes it. The fixpoint loop in `mod.rs`
/// builds and caches cost-based plans instead and calls
/// [`execute_plan`] directly.
///
/// Returns deduplicated `(binding, intervals)` pairs with non-empty interval
/// sets.
pub(crate) fn eval_body(
    rule: &Rule,
    ctx: &EvalCtx<'_>,
    delta_literal: Option<usize>,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    let cfg = PlanConfig {
        cost_based: false,
        index_joins: ctx.index_joins,
        time_index: ctx.time_index,
        // Planned blind (no cardinalities): access paths stay advisory and
        // `eval_rel` keeps its legacy per-lookup selection.
        authoritative: false,
    };
    let plan = build_plan(rule, delta_literal, &cfg, &NoCardinalities, &[]);
    execute_plan(rule, &plan, ctx)
}

/// Executes a compiled rule-body plan: one shared executor for every step
/// kind, used by the semi-naive fixpoint (with cached cost-based plans)
/// and by [`eval_body`] (with throwaway order-preserving plans).
///
/// The delta-restricted literal is taken from the plan, joins push the
/// accumulated interval hull down as a read mask, and constraints run in
/// their statically scheduled modes. An unschedulable-constraint step
/// raises [`Error::Unsafe`] when reached.
pub(crate) fn execute_plan(
    rule: &Rule,
    plan: &RulePlan,
    ctx: &EvalCtx<'_>,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    plan.note_execution();
    let mut acc: Vec<(Bindings, IntervalSet)> = vec![(Bindings::default(), ctx.horizon_set())];
    for step in &plan.steps {
        // One span per plan step: static names so folded stacks collapse
        // across iterations; the literal index and row counts travel as
        // counters.
        let mut step_span = ctx.profiler.map(|p| {
            let name = match &step.kind {
                StepKind::Join { .. } => "join",
                StepKind::Constraint { .. } => "constraint",
                StepKind::Negation => "negate",
            };
            let mut s = p.span(name);
            s.add("literal", step.literal as u64);
            s.add("est_rows", step.est_rows);
            s
        });
        match &step.kind {
            StepKind::Join { access } => {
                let Literal::Pos(m) = &rule.body[step.literal] else {
                    unreachable!("join step on a non-positive literal");
                };
                let use_delta = plan.delta_literal == Some(step.literal);
                // Authoritative plans bind the access path for the step's
                // relation leaf; advisory (throwaway) plans leave the
                // per-lookup runtime selection in place.
                let planned = plan.authoritative.then_some(*access);
                acc = join_positive(acc, m, ctx, use_delta, step.est_rows, planned)?;
                step.note_actual(acc.len());
                if let Some(s) = step_span.as_mut() {
                    s.add("rows", acc.len() as u64);
                }
                // An empty accumulator is absorbing for every remaining
                // step except the unschedulable-constraint error.
                if acc.is_empty() && !plan.has_unschedulable {
                    return Ok(vec![]);
                }
            }
            StepKind::Constraint { mode: Some(mode) } => {
                let Literal::Constraint(lhs, op, rhs) = &rule.body[step.literal] else {
                    unreachable!("constraint step on a non-constraint literal");
                };
                acc = apply_constraint(acc, lhs, *op, rhs, *mode)?;
                step.note_actual(acc.len());
                if let Some(s) = step_span.as_mut() {
                    s.add("rows", acc.len() as u64);
                }
            }
            StepKind::Constraint { mode: None } => {
                return Err(Error::Unsafe(format!(
                    "constraint `{}` could not be scheduled (unbound variable)",
                    rule.body[step.literal]
                )));
            }
            StepKind::Negation => {
                let Literal::Neg(m) = &rule.body[step.literal] else {
                    unreachable!("negation step on a non-negated literal");
                };
                acc = apply_negation(acc, m, ctx)?;
                step.note_actual(acc.len());
                if let Some(s) = step_span.as_mut() {
                    s.add("rows", acc.len() as u64);
                }
            }
        }
    }
    // Deduplicate bindings, merging interval sets. The ordered map makes
    // the result order — and with it provenance, merge order, and stats —
    // deterministic across runs and thread counts.
    let mut merged: BTreeMap<Vec<(Symbol, Value)>, IntervalSet> = BTreeMap::new();
    for (b, ivs) in acc {
        if ivs.is_empty() {
            continue;
        }
        let mut key: Vec<(Symbol, Value)> = b.iter().map(|(k, v)| (*k, *v)).collect();
        key.sort();
        merged.entry(key).or_default().union_with(&ivs);
    }
    Ok(merged
        .into_iter()
        .map(|(k, ivs)| (k.into_iter().collect(), ivs))
        .collect())
}

/// Applies a constraint to one binding in its scheduled mode: assignments
/// extend the binding, filters keep or drop it. Shared by the engine
/// executor (which threads interval sets alongside) and the naive oracle
/// (which works on plain bindings).
pub(crate) fn apply_constraint_row(
    mut b: Bindings,
    lhs: &Expr,
    op: CmpOp,
    rhs: &Expr,
    mode: ConstraintMode,
) -> Result<Option<Bindings>> {
    match mode {
        ConstraintMode::AssignLeft => {
            let v = eval_expr(rhs, &b)?;
            let var = match lhs {
                Expr::Term(Term::Var(x)) => *x,
                _ => unreachable!("mode implies lone variable"),
            };
            b.insert(var, v);
            Ok(Some(b))
        }
        ConstraintMode::AssignRight => {
            let v = eval_expr(lhs, &b)?;
            let var = match rhs {
                Expr::Term(Term::Var(x)) => *x,
                _ => unreachable!("mode implies lone variable"),
            };
            b.insert(var, v);
            Ok(Some(b))
        }
        ConstraintMode::Filter => {
            let l = eval_expr(lhs, &b)?;
            let r = eval_expr(rhs, &b)?;
            Ok(compare(l, op, r)?.then_some(b))
        }
    }
}

fn apply_constraint(
    acc: Vec<(Bindings, IntervalSet)>,
    lhs: &Expr,
    op: CmpOp,
    rhs: &Expr,
    mode: ConstraintMode,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    let mut out = Vec::with_capacity(acc.len());
    for (b, ivs) in acc {
        if let Some(b2) = apply_constraint_row(b, lhs, op, rhs, mode)? {
            out.push((b2, ivs));
        }
    }
    Ok(out)
}

fn compare(l: Value, op: CmpOp, r: Value) -> Result<bool> {
    match op {
        CmpOp::Eq => Ok(l.semantic_eq(&r)),
        CmpOp::Ne => Ok(!l.semantic_eq(&r)),
        _ => {
            let ord = l
                .semantic_cmp(&r)
                .ok_or_else(|| Error::Eval(format!("cannot compare {l} and {r}")))?;
            Ok(match op {
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
                CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
            })
        }
    }
}

/// Evaluates an arithmetic expression under a binding. Integer arithmetic
/// stays exact; mixing with floats coerces to `f64`.
pub(crate) fn eval_expr(expr: &Expr, b: &Bindings) -> Result<Value> {
    fn num2(
        a: Value,
        bb: Value,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        f_op: impl Fn(f64, f64) -> f64,
        what: &str,
    ) -> Result<Value> {
        match (a, bb) {
            (Value::Int(x), Value::Int(y)) => match int_op(x, y) {
                Some(v) => Ok(Value::Int(v)),
                None => Ok(Value::num(f_op(x as f64, y as f64))),
            },
            _ => {
                let (x, y) = (
                    a.as_f64()
                        .ok_or_else(|| Error::Eval(format!("non-numeric operand {a} in {what}")))?,
                    bb.as_f64().ok_or_else(|| {
                        Error::Eval(format!("non-numeric operand {bb} in {what}"))
                    })?,
                );
                let v = f_op(x, y);
                if v.is_nan() {
                    return Err(Error::Eval(format!("NaN from {what}({x}, {y})")));
                }
                Ok(Value::num(v))
            }
        }
    }
    match expr {
        Expr::Term(Term::Val(v)) => Ok(*v),
        Expr::Term(Term::Var(v)) => b
            .get(v)
            .copied()
            .ok_or_else(|| Error::Eval(format!("unbound variable {v} in expression"))),
        Expr::Add(x, y) => num2(
            eval_expr(x, b)?,
            eval_expr(y, b)?,
            i64::checked_add,
            |a, c| a + c,
            "+",
        ),
        Expr::Sub(x, y) => num2(
            eval_expr(x, b)?,
            eval_expr(y, b)?,
            i64::checked_sub,
            |a, c| a - c,
            "-",
        ),
        Expr::Mul(x, y) => num2(
            eval_expr(x, b)?,
            eval_expr(y, b)?,
            i64::checked_mul,
            |a, c| a * c,
            "*",
        ),
        Expr::Div(x, y) => {
            let (xv, yv) = (eval_expr(x, b)?, eval_expr(y, b)?);
            if yv.as_f64() == Some(0.0) {
                return Err(Error::Eval("division by zero".into()));
            }
            num2(
                xv,
                yv,
                |a, c| {
                    if c != 0 && a % c == 0 {
                        Some(a / c)
                    } else {
                        None
                    }
                },
                |a, c| a / c,
                "/",
            )
        }
        Expr::Neg(x) => match eval_expr(x, b)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Num(n) => Ok(Value::num(-n.get())),
            other => Err(Error::Eval(format!("cannot negate {other}"))),
        },
        Expr::Abs(x) => match eval_expr(x, b)? {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Num(n) => Ok(Value::num(n.get().abs())),
            other => Err(Error::Eval(format!("abs of non-number {other}"))),
        },
        Expr::Min(x, y) => {
            let (a, c) = (eval_expr(x, b)?, eval_expr(y, b)?);
            Ok(if compare(a, CmpOp::Le, c)? { a } else { c })
        }
        Expr::Max(x, y) => {
            let (a, c) = (eval_expr(x, b)?, eval_expr(y, b)?);
            Ok(if compare(a, CmpOp::Ge, c)? { a } else { c })
        }
    }
}

/// Joins the accumulator with a positive metric atom. The accumulated
/// interval hull is pushed down as a read mask: only the time window that
/// can still contribute is pulled out of (possibly huge) base relations.
///
/// Skewed rules accumulate thousands of bindings before a join; with
/// `ctx.threads > 1` and enough estimated work (`bindings × planner row
/// estimate`), the per-binding work is fanned across the persistent worker
/// pool in contiguous chunks and re-concatenated in chunk order, so the
/// output is identical to the sequential pass.
fn join_positive(
    acc: Vec<(Bindings, IntervalSet)>,
    m: &MetricAtom,
    ctx: &EvalCtx<'_>,
    use_delta: bool,
    est_rows: u64,
    planned: Option<AccessPath>,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    let enough_work = acc.len() >= PAR_FANOUT_MIN
        && (acc.len() as u64).saturating_mul(est_rows.max(1)) >= PAR_FANOUT_WORK_MIN;
    if let (Some(pool), true) = (ctx.pool, ctx.threads > 1 && enough_work) {
        let chunk_size = acc.len().div_ceil(ctx.threads);
        let chunks: Vec<&[(Bindings, IntervalSet)]> = acc.chunks(chunk_size).collect();
        let run = pool.run(chunks.len(), |i| {
            // On a worker lane: probe spans land on the worker's own track.
            let mut chunk_span = ctx.profiler.map(|p| {
                let mut s = p.span("join chunk");
                s.add("bindings", chunks[i].len() as u64);
                s
            });
            let r = join_chunk(chunks[i], m, ctx, use_delta, planned);
            if let (Some(s), Ok(rows)) = (chunk_span.as_mut(), &r) {
                s.add("rows", rows.len() as u64);
            }
            r
        });
        let mut out = Vec::new();
        for r in run.results {
            out.extend(r?);
        }
        Ok(out)
    } else {
        join_chunk(&acc, m, ctx, use_delta, planned)
    }
}

fn join_chunk(
    acc: &[(Bindings, IntervalSet)],
    m: &MetricAtom,
    ctx: &EvalCtx<'_>,
    use_delta: bool,
    planned: Option<AccessPath>,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    let mut out = Vec::new();
    for (b, ivs) in acc {
        let mask = ivs.hull();
        for (b2, ivs2) in eval_matom_masked(m, ctx, use_delta, b, mask, planned)? {
            let joined = ivs.intersect(&ivs2);
            if !joined.is_empty() {
                out.push((b2, joined));
            }
        }
    }
    Ok(out)
}

/// Subtracts the (existentially closed) intervals of a negated metric atom.
fn apply_negation(
    acc: Vec<(Bindings, IntervalSet)>,
    m: &MetricAtom,
    ctx: &EvalCtx<'_>,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    let mut out = Vec::with_capacity(acc.len());
    for (b, ivs) in acc {
        let mask = ivs.hull();
        let mut neg = IntervalSet::new();
        for (_, nivs) in eval_matom_masked(m, ctx, false, &b, mask, None)? {
            neg.union_with(&nivs);
        }
        let rest = ivs.difference(&neg);
        if !rest.is_empty() {
            out.push((b, rest));
        }
    }
    Ok(out)
}

/// Evaluates a metric atom under a binding, returning extended bindings with
/// the (operator-transformed) interval sets.
pub(crate) fn eval_matom(
    m: &MetricAtom,
    ctx: &EvalCtx<'_>,
    use_delta: bool,
    binding: &Bindings,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    eval_matom_masked(m, ctx, use_delta, binding, None, None)
}

/// Masked evaluation: `mask`, when present, is a time window such that only
/// output points inside it will be used by the caller. It is pushed through
/// the operator tree (inversely transformed at each unary operator) and
/// applied as a binary-searched clip at the relation leaves — exact, since
/// the base points relevant to outputs in `mask` lie inside the pushed-down
/// window.
fn eval_matom_masked(
    m: &MetricAtom,
    ctx: &EvalCtx<'_>,
    use_delta: bool,
    binding: &Bindings,
    mask: Option<Interval>,
    planned: Option<AccessPath>,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    // Base times contributing to past-operator outputs in `mask` lie in
    // mask ⊕ mirrored-ρ, which is exactly the hull transform below. All
    // endpoint shifts are checked: a window near the timeline extremes
    // surfaces `Error::TimeOverflow` instead of aborting the process.
    let past_mask = |rho| -> Result<Option<Interval>> {
        mask.as_ref()
            .map(|w| w.checked_diamond_plus(rho))
            .transpose()
            .map_err(Error::from)
    };
    let future_mask = |rho| -> Result<Option<Interval>> {
        mask.as_ref()
            .map(|w| w.checked_diamond_minus(rho))
            .transpose()
            .map_err(Error::from)
    };
    // Applies a checked interval-set transform to every inner result,
    // dropping bindings whose transformed set is empty.
    fn transform(
        inner: Vec<(Bindings, IntervalSet)>,
        f: impl Fn(&IntervalSet) -> std::result::Result<IntervalSet, mtl_temporal::TimeOverflow>,
    ) -> Result<Vec<(Bindings, IntervalSet)>> {
        let mut out = Vec::with_capacity(inner.len());
        for (b, ivs) in inner {
            let t = f(&ivs)?;
            if !t.is_empty() {
                out.push((b, t));
            }
        }
        Ok(out)
    }
    match m {
        MetricAtom::Top => Ok(vec![(binding.clone(), ctx.horizon_set())]),
        MetricAtom::Bottom => Ok(vec![]),
        MetricAtom::Rel(atom) => eval_rel(atom, ctx, use_delta, binding, mask, planned),
        MetricAtom::DiamondMinus(rho, inner) => transform(
            eval_matom_masked(inner, ctx, use_delta, binding, past_mask(rho)?, planned)?,
            |ivs| ivs.checked_diamond_minus(rho),
        ),
        MetricAtom::DiamondPlus(rho, inner) => transform(
            eval_matom_masked(inner, ctx, use_delta, binding, future_mask(rho)?, planned)?,
            |ivs| ivs.checked_diamond_plus(rho),
        ),
        MetricAtom::BoxMinus(rho, inner) => transform(
            eval_matom_masked(inner, ctx, use_delta, binding, past_mask(rho)?, planned)?,
            |ivs| ivs.checked_box_minus(rho),
        ),
        MetricAtom::BoxPlus(rho, inner) => transform(
            eval_matom_masked(inner, ctx, use_delta, binding, future_mask(rho)?, planned)?,
            |ivs| ivs.checked_box_plus(rho),
        ),
        MetricAtom::Since(m1, rho, m2) => {
            debug_assert!(!use_delta, "delta never designates multi-atom literals");
            let mut out = Vec::new();
            for (b1, iv1) in eval_matom(m1, ctx, false, binding)? {
                for (b2, iv2) in eval_matom(m2, ctx, false, &b1)? {
                    let s = iv1.since(&iv2, rho);
                    if !s.is_empty() {
                        out.push((b2, s));
                    }
                }
            }
            // `since` can also fire from M2 alone when 0 ∈ ρ even if M1 has
            // no matching tuples; cover the empty-M1 case explicitly.
            if rho.as_interval().contains(mtl_temporal::Rational::ZERO) {
                for (b2, iv2) in eval_matom(m2, ctx, false, binding)? {
                    out.push((b2, IntervalSet::new().since(&iv2, rho)));
                }
            }
            Ok(out.into_iter().filter(|(_, s)| !s.is_empty()).collect())
        }
        MetricAtom::Until(m1, rho, m2) => {
            debug_assert!(!use_delta, "delta never designates multi-atom literals");
            let mut out = Vec::new();
            for (b1, iv1) in eval_matom(m1, ctx, false, binding)? {
                for (b2, iv2) in eval_matom(m2, ctx, false, &b1)? {
                    let s = iv1.until(&iv2, rho);
                    if !s.is_empty() {
                        out.push((b2, s));
                    }
                }
            }
            if rho.as_interval().contains(mtl_temporal::Rational::ZERO) {
                for (b2, iv2) in eval_matom(m2, ctx, false, binding)? {
                    out.push((b2, IntervalSet::new().until(&iv2, rho)));
                }
            }
            Ok(out.into_iter().filter(|(_, s)| !s.is_empty()).collect())
        }
    }
}

/// Reused per-thread probe buffers: `eval_rel` runs once per accumulated
/// binding, so a fresh `Vec` per ground-position list and candidate set
/// would put an allocator round-trip on the innermost join loop.
#[derive(Default)]
struct ProbeScratch {
    ground: Vec<(usize, Value)>,
    value: Vec<u32>,
    time: Vec<u32>,
    both: Vec<u32>,
}

thread_local! {
    static PROBE_SCRATCH: std::cell::Cell<ProbeScratch> =
        std::cell::Cell::new(ProbeScratch::default());
}

/// Base-relation lookup with unification and optional `@T` time capture.
///
/// When the atom has arguments that are ground under the current binding,
/// the relation's secondary value index is probed for the most selective
/// position instead of scanning every tuple; candidates still pass through
/// full unification, so the probe is purely an access-path optimization.
fn eval_rel(
    atom: &Atom,
    ctx: &EvalCtx<'_>,
    use_delta: bool,
    binding: &Bindings,
    mask: Option<Interval>,
    access: Option<AccessPath>,
) -> Result<Vec<(Bindings, IntervalSet)>> {
    let db = if use_delta {
        ctx.delta
            .expect("delta variant evaluated without a delta database")
    } else {
        ctx.total
    };
    let Some(rel) = db.relation(atom.pred) else {
        // Still an eval_rel call: account for it as a zero-tuple full scan
        // so `index_probes + full_scans` covers every call.
        JoinCounters::bump(&ctx.counters.full_scans, 1);
        return Ok(vec![]);
    };

    // On the (cold) error paths below the scratch is simply dropped and
    // the thread-local reverts to empty defaults — correct, just without
    // capacity reuse.
    let mut scr = PROBE_SCRATCH.take();

    // Access-path selection: an authoritative plan binds the choice made at
    // plan time; without one (throwaway plans, negation re-checks, Since/
    // Until arms) the legacy config toggles decide. Either way a runtime
    // degrade guard drops to a scan on tiny relations — probing a relation
    // below `INDEX_MIN_TUPLES` never builds (or consults) an index, so a
    // plan chosen against stale sizes can't force a pointless index build.
    let (want_value, want_time) = match access {
        Some(p) => (p.uses_value(), p.uses_time()),
        None => (ctx.index_joins, ctx.time_index),
    };

    // Argument positions that are ground under the current binding.
    scr.ground.clear();
    if want_value && rel.len() >= INDEX_MIN_TUPLES {
        for (i, t) in atom.args.iter().enumerate() {
            match t {
                Term::Val(c) => scr.ground.push((i, *c)),
                Term::Var(x) => {
                    if let Some(v) = binding.get(x) {
                        scr.ground.push((i, *v));
                    }
                }
            }
        }
    }
    let use_time = want_time && mask.is_some() && rel.len() >= INDEX_MIN_TUPLES;

    // Candidate selection is shared across storage layouts: both modes see
    // the same index buckets and bump the same counters, so the
    // scanned + probed + avoided invariants hold bit-for-bit under
    // `--row-store`. `None` means full scan.
    let candidates: Option<&[u32]> = if scr.ground.is_empty() && !use_time {
        JoinCounters::bump(&ctx.counters.full_scans, 1);
        JoinCounters::bump(&ctx.counters.scanned_tuples, rel.len() as u64);
        None
    } else {
        // Value probe, time probe, or both: both candidate lists come back
        // in ascending id (= insertion) order, so their intersection visits
        // tuples in scan order and determinism is preserved.
        let candidates: &[u32] = match (scr.ground.is_empty(), use_time) {
            (false, false) => {
                rel.probe_into(&scr.ground, &mut scr.value);
                &scr.value
            }
            (true, true) => {
                let w = mask.as_ref().expect("use_time implies a mask");
                rel.probe_time_into(w, &mut scr.time);
                JoinCounters::bump(&ctx.counters.time_index_probes, 1);
                JoinCounters::bump(
                    &ctx.counters.interval_clips_avoided,
                    (rel.len() - scr.time.len()) as u64,
                );
                &scr.time
            }
            (false, true) => {
                rel.probe_into(&scr.ground, &mut scr.value);
                if scr.value.len() <= rel.len() / 8 {
                    // A small (or empty) value bucket: clipping a handful
                    // of candidates directly is cheaper than walking the
                    // time index's window range (which costs a sort of
                    // every overlapping id); skipping also means an empty
                    // bucket neither builds the time index nor re-counts
                    // its pending tail against the clip counters.
                    &scr.value
                } else {
                    let w = mask.as_ref().expect("use_time implies a mask");
                    rel.probe_time_into(w, &mut scr.time);
                    JoinCounters::bump(&ctx.counters.time_index_probes, 1);
                    intersect_sorted_into(&scr.value, &scr.time, &mut scr.both);
                    JoinCounters::bump(
                        &ctx.counters.interval_clips_avoided,
                        (scr.value.len() - scr.both.len()) as u64,
                    );
                    &scr.both
                }
            }
            (true, false) => unreachable!("handled by the full-scan branch"),
        };
        JoinCounters::bump(&ctx.counters.index_probes, 1);
        JoinCounters::bump(&ctx.counters.probed_tuples, candidates.len() as u64);
        JoinCounters::bump(
            &ctx.counters.index_scan_avoided,
            (rel.len() - candidates.len()) as u64,
        );
        Some(candidates)
    };

    let mut out = Vec::new();
    match rel.store() {
        StoreRef::Row(s) => {
            let mut emit = |tuple: &crate::value::Tuple, ivs: &IntervalSet| -> Result<()> {
                let Some(b2) = unify(atom, tuple, binding) else {
                    return Ok(());
                };
                // Clip lazily: the unmasked path borrows the stored set and
                // only clones if the tuple is actually emitted.
                let clipped: Cow<'_, IntervalSet> = match &mask {
                    Some(w) => Cow::Owned(ivs.intersect_interval(w)),
                    None => Cow::Borrowed(ivs),
                };
                if clipped.is_empty() {
                    return Ok(());
                }
                match atom.time_var {
                    None => out.push((b2, clipped.into_owned())),
                    Some(tv) => {
                        // The capture refers to the base fact's own time
                        // points, so the fact must be punctual.
                        let points = clipped.punctual_points().ok_or_else(|| {
                            Error::Eval(format!(
                                "time capture @{tv} on non-punctual fact {}{:?}",
                                atom.pred, tuple
                            ))
                        })?;
                        for p in points {
                            let tval = Value::from_time(p);
                            match b2.get(&tv) {
                                Some(existing) if !existing.semantic_eq(&tval) => continue,
                                _ => {}
                            }
                            let mut b3 = b2.clone();
                            b3.insert(tv, tval);
                            out.push((b3, IntervalSet::from_interval(Interval::point(p))));
                        }
                    }
                }
                Ok(())
            };
            match candidates {
                None => {
                    for (tuple, ivs) in &s.entries {
                        emit(tuple, ivs)?;
                    }
                }
                Some(c) => {
                    for &id in c {
                        let (tuple, ivs) = &s.entries[id as usize];
                        emit(tuple, ivs)?;
                    }
                }
            }
        }
        StoreRef::Col(s) => {
            // Columnar unification: compile the atom's argument pattern into
            // per-position checks ONCE, then run every candidate through
            // dense `u32` semantic-id compares — no per-tuple Value
            // materialization, no hashing. One interner read guard covers
            // the whole loop.
            enum Chk<'c> {
                /// Stored value's semantic class must equal this id. A
                /// constant absent from the interner gets the `NONE_VID`
                /// sentinel, which matches nothing — the loop still visits
                /// every candidate so counters stay identical to row mode.
                Sid { col: &'c [u32], sid: u32 },
                /// Repeated fresh variable: positions must agree pairwise.
                Repeat { col: &'c [u32], first: &'c [u32] },
                /// First occurrence of a fresh variable: bind on success.
                Bind { col: &'c [u32], var: Symbol },
            }
            let g = intern::read();
            let arity = atom.args.len();
            // Column slices are hoisted into the checks once: the visit loop
            // then runs on flat `&[u32]` indexing with no outer-vector
            // lookups. A missing column means no stored tuple reaches this
            // arity, so nothing can match and the visit loop is skipped
            // outright (candidate counters were already charged above).
            let mut checks: Vec<Chk> = Vec::with_capacity(arity);
            let mut unmatchable = false;
            for (i, t) in atom.args.iter().enumerate() {
                let Some(col) = s.col(i) else {
                    unmatchable = true;
                    break;
                };
                match t {
                    Term::Val(c) => checks.push(Chk::Sid {
                        col,
                        sid: g.sid_of(c).unwrap_or(NONE_VID),
                    }),
                    Term::Var(x) => {
                        if let Some(v) = binding.get(x) {
                            checks.push(Chk::Sid {
                                col,
                                sid: g.sid_of(v).unwrap_or(NONE_VID),
                            });
                        } else if let Some(first) = atom.args[..i].iter().position(|t2| t2 == t) {
                            checks.push(Chk::Repeat {
                                col,
                                first: s.col(first).expect("earlier position has a column"),
                            });
                        } else {
                            checks.push(Chk::Bind { col, var: *x });
                        }
                    }
                }
            }
            let lens = s.lens();
            let arity_u32 = arity as u32;
            let mut visit = |id: u32| -> Result<()> {
                if lens[id as usize] != arity_u32 {
                    return Ok(());
                }
                for c in &checks {
                    match *c {
                        Chk::Sid { col, sid } => {
                            if g.sid(col[id as usize]) != sid {
                                return Ok(());
                            }
                        }
                        Chk::Repeat { col, first } => {
                            if g.sid(col[id as usize]) != g.sid(first[id as usize]) {
                                return Ok(());
                            }
                        }
                        Chk::Bind { .. } => {}
                    }
                }
                let comps = s.comps_of(id);
                let clipped = match &mask {
                    Some(w) => IntervalSet::clip_components(comps, w),
                    None => IntervalSet::from_sorted(comps.to_vec()),
                };
                if clipped.is_empty() {
                    return Ok(());
                }
                let mut b2 = binding.clone();
                for c in &checks {
                    if let Chk::Bind { col, var } = *c {
                        b2.entry(var).or_insert_with(|| g.decode(col[id as usize]));
                    }
                }
                match atom.time_var {
                    None => out.push((b2, clipped)),
                    Some(tv) => {
                        let points = clipped.punctual_points().ok_or_else(|| {
                            let vals: Vec<Value> =
                                (0..arity).map(|p| g.decode(s.vid_at(p, id))).collect();
                            Error::Eval(format!(
                                "time capture @{tv} on non-punctual fact {}{:?}",
                                atom.pred,
                                vals.into_boxed_slice()
                            ))
                        })?;
                        for p in points {
                            let tval = Value::from_time(p);
                            match b2.get(&tv) {
                                Some(existing) if !existing.semantic_eq(&tval) => continue,
                                _ => {}
                            }
                            let mut b3 = b2.clone();
                            b3.insert(tv, tval);
                            out.push((b3, IntervalSet::from_interval(Interval::point(p))));
                        }
                    }
                }
                Ok(())
            };
            if !unmatchable {
                match candidates {
                    None => {
                        for id in 0..s.len() as u32 {
                            visit(id)?;
                        }
                    }
                    Some(c) => {
                        for &id in c {
                            visit(id)?;
                        }
                    }
                }
            }
        }
    }
    PROBE_SCRATCH.set(scr);
    Ok(out)
}

/// Intersection of two ascending-sorted id lists into a reused buffer,
/// preserving order.
fn intersect_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Unifies an atom's argument pattern with a ground tuple under a binding.
/// Numeric values unify semantically (`3 = 3.0`), so integer-initialized
/// state joins with float-updated state.
///
/// Checked in two passes: match first without allocating, clone the binding
/// only on success — this runs once per scanned tuple and is the hottest
/// spot of dense-timeline materialization.
fn unify(atom: &Atom, tuple: &[Value], binding: &Bindings) -> Option<Bindings> {
    if atom.args.len() != tuple.len() {
        return None;
    }
    // Pass 1: consistency check. Repeated fresh variables (e.g. p(X, X))
    // are validated against the tuple's own values.
    for (i, (t, v)) in atom.args.iter().zip(tuple.iter()).enumerate() {
        match t {
            Term::Val(c) => {
                if !c.semantic_eq(v) {
                    return None;
                }
            }
            Term::Var(x) => {
                if let Some(bound) = binding.get(x) {
                    if !bound.semantic_eq(v) {
                        return None;
                    }
                } else {
                    // First occurrence in this atom; check later repeats.
                    for (t2, v2) in atom.args[..i].iter().zip(tuple.iter()) {
                        if t2 == t && !v2.semantic_eq(v) {
                            return None;
                        }
                    }
                }
            }
        }
    }
    // Pass 2: build the extended binding.
    let mut b = binding.clone();
    for (t, v) in atom.args.iter().zip(tuple.iter()) {
        if let Term::Var(x) = t {
            b.entry(*x).or_insert(*v);
        }
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_facts, parse_rule};

    fn ctx_db(facts: &str) -> Database {
        let mut db = Database::new();
        db.extend_facts(&parse_facts(facts).unwrap()).unwrap();
        db
    }

    fn eval(rule_src: &str, facts: &str) -> Vec<(Bindings, IntervalSet)> {
        let rule = parse_rule(rule_src).unwrap();
        let db = ctx_db(facts);
        let counters = JoinCounters::default();
        let ctx = EvalCtx {
            total: &db,
            delta: None,
            horizon: Interval::closed_int(0, 100),
            index_joins: true,
            time_index: true,
            threads: 1,
            pool: None,
            counters: &counters,
            profiler: None,
        };
        eval_body(&rule, &ctx, None).unwrap()
    }

    #[test]
    fn simple_join_intersects_time() {
        let out = eval(
            "h(A) :- p(A), q(A).",
            "p(x)@[0, 10].\nq(x)@[5, 20].\np(y)@[0, 10].",
        );
        assert_eq!(out.len(), 1);
        let (b, ivs) = &out[0];
        assert_eq!(b[&Symbol::new("A")], Value::sym("x"));
        assert_eq!(ivs.components(), &[Interval::closed_int(5, 10)]);
    }

    #[test]
    fn diamond_shifts_join() {
        let out = eval("h(A) :- diamondminus p(A).", "p(x)@3.");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.components(), &[Interval::at(4)]);
    }

    #[test]
    fn negation_subtracts() {
        let out = eval("h(A) :- p(A), not q(A).", "p(x)@[0, 10].\nq(x)@[4, 6].");
        assert_eq!(out.len(), 1);
        let ivs = &out[0].1;
        assert!(ivs.contains(3.into()));
        assert!(!ivs.contains(5.into()));
        assert!(ivs.contains(7.into()));
    }

    #[test]
    fn negation_is_existential_over_wildcards() {
        let out = eval(
            "h(A) :- p(A), not q(A, _).",
            "p(x)@[0, 10].\nq(x, 1)@[2, 3].\nq(x, 2)@[5, 6].",
        );
        assert_eq!(out.len(), 1);
        let ivs = &out[0].1;
        assert!(ivs.contains(0.into()));
        assert!(!ivs.contains(2.into()));
        assert!(ivs.contains(4.into()));
        assert!(!ivs.contains(6.into()));
    }

    #[test]
    fn constraints_assign_and_filter() {
        let out = eval(
            "h(A, M) :- p(A, X), q(A, Y), M = X + Y, M > 10.",
            "p(x, 4)@1.\nq(x, 7)@1.\np(y, 1)@1.\nq(y, 2)@1.",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0[&Symbol::new("M")], Value::Int(11));
    }

    #[test]
    fn assignment_chains_resolve_out_of_order() {
        let out = eval("h(A, M) :- M = Z * 2, Z = X + 1, p(A, X).", "p(x, 4)@1.");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0[&Symbol::new("M")], Value::Int(10));
    }

    #[test]
    fn time_capture_binds_event_time() {
        let out = eval("h(T) :- p(A)@T.", "p(x)@7.\np(y)@9.");
        let mut times: Vec<Value> = out.iter().map(|(b, _)| b[&Symbol::new("T")]).collect();
        times.sort();
        assert_eq!(times, vec![Value::Int(7), Value::Int(9)]);
    }

    #[test]
    fn time_capture_on_long_interval_errors() {
        let rule = parse_rule("h(T) :- p(A)@T.").unwrap();
        let db = ctx_db("p(x)@[0, 5].");
        let counters = JoinCounters::default();
        let ctx = EvalCtx {
            total: &db,
            delta: None,
            horizon: Interval::closed_int(0, 100),
            index_joins: true,
            time_index: true,
            threads: 1,
            pool: None,
            counters: &counters,
            profiler: None,
        };
        assert!(eval_body(&rule, &ctx, None).is_err());
    }

    #[test]
    fn semantic_unification_joins_int_and_float() {
        let out = eval("h(A) :- p(A, S), q(A, S).", "p(x, 0)@1.\nq(x, 0.0)@1.");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn delta_eligibility_rules() {
        assert!(delta_eligible(&parse_rule("h(X) :- p(X).").unwrap().body[0]).is_some());
        assert!(delta_eligible(&parse_rule("h(X) :- boxminus p(X).").unwrap().body[0]).is_some());
        assert!(
            delta_eligible(&parse_rule("h(X) :- diamondminus[0, 5] p(X).").unwrap().body[0])
                .is_some()
        );
        // non-punctual box is not union-distributive
        assert!(
            delta_eligible(&parse_rule("h(X) :- boxminus[0, 5] p(X).").unwrap().body[0]).is_none()
        );
        assert!(
            delta_eligible(&parse_rule("h(X) :- since(p(X), q(X)).").unwrap().body[0]).is_none()
        );
        assert!(delta_eligible(&parse_rule("h(X) :- p(X), not q(X).").unwrap().body[1]).is_none());
    }

    #[test]
    fn expr_integer_exactness() {
        let b = Bindings::default();
        let e = crate::parser::parse_rule("h(X) :- p(Y), X = 6 / 3.").unwrap();
        drop(e);
        assert_eq!(
            eval_expr(
                &Expr::Div(Box::new(Expr::val(6i64)), Box::new(Expr::val(3i64))),
                &b
            )
            .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_expr(
                &Expr::Div(Box::new(Expr::val(7i64)), Box::new(Expr::val(2i64))),
                &b
            )
            .unwrap(),
            Value::num(3.5)
        );
        assert!(eval_expr(
            &Expr::Div(Box::new(Expr::val(1i64)), Box::new(Expr::val(0i64))),
            &b
        )
        .is_err());
    }

    #[test]
    fn indexed_probe_matches_full_scan_and_counts() {
        let mut facts = String::new();
        for i in 0..50 {
            facts.push_str(&format!("p(a{i}, {i})@{i}.\n"));
        }
        facts.push_str("q(a7)@[0, 100].");
        let rule = parse_rule("h(X, N) :- q(X), p(X, N).").unwrap();
        let db = ctx_db(&facts);
        let run = |index_joins: bool| {
            let counters = JoinCounters::default();
            let out = {
                let ctx = EvalCtx {
                    total: &db,
                    delta: None,
                    horizon: Interval::closed_int(0, 100),
                    index_joins,
                    // The unindexed baseline disables the time index too so
                    // its counters show pure full scans.
                    time_index: index_joins,
                    threads: 1,
                    pool: None,
                    counters: &counters,
                    profiler: None,
                };
                eval_body(&rule, &ctx, None).unwrap()
            };
            (out, counters)
        };
        let (indexed, ic) = run(true);
        let (scanned, sc) = run(false);
        // Same derivations either way (eval_body output order is stable).
        assert_eq!(indexed.len(), 1);
        assert_eq!(indexed.len(), scanned.len());
        assert_eq!(indexed[0].0, scanned[0].0);
        assert_eq!(indexed[0].1.components(), scanned[0].1.components());
        // The indexed run probed p(X, N) with X bound and skipped 49 tuples.
        assert!(ic.index_probes.load(Ordering::Relaxed) >= 1);
        assert!(ic.index_scan_avoided.load(Ordering::Relaxed) >= 49);
        assert_eq!(sc.index_probes.load(Ordering::Relaxed), 0);
        assert!(sc.scanned_tuples.load(Ordering::Relaxed) >= 50);
    }

    #[test]
    fn since_in_body() {
        let out = eval("h(A) :- since[0, 5](p(A), q(A)).", "p(x)@[0, 10].\nq(x)@0.");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.components(), &[Interval::closed_int(0, 5)]);
    }

    #[test]
    fn top_and_bottom_literals() {
        let out = eval("h(A) :- p(A), top.", "p(x)@[0, 10].");
        assert_eq!(out.len(), 1);
        let out = eval("h(A) :- p(A), bottom.", "p(x)@[0, 10].");
        assert!(out.is_empty());
    }
}
