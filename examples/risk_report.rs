//! The supervisor's view the paper motivates in its conclusion: replay a
//! persisted on-chain ledger, track every margin account over time, query
//! the Subgraph-like index, and *explain* a settlement as a derivation tree
//! over contract rules and user actions.
//!
//! ```bash
//! cargo run --release -p chronolog-bench --example risk_report
//! ```

use chronolog_core::{Reasoner, ReasonerConfig};
use chronolog_ledger::{from_json, to_json, Ledger, SubgraphIndex};
use chronolog_market::{generate, ScenarioConfig};
use chronolog_perp::encode::{account_value, encode_trace};
use chronolog_perp::extract::margin_at;
use chronolog_perp::program::{build_program, TimelineMode};
use chronolog_perp::{MarketParams, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A market window arrives as a persisted ledger (e.g. from an
    //    archive node). We simulate one and round-trip it through JSON.
    let mut config =
        ScenarioConfig::new("audited window", 77, 1_665_165_600, 24, 6, -420.0, 1350.0);
    config.duration_secs = 1_200;
    let trace = generate(&config);
    let ledger = Ledger::from_trace(&trace)?;
    let json = to_json(&ledger)?;
    let ledger = from_json(&json)?; // chain verified on load
    println!(
        "loaded ledger: {} records, chain verified, window {}s",
        ledger.len(),
        ledger.end_time - ledger.start_time
    );

    // 2. The Subgraph-style index answers the usual analytics queries.
    let params = MarketParams::default();
    let index = SubgraphIndex::build(&ledger, params);
    println!("\n-- protocol analytics (fixed-point, as on-chain) --");
    println!("  settled trades : {}", index.trades().len());
    println!("  aggregate PnL  : {:+.4}$", index.total_pnl());
    println!("  fees collected : {:.4}$", index.total_fees());
    println!("  final skew     : {:+.4}", index.final_skew());

    // 3. The declarative run gives the supervisor the *full state history*:
    //    every margin account at every epoch, with provenance.
    let trace = ledger.to_trace();
    let program = build_program(&params, TimelineMode::EventEpochs)?;
    let encoded = encode_trace(&trace, TimelineMode::EventEpochs);
    let reasoner = Reasoner::new(
        program.clone(),
        ReasonerConfig {
            provenance: true,
            ..ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1)
        },
    )?;
    let out = reasoner.materialize(&encoded.database)?;

    println!("\n-- margin evolution per account (rows = epochs) --");
    let accounts = trace.accounts();
    print!("epoch |");
    for a in &accounts {
        print!(" {a:>10} |");
    }
    println!();
    for epoch in 0..=trace.events.len() as i64 {
        print!("{epoch:5} |");
        for a in &accounts {
            match margin_at(&out.database, *a, epoch) {
                Some(m) => print!(" {m:10.2} |"),
                None => print!(" {:>10} |", "-"),
            }
        }
        println!();
    }

    // 4. Explainability: pick the first settlement and ask *why*.
    let close_epoch = trace
        .events
        .iter()
        .position(|e| matches!(e.method, Method::ClosePosition))
        .expect("the window contains trades") as i64
        + 1;
    let account = trace.events[close_epoch as usize - 1].account;
    let pnl = index.trades_of(account)[0].pnl;
    println!("\n-- why did {account} settle pnl {pnl:+.4}$ at epoch {close_epoch}? --");
    // Find the pnl value the DatalogMTL run derived (bit-equal to f64 ref).
    let derived = chronolog_perp::extract::position_at(&out.database, account, close_epoch - 1);
    println!("position before close: {derived:?}");
    if let Some(explanation) = out.provenance.as_ref().and_then(|log| {
        // locate the derived pnl fact's value by scanning the relation
        let rel = out.database.relation(chronolog_core::Symbol::new("pnl"))?;
        let acc_val = account_value(account);
        let (tuple, _) = rel.iter().find(|(tuple, ivs)| {
            tuple.value(0).semantic_eq(&acc_val)
                && chronolog_core::IntervalSet::components_contain(
                    ivs,
                    chronolog_core::Rational::integer(close_epoch),
                )
        })?;
        log.explain(
            &program,
            &out.database,
            chronolog_core::Symbol::new("pnl"),
            &tuple.to_vec(),
            close_epoch,
        )
    }) {
        println!("{explanation}");
    }

    // The declarative PnL agrees with the on-chain value to fixed-point dust.
    let datalog_run = chronolog_perp::extract::extract_run(&out.database, &trace, &encoded)?;
    let declarative_pnl = datalog_run
        .trades
        .iter()
        .find(|t| t.account == account)
        .expect("settled")
        .pnl;
    assert!((declarative_pnl - pnl).abs() < 1e-6);
    println!("\ndeclarative PnL {declarative_pnl:+.6}$ == on-chain {pnl:+.6}$ (to EVM dust)");
    Ok(())
}
