//! Risk-monitoring extension — the paper's conclusion sketches exactly
//! this: *"extensions to our program could be adopted by private market
//! players for internal risk management activities, for instance, to be
//! able to swiftly react to the evolution of each margin account over
//! time, or for automatically reporting up-to-date data to authorities,
//! like the size of the position at each time point."*
//!
//! The module appends pure-analytics rules to the contract program:
//! per-account exposure and leverage, threshold alerts, and market-wide
//! open interest. The rules read contract state but never feed back into
//! it, so the Figure 4/5 exactness results are untouched.

use crate::params::MarketParams;
use crate::program::{program_source, TimelineMode};
use chronolog_core::{parse_program, Program, Result};

/// Thresholds for the monitoring rules.
#[derive(Clone, Copy, Debug)]
pub struct MonitorParams {
    /// Leverage (exposure / margin) at or above which `highLeverage(A)`
    /// fires.
    pub max_leverage: f64,
    /// Maintenance-margin ratio: `underMargin(A)` fires when
    /// `margin < exposure * maintenance_ratio`.
    pub maintenance_ratio: f64,
}

impl Default for MonitorParams {
    fn default() -> Self {
        MonitorParams {
            max_leverage: 10.0,
            maintenance_ratio: 0.05,
        }
    }
}

/// The monitoring rules (appended to the contract program).
pub fn monitor_source(monitor: &MonitorParams) -> String {
    format!(
        "\n% ----- MONITOR (extension; conclusion of the paper) -----\n\
         % Dollar exposure of every open position, at every interaction.\n\
         exposure(A, E) :- position(A, S, N), price(P), E = abs(S * P).\n\
         % Leverage = exposure / margin (guarded against empty margins).\n\
         leverage(A, L) :- exposure(A, E), margin(A, M), M > 0.0, L = E / M.\n\
         % Supervisor alerts.\n\
         highLeverage(A) :- leverage(A, L), L >= {max_leverage}.\n\
         underMargin(A) :- margin(A, M), exposure(A, E), E > 0.0, M < E * {maintenance}.\n\
         % Market-wide open interest (sum of all exposures) per time point.\n\
         openInterest(sum(E)) :- exposure(A, E).\n\
         % Report feed for authorities: the size of every position at each\n\
         % interaction time (conclusion's reporting example).\n\
         reportPosition(A, S) :- position(A, S, N), price(P).\n",
        max_leverage = format_args!("{:?}", monitor.max_leverage),
        maintenance = format_args!("{:?}", monitor.maintenance_ratio),
    )
}

/// Builds the contract program extended with the monitoring rules.
pub fn build_monitored_program(
    params: &MarketParams,
    monitor: &MonitorParams,
    mode: TimelineMode,
) -> Result<Program> {
    let src = format!(
        "{}{}",
        program_source(params, mode),
        monitor_source(monitor)
    );
    parse_program(&src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{account_value, encode_trace};
    use crate::types::{AccountId, Event, Method, Trace};
    use chronolog_core::{Reasoner, ReasonerConfig, Symbol, Value};

    fn ev(t: i64, acc: u32, m: Method, price: f64) -> Event {
        Event {
            time: t,
            account: AccountId(acc),
            method: m,
            price,
        }
    }

    fn run_monitored(trace: &Trace, monitor: MonitorParams) -> chronolog_core::Database {
        let program = build_monitored_program(
            &MarketParams::default(),
            &monitor,
            TimelineMode::EventEpochs,
        )
        .unwrap();
        let encoded = encode_trace(trace, TimelineMode::EventEpochs);
        Reasoner::new(
            program,
            ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1),
        )
        .unwrap()
        .materialize(&encoded.database)
        .unwrap()
        .database
    }

    fn trace() -> Trace {
        Trace {
            start_time: 0,
            end_time: 600,
            initial_skew: 0.0,
            initial_price: 1000.0,
            events: vec![
                // 100$ margin, 0.5 ETH @ 1000$ = 500$ exposure: leverage 5.
                ev(10, 1, Method::TransferMargin { amount: 100.0 }, 1000.0),
                ev(20, 1, Method::ModifyPosition { size: 0.5 }, 1000.0),
                // 2 ETH more: 2500$ exposure on ~100$ margin: leverage 25.
                ev(30, 1, Method::ModifyPosition { size: 2.0 }, 1000.0),
                ev(40, 1, Method::ClosePosition, 1000.0),
            ],
        }
    }

    #[test]
    fn exposure_and_leverage_track_positions() {
        let db = run_monitored(&trace(), MonitorParams::default());
        let acc = account_value(AccountId(1));
        // Epoch 2: position 0.5 @ 1000$ -> exposure 500.
        assert!(db.holds_at("exposure", &[acc, Value::num(500.0)], 2));
        assert!(db.holds_at("leverage", &[acc, Value::num(5.0)], 2));
        // Not highly leveraged yet (threshold 10).
        assert!(!db.holds_at("highLeverage", &[acc], 2));
        // Epoch 3: 2.5 ETH -> exposure 2500, leverage 25 -> alert.
        assert!(db.holds_at("exposure", &[acc, Value::num(2500.0)], 3));
        assert!(db.holds_at("highLeverage", &[acc], 3));
        // After close the exposure is zero and alerts clear.
        assert!(db.holds_at("exposure", &[acc, Value::num(0.0)], 4));
        assert!(!db.holds_at("highLeverage", &[acc], 4));
    }

    #[test]
    fn under_margin_alert_uses_maintenance_ratio() {
        // maintenance 10%: margin 100 < 2500 * 0.1 -> alert at epoch 3 only.
        let db = run_monitored(
            &trace(),
            MonitorParams {
                max_leverage: 100.0,
                maintenance_ratio: 0.10,
            },
        );
        let acc = account_value(AccountId(1));
        assert!(!db.holds_at("underMargin", &[acc], 2));
        assert!(db.holds_at("underMargin", &[acc], 3));
    }

    #[test]
    fn open_interest_aggregates_across_accounts() {
        let trace = Trace {
            start_time: 0,
            end_time: 600,
            initial_skew: 0.0,
            initial_price: 1000.0,
            events: vec![
                ev(10, 1, Method::TransferMargin { amount: 5_000.0 }, 1000.0),
                ev(20, 2, Method::TransferMargin { amount: 5_000.0 }, 1000.0),
                ev(30, 1, Method::ModifyPosition { size: 1.0 }, 1000.0),
                ev(40, 2, Method::ModifyPosition { size: -2.0 }, 1000.0),
            ],
        };
        let db = run_monitored(&trace, MonitorParams::default());
        // Epoch 4: |1*1000| + |-2*1000| = 3000 (shorts count absolutely).
        assert!(db.holds_at("openInterest", &[Value::num(3000.0)], 4));
    }

    #[test]
    fn report_feed_lists_position_sizes() {
        let db = run_monitored(&trace(), MonitorParams::default());
        let acc = account_value(AccountId(1));
        assert!(db.holds_at("reportPosition", &[acc, Value::num(0.5)], 2));
        assert!(db.holds_at("reportPosition", &[acc, Value::num(2.5)], 3));
    }

    #[test]
    fn monitored_program_still_validates_and_extends_rule_count() {
        let base =
            crate::program::build_program(&MarketParams::default(), TimelineMode::EventEpochs)
                .unwrap();
        let ext = build_monitored_program(
            &MarketParams::default(),
            &MonitorParams::default(),
            TimelineMode::EventEpochs,
        )
        .unwrap();
        assert_eq!(ext.rules.len(), base.rules.len() + 6);
        // Contract predicates do not depend on monitor predicates.
        let g = chronolog_core::DependencyGraph::build(&ext);
        for (from, to, _) in &g.edges {
            let monitor_preds = [
                "exposure",
                "leverage",
                "highLeverage",
                "underMargin",
                "openInterest",
                "reportPosition",
            ];
            if monitor_preds.contains(&from.as_str().as_str()) {
                assert!(
                    monitor_preds.contains(&to.as_str().as_str()),
                    "monitor predicate {from} feeds contract predicate {to}"
                );
            }
        }
        let _ = Symbol::new("x");
    }
}
