//! Cost-based join reordering must be invisible on the paper's ETH-PERP
//! program: the planner may only change *how* the 52-rule program is
//! joined, never what it derives. Checked at two levels — byte-identical
//! materializations through the core engine, and identical observable
//! market outputs (FRS rows, trades, final skew) through the harness.

use chronolog_core::{Reasoner, ReasonerConfig};
use chronolog_perp::encode::encode_trace;
use chronolog_perp::harness::run_datalog_reordered;
use chronolog_perp::program::{build_program, TimelineMode};
use chronolog_perp::MarketParams;

#[cfg_attr(debug_assertions, ignore = "slow in debug profile; run with --release")]
#[test]
fn reordering_is_byte_invisible_on_the_perp_program() {
    let config = chronolog_market::paper_intervals().remove(1);
    let trace = chronolog_market::generate(&config);
    let params = MarketParams::default();
    for mode in [TimelineMode::DenseSeconds, TimelineMode::EventEpochs] {
        let program = build_program(&params, mode).unwrap();
        let encoded = encode_trace(&trace, mode);
        let run = |cost_based_reorder: bool| {
            let m = Reasoner::new(
                program.clone(),
                ReasonerConfig {
                    cost_based_reorder,
                    ..ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1)
                },
            )
            .unwrap()
            .materialize(&encoded.database)
            .unwrap();
            (m.database.to_facts_text(), m.stats)
        };
        let (reordered, stats) = run(true);
        let (baseline, baseline_stats) = run(false);
        assert_eq!(
            reordered, baseline,
            "{mode:?}: reordering changed the materialization"
        );
        assert_eq!(baseline_stats.reorders_applied, 0);
        // The perp program has multi-atom rule bodies; the planner must be
        // doing real work here, not comparing identical orders.
        assert!(
            stats.plans_built > 0,
            "{mode:?}: no plans were built: {stats:?}"
        );
    }
}

#[cfg_attr(debug_assertions, ignore = "slow in debug profile; run with --release")]
#[test]
fn harness_outputs_match_across_the_reorder_ablation() {
    let config = chronolog_market::paper_intervals().remove(1);
    let trace = chronolog_market::generate(&config);
    let params = MarketParams::default();
    for mode in [TimelineMode::DenseSeconds, TimelineMode::EventEpochs] {
        let on = run_datalog_reordered(&trace, &params, mode, true).unwrap();
        let off = run_datalog_reordered(&trace, &params, mode, false).unwrap();
        assert_eq!(on.run.frs, off.run.frs, "{mode:?}: FRS rows diverge");
        assert_eq!(on.run.trades, off.run.trades, "{mode:?}: trades diverge");
        assert_eq!(
            on.run.final_skew, off.run.final_skew,
            "{mode:?}: final skew diverges"
        );
    }
}
