//! # chronolog-core
//!
//! A DatalogMTL reasoning engine: Datalog with Metric Temporal Logic
//! operators over the rational timeline, stratified negation, temporal
//! aggregation, and arithmetic built-ins — the open-source substrate needed
//! to execute the declarative smart-derivative programs of
//! *“Smart Derivative Contracts in DatalogMTL”* (EDBT 2023).
//!
//! ## Quickstart
//!
//! ```
//! use chronolog_core::{parse_source, Database, Reasoner, ReasonerConfig, Value};
//!
//! // Rule 2 of the paper: an account stays open until a withdrawal.
//! let (program, facts) = parse_source(
//!     "isOpen(A) :- tranM(A, M).\n\
//!      isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
//!      tranM(acc1, 20.0)@3.\n\
//!      withdraw(acc1)@8.",
//! )
//! .unwrap();
//!
//! let mut db = Database::new();
//! db.extend_facts(&facts).unwrap();
//!
//! let reasoner = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 20)).unwrap();
//! let out = reasoner.materialize(&db).unwrap();
//!
//! assert!(out.database.holds_at("isOpen", &[Value::sym("acc1")], 7));
//! assert!(!out.database.holds_at("isOpen", &[Value::sym("acc1")], 9));
//! ```
//!
//! ## Architecture
//!
//! * [`ast`] — terms, metric atoms, rules, programs (§2.1 of the paper).
//! * [`parser`] — the concrete syntax (`boxminus`, `diamondminus`, …).
//! * [`analysis`] — safety, dependency graph (Figure 1), stratification.
//! * [`engine`] — semi-naive temporal materialization with provenance.
//! * [`rewrite`] — magic-sets demand transformation for goal-driven
//!   point queries ([`Reasoner::query`]).
//! * [`naive`] — a brute-force discrete-time evaluator used as a test
//!   oracle for the engine.

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod database;
pub mod engine;
pub mod error;
mod hash;
mod intern;
pub mod lexer;
pub mod naive;
pub mod parser;
pub mod rewrite;
mod symbol;
mod value;

pub use analysis::{DependencyGraph, EdgeKind, Stratification};
pub use ast::{
    AggFn, Atom, CmpOp, Expr, Fact, Head, HeadOp, Literal, MetricAtom, Program, Rule, Term,
};
pub use database::{Database, Relation, StorageMode, TupleRef};
pub use engine::{
    BaseEvent, Explanation, MagicStats, Materialization, PlanExplain, PlanFeedback,
    PlanStepExplain, ProvenanceLog, QueryOutcome, Reasoner, ReasonerConfig, RepairPath,
    RepairReport, RepairStats, RuleStats, RunStats, Session, StratumStats,
};
pub use error::{Error, Result};
pub use parser::{parse_facts, parse_program, parse_rule, parse_source};
pub use rewrite::{parse_query, MagicCounters, MagicRewrite, Query};
pub use symbol::Symbol;
pub use value::{OrdF64, Tuple, Value};

// Re-export the temporal substrate for downstream crates.
pub use mtl_temporal::{Interval, IntervalSet, MetricInterval, Rational, TimeBound};
