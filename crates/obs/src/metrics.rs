//! Process-wide metrics on atomics: monotonic counters, gauges, and
//! fixed-bucket (power-of-two) latency histograms, grouped in registries.
//!
//! The global [`Registry`] is the cheap default for cross-crate counters
//! (the perp harness and the market generator publish there); components
//! that need isolation (tests, parallel runs) can carry their own.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds values whose bit length
/// is `i` (i.e. `v == 0` → bucket 0, otherwise `⌊log2 v⌋ + 1`), capped at
/// the last bucket. With microsecond samples this spans 1µs .. ~2^62µs.
const BUCKETS: usize = 40;

/// A fixed-bucket histogram over `u64` samples (typically microseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time view of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket sample counts (bucket `i` covers bit-length-`i` values).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Mean sample value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::from_pairs([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("max", Json::from(self.max)),
            ("mean", Json::from(self.mean())),
            ("p50_le", Json::from(self.quantile_bound(0.50))),
            ("p99_le", Json::from(self.quantile_bound(0.99))),
        ])
    }
}

/// A named collection of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter with the given name, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge with the given name, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram with the given name, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// All metrics as one JSON object (counters and gauges flat, histogram
    /// summaries nested), keys sorted.
    pub fn snapshot(&self) -> Json {
        let mut out = Json::object();
        for (name, c) in self.counters.lock().expect("registry poisoned").iter() {
            out.set(name, c.get());
        }
        for (name, g) in self.gauges.lock().expect("registry poisoned").iter() {
            out.set(name, g.get());
        }
        for (name, h) in self.histograms.lock().expect("registry poisoned").iter() {
            out.set(name, h.snapshot().to_json());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.counter("a.b").add(4);
        assert_eq!(r.counter("a.b").get(), 5);
        r.gauge("g").set(-3);
        assert_eq!(r.gauge("g").get(), -3);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.max, 5000);
        assert!(s.quantile_bound(1.0) >= 5000);
        assert!(s.quantile_bound(0.5) <= 128);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn snapshot_is_stable_json() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.histogram("lat").record(7);
        let j = r.snapshot();
        let keys: Vec<&str> = j
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["a", "z", "lat"]);
        assert_eq!(
            j.get("lat").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn global_registry_is_shared() {
        Registry::global().counter("test.obs.global").add(2);
        assert!(Registry::global().counter("test.obs.global").get() >= 2);
    }
}
