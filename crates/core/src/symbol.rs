//! String interning for predicate names, symbolic constants, and variables.
//!
//! Reasoning touches the same names millions of times; interning makes
//! equality a `u32` compare and keeps tuples compact.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, hash, and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

/// A process-global interner. Symbols are tiny and programs reuse the same
/// names across databases and reasoner instances, so global interning avoids
/// threading a table through every API.
fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns a string.
    pub fn new(s: &str) -> Symbol {
        let mut i = interner().lock().expect("interner poisoned");
        if let Some(&id) = i.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(i.strings.len()).expect("interner overflow");
        i.strings.push(s.to_string());
        i.map.insert(s.to_string(), id);
        Symbol(id)
    }

    /// The interned text (allocates a copy; use only for display paths).
    pub fn as_str(&self) -> String {
        interner().lock().expect("interner poisoned").strings[self.0 as usize].clone()
    }

    /// Number of distinct strings interned so far (stats-json `storage`).
    pub(crate) fn interned_count() -> usize {
        interner().lock().expect("interner poisoned").strings.len()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("margin");
        let b = Symbol::new("margin");
        let c = Symbol::new("position");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "margin");
        assert_eq!(c.as_str(), "position");
    }

    #[test]
    fn display_shows_text() {
        let s = Symbol::new("tranM");
        assert_eq!(s.to_string(), "tranM");
        assert_eq!(format!("{s:?}"), "tranM");
    }
}
