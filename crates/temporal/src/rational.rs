//! Exact rational arithmetic for the DatalogMTL timeline.
//!
//! DatalogMTL is interpreted over the rational timeline ℚ, so time points and
//! metric-interval endpoints must be exact: rounding a bound would silently
//! change which facts a rule derives. [`Rational`] stores a normalized
//! `numerator / denominator` pair of `i64`s and performs all intermediate
//! arithmetic in `i128`, which cannot overflow for products of `i64`s.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number with a positive denominator, always stored in
/// lowest terms.
///
/// ```
/// use mtl_temporal::Rational;
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(half + third, Rational::new(5, 6));
/// assert!(half > third);
/// assert_eq!(Rational::new(4, 8), half);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64, // invariant: den > 0, gcd(|num|, den) == 1
}

/// Greatest common divisor of two non-negative `i128`s (Euclid).
fn gcd128(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Builds `num / den`, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0` or if the reduced fraction does not fit in `i64`.
    pub fn new(num: i64, den: i64) -> Rational {
        assert!(den != 0, "Rational with zero denominator");
        Self::from_i128(num as i128, den as i128)
    }

    /// Builds a rational from an integer.
    pub const fn integer(n: i64) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// Normalizes an `i128` fraction back into an `i64` rational.
    ///
    /// # Panics
    /// Panics if the reduced value overflows `i64` (timeline arithmetic far
    /// outside any realistic timestamp range).
    fn from_i128(num: i128, den: i128) -> Rational {
        debug_assert!(den != 0);
        let sign = if (num < 0) != (den < 0) { -1 } else { 1 };
        let (num, den) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd128(num as i128, den as i128).max(1) as u128;
        let (num, den) = (num / g, den / g);
        let num = i64::try_from(sign * num as i128)
            .expect("Rational numerator overflow: timeline value out of i64 range");
        let den =
            i64::try_from(den).expect("Rational denominator overflow: value out of i64 range");
        Rational { num, den }
    }

    /// The numerator of the reduced fraction (carries the sign).
    pub const fn numerator(self) -> i64 {
        self.num
    }

    /// The (always positive) denominator of the reduced fraction.
    pub const fn denominator(self) -> i64 {
        self.den
    }

    /// `true` iff the value is an integer.
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Converts to `i64` when the value is an integer.
    pub const fn as_integer(self) -> Option<i64> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Nearest `f64` (for reporting only; never used for reasoning decisions).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Sign of the value: -1, 0, or 1.
    pub const fn signum(self) -> i64 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i64 {
        -((-self).floor())
    }

    /// Checked addition: `None` if the reduced result overflows `i64`.
    pub fn checked_add(self, rhs: Rational) -> Option<Rational> {
        let num = self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Self::try_from_i128(num, den)
    }

    /// Checked subtraction: `None` if the reduced result overflows `i64`.
    pub fn checked_sub(self, rhs: Rational) -> Option<Rational> {
        let num = self.num as i128 * rhs.den as i128 - rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Self::try_from_i128(num, den)
    }

    /// Checked multiplication: `None` if the reduced result overflows `i64`.
    pub fn checked_mul(self, rhs: Rational) -> Option<Rational> {
        Self::try_from_i128(
            self.num as i128 * rhs.num as i128,
            self.den as i128 * rhs.den as i128,
        )
    }

    fn try_from_i128(num: i128, den: i128) -> Option<Rational> {
        debug_assert!(den != 0);
        let sign: i128 = if (num < 0) != (den < 0) { -1 } else { 1 };
        let (num, den) = (num.unsigned_abs() as i128, den.unsigned_abs() as i128);
        let g = gcd128(num, den).max(1);
        let num = i64::try_from(sign * (num / g)).ok()?;
        let den = i64::try_from(den / g).ok()?;
        Some(Rational { num, den })
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::integer(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::integer(n as i64)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        let num = self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Rational::from_i128(num, den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::from_i128(
            self.num as i128 * rhs.num as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "Rational division by zero");
        Rational::from_i128(
            self.num as i128 * rhs.den as i128,
            self.den as i128 * rhs.num as i128,
        )
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiplication keeps the comparison exact; denominators are positive.
        (self.num as i128 * other.den as i128).cmp(&(other.num as i128 * self.den as i128))
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(pub String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Accepts `"5"`, `"-5"`, `"3/4"`, and decimal literals like `"2.5"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let bad = || ParseRationalError(s.to_string());
        if let Some((n, d)) = s.split_once('/') {
            let n: i64 = n.trim().parse().map_err(|_| bad())?;
            let d: i64 = d.trim().parse().map_err(|_| bad())?;
            if d == 0 {
                return Err(bad());
            }
            Ok(Rational::new(n, d))
        } else if let Some((int, frac)) = s.split_once('.') {
            let neg = int.trim_start().starts_with('-');
            let int: i64 = if int.is_empty() || int == "-" {
                0
            } else {
                int.parse().map_err(|_| bad())?
            };
            if frac.is_empty() || frac.len() > 18 || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            let scale = 10i64.pow(frac.len() as u32);
            let frac: i64 = frac.parse().map_err(|_| bad())?;
            let signed_frac = if neg { -frac } else { frac };
            Rational::integer(int)
                .checked_add(Rational::new(signed_frac, scale))
                .ok_or_else(bad)
        } else {
            let n: i64 = s.parse().map_err(|_| bad())?;
            Ok(Rational::integer(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert!(Rational::new(2, -4).denominator() > 0);
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::integer(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn ordering_uses_cross_multiplication() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert_eq!(
            Rational::new(3, 9).cmp(&Rational::new(1, 3)),
            Ordering::Equal
        );
    }

    #[test]
    fn floor_and_ceil_match_euclidean_semantics() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::integer(5).floor(), 5);
        assert_eq!(Rational::integer(5).ceil(), 5);
    }

    #[test]
    fn parsing_accepts_int_fraction_decimal() {
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::integer(5));
        assert_eq!("-5".parse::<Rational>().unwrap(), Rational::integer(-5));
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("2.5".parse::<Rational>().unwrap(), Rational::new(5, 2));
        assert_eq!("-0.25".parse::<Rational>().unwrap(), Rational::new(-1, 4));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
        assert!("1.2.3".parse::<Rational>().is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for r in [
            Rational::new(3, 7),
            Rational::integer(-12),
            Rational::new(-5, 2),
            Rational::ZERO,
        ] {
            assert_eq!(r.to_string().parse::<Rational>().unwrap(), r);
        }
    }

    #[test]
    fn checked_ops_detect_overflow() {
        let big = Rational::integer(i64::MAX);
        assert!(big.checked_add(Rational::ONE).is_none());
        assert!(big.checked_mul(Rational::integer(2)).is_none());
        assert_eq!(
            Rational::new(1, 2).checked_add(Rational::new(1, 2)),
            Some(Rational::ONE)
        );
    }

    #[test]
    fn min_max_abs_signum() {
        let a = Rational::new(-3, 4);
        let b = Rational::new(1, 4);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.abs(), Rational::new(3, 4));
        assert_eq!(a.signum(), -1);
        assert_eq!(Rational::ZERO.signum(), 0);
    }
}
