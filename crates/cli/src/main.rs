//! Thin binary wrapper over [`chronolog_cli::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let read = |path: &str| -> std::io::Result<String> {
        if path == "-" {
            let mut s = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut s)?;
            Ok(s)
        } else {
            std::fs::read_to_string(path)
        }
    };
    match chronolog_cli::run_cli(&args, read) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("chronolog: {}", e.message);
            std::process::exit(e.code);
        }
    }
}
