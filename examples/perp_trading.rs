//! A full ETH-PERP trading session: simulate a market window, execute the
//! smart contract *declaratively* (the DatalogMTL program) and
//! *procedurally* (the fixed-point reference = the on-chain arithmetic),
//! and compare every settlement — the paper's §4 validation in miniature.
//!
//! ```bash
//! cargo run --release -p chronolog-bench --example perp_trading
//! ```

use chronolog_market::{generate, ScenarioConfig, TraceStats};
use chronolog_perp::harness::validate;
use chronolog_perp::program::TimelineMode;
use chronolog_perp::MarketParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A half-hour window with 40 interactions and 10 completed trades,
    // starting long-skewed.
    let mut config =
        ScenarioConfig::new("demo session", 0xE7E7, 1_664_274_600, 40, 10, 850.0, 1330.0);
    config.duration_secs = 1_800;
    let trace = generate(&config);
    let stats = TraceStats::of(&trace);
    println!("simulated window: {stats:#?}\n");

    let params = MarketParams::default();
    let report = validate(&trace, &params, TimelineMode::EventEpochs)?;

    println!("funding rate sequence (first 5 events):");
    for row in report.frs_rows.iter().take(5) {
        println!(
            "  t={}  F(t) = {:+.12}   (vs on-chain {:+.12}, diff {:+.2e})",
            row.time,
            row.datalog,
            row.subgraph,
            row.diff()
        );
    }

    println!("\nsettled trades (DatalogMTL):");
    for trade in &report.datalog.trades {
        println!(
            "  {} closed at t={}:  pnl {:+10.4}$   fee {:8.4}$   funding {:+10.6}$",
            trade.account, trade.time, trade.pnl, trade.fee, trade.funding
        );
    }

    println!("\nvalidation vs the fixed-point (on-chain) arithmetic:");
    println!("  max |FRS diff|     = {:.3e}", report.max_frs_diff());
    println!(
        "  returns: mean {:+.3e}  std {:.3e}",
        report.returns.mean, report.returns.std_dev
    );
    println!(
        "  fees:    mean {:+.3e}  std {:.3e}",
        report.fee.mean, report.fee.std_dev
    );
    println!(
        "  funding: mean {:+.3e}  std {:.3e}",
        report.funding.mean, report.funding.std_dev
    );
    println!(
        "\nengine: {} derived tuples in {:?}",
        report.stats.derived_tuples, report.stats.elapsed
    );

    assert!(report.max_frs_diff() < 1e-9, "the two engines must agree");
    println!("\nOK: the declarative contract reproduces the market exactly.");
    Ok(())
}
