//! # chronolog-obs
//!
//! The observability substrate of the chronolog workspace: counters,
//! gauges, and fixed-bucket latency histograms built on atomics; a bounded
//! structured-event ring buffer for execution traces; a hand-rolled JSON
//! value type with a writer and parser; and a small deterministic RNG.
//!
//! Everything here is dependency-free by design: the workspace builds in
//! fully offline environments, so this crate supplies the pieces that
//! would otherwise come from `serde_json`, `rand`, or a metrics crate.
//!
//! * [`json`] — [`Json`] value, compact/pretty writers, a strict parser.
//! * [`metrics`] — [`Counter`], [`Gauge`], [`Histogram`], [`Registry`].
//! * [`trace`] — [`Tracer`], a bounded ring of [`TraceEvent`]s, JSONL out.
//! * [`span`] — [`SpanRecorder`], hierarchical timing with per-thread
//!   lanes, Chrome `trace_event` and folded-flamegraph export.
//! * [`rng`] — [`SmallRng`], a seeded SplitMix64 generator.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod rng;
pub mod span;
pub mod trace;

pub use json::{Json, JsonError};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use rng::SmallRng;
pub use span::{spans_started, SpanGuard, SpanRecord, SpanRecorder};
pub use trace::{TraceEvent, Tracer};
