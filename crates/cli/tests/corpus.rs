//! Golden tests: the CLI over the real corpus files shipped in `corpus/`.

use chronolog_cli::run_cli;

fn fs(path: &str) -> std::io::Result<String> {
    // Tests run from the crate directory; corpus sits at the workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(path);
    std::fs::read_to_string(root)
}

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

#[test]
fn margin_corpus_reproduces_example_3_1() {
    let out = run_cli(
        &args(&[
            "run",
            "corpus/margin.dmtl",
            "--horizon",
            "0..20",
            "--query",
            "margin(acc123, M)",
        ]),
        fs,
    )
    .unwrap();
    // 97$ on day 9, 100$ from day 10, gone at the withdrawal (day 15).
    assert!(out.contains("margin(acc123, 97.0)@[9]"), "{out}");
    assert!(out.contains("margin(acc123, 100.0)@[10]"), "{out}");
    assert!(out.contains("margin(acc123, 100.0)@[14]"), "{out}");
    assert!(!out.contains("@[15]"), "{out}");
}

#[test]
fn sla_corpus_checks_and_runs() {
    let out = run_cli(&args(&["check", "corpus/sla.dmtl"]), fs).unwrap();
    assert!(out.contains("ok: 6 rules, 8 facts"), "{out}");
    let out = run_cli(
        &args(&[
            "run",
            "corpus/sla.dmtl",
            "--horizon",
            "0..20",
            "--query",
            "fleetUp(N)",
        ]),
        fs,
    )
    .unwrap();
    assert!(out.contains("fleetUp(2)"), "{out}");
    assert!(out.contains("fleetUp(1)"), "{out}");
}

#[test]
fn fibonacci_corpus_computes_the_sequence() {
    let out = run_cli(
        &args(&[
            "run",
            "corpus/fibonacci.dmtl",
            "--horizon",
            "0..10",
            "--query",
            "fib(F)",
        ]),
        fs,
    )
    .unwrap();
    for (t, f) in [
        (2, 2),
        (3, 3),
        (4, 5),
        (5, 8),
        (6, 13),
        (7, 21),
        (8, 34),
        (9, 55),
        (10, 89),
    ] {
        assert!(
            out.contains(&format!("fib({f})@[{t}]")),
            "fib({f})@{t} missing:\n{out}"
        );
    }
}

#[test]
fn funding_corpus_accrues_funding() {
    let out = run_cli(
        &args(&[
            "run",
            "corpus/funding.dmtl",
            "--horizon",
            "0..3",
            "--query",
            "frs(F)",
            "--query",
            "skew(K)",
        ]),
        fs,
    )
    .unwrap();
    // Skew: 1000 -> 1002.5 -> 1001.5.
    assert!(out.contains("skew(1000.0)@[0]"), "{out}");
    assert!(out.contains("skew(1002.5)@[1]"), "{out}");
    assert!(out.contains("skew(1001.5)@[2]"), "{out}");
    // The FRS moves away from zero once the skewed market accrues funding
    // (positive skew -> negative funding flow).
    assert!(out.contains("frs(0.0)@[0]"), "{out}");
    assert!(out.contains("frs(-0."), "{out}");
}

#[test]
fn graph_on_corpus_mentions_all_predicates() {
    let out = run_cli(&args(&["graph", "corpus/funding.dmtl"]), fs).unwrap();
    for pred in ["skew", "frs", "unrFund", "tdiff", "event"] {
        assert!(
            out.contains(&format!("\"{pred}\"")),
            "missing {pred} in DOT"
        );
    }
}

#[test]
fn explain_on_corpus_traces_to_inputs() {
    let out = run_cli(
        &args(&[
            "run",
            "corpus/margin.dmtl",
            "--horizon",
            "0..20",
            "--explain",
            "margin(acc123, 100.0)@13",
        ]),
        fs,
    )
    .unwrap();
    assert!(out.contains("tranM(acc123, 97.0)"), "{out}");
    assert!(out.contains("[input]"), "{out}");
}
