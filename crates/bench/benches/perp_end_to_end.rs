//! End-to-end benchmark of the §4 experiment: full DatalogMTL
//! materialization of the ETH-PERP program over each Figure-3 interval
//! (event-epoch timeline; the dense-seconds cost is covered by the
//! `ablations` bench and `repro --table perf --dense`).

use chronolog_bench::microbench::Bench;
use chronolog_bench::paper_traces;
use chronolog_market::{generate, ScenarioConfig};
use chronolog_perp::harness::run_datalog;
use chronolog_perp::program::TimelineMode;
use chronolog_perp::{MarketParams, ReferenceEngine};

fn bench_paper_intervals(c: &mut Bench) {
    let params = MarketParams::default();
    let mut group = c.group("perp_end_to_end");
    group.sample_size(10);
    for (config, trace) in paper_traces() {
        group.bench_function(format!("datalog/{}", config.name), |b| {
            b.iter(|| run_datalog(&trace, &params, TimelineMode::EventEpochs).unwrap())
        });
        group.bench_function(format!("datalog_threads4/{}", config.name), |b| {
            b.iter(|| {
                chronolog_perp::harness::run_datalog_threaded(
                    &trace,
                    &params,
                    TimelineMode::EventEpochs,
                    4,
                )
                .unwrap()
            })
        });
        group.bench_function(format!("reference_f64/{}", config.name), |b| {
            b.iter(|| ReferenceEngine::<f64>::run_trace(params, &trace))
        });
        group.bench_function(format!("reference_fixed18/{}", config.name), |b| {
            b.iter(|| ReferenceEngine::<chronolog_perp::Fixed18>::run_trace(params, &trace))
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Bench) {
    let mut group = c.group("trace_generation");
    for (name, events, trades) in [("small-32", 32, 8), ("fig3-interval-1", 267, 59)] {
        let config = ScenarioConfig::new(name, 7, 0, events, trades, -100.0, 1330.0);
        group.bench_function(name, |b| {
            b.iter_batched(|| config.clone(), |c| generate(&c))
        });
    }
    group.finish();
}

fn main() {
    let mut c = Bench::from_env();
    bench_paper_intervals(&mut c);
    bench_trace_generation(&mut c);
}
