//! The memory-resident execution model of §3.1: a continuously running
//! reasoning process that "takes as input the actions that the users send
//! to the smart contract … and updates multiple state amounts".
//!
//! A [`Session`] wraps a compiled program, accepts facts as they happen,
//! and *advances a watermark* instead of re-materializing from scratch.
//! This is sound for the paper's forward-propagating fragment
//! (DatalogMTL^FP): past-only operators mean a derivation at time `u`
//! depends only on facts at times `≤ u`, so once every fact up to the
//! watermark is known, everything derived below it is final. Each advance
//! therefore runs one semi-naive round seeded with (a) the newly submitted
//! facts and (b) the boundary slice `[now − reach, now]` of the existing
//! materialization, where `reach` is the program's maximal temporal
//! look-back — exactly the facts a boundary-crossing derivation could
//! consume.

use crate::ast::{Literal, MetricAtom, Program};
use crate::database::Database;
use crate::engine::{ProvenanceLog, Reasoner, RunStats};
use crate::error::{Error, Result};
use crate::Fact;
use mtl_temporal::{Interval, Rational, TimeBound};

/// A live, incrementally maintained materialization.
///
/// ```
/// use chronolog_core::{parse_program, Database, Fact, Reasoner, ReasonerConfig, Value};
///
/// let program = parse_program(
///     "isOpen(A) :- tranM(A, M).\n\
///      isOpen(A) :- boxminus isOpen(A), not withdraw(A).",
/// )
/// .unwrap();
/// let mut session = Reasoner::new(program, ReasonerConfig::default())
///     .unwrap()
///     .into_session(&Database::new(), 0)
///     .unwrap();
///
/// session
///     .submit(Fact::at("tranM", vec![Value::sym("acc"), Value::num(20.0)], 3))
///     .unwrap();
/// session.advance_to(5).unwrap();
/// assert!(session.database().holds_at("isOpen", &[Value::sym("acc")], 5));
///
/// // Derivations below the watermark are final; the session keeps going.
/// session
///     .submit(Fact::at("withdraw", vec![Value::sym("acc")], 7))
///     .unwrap();
/// session.advance_to(10).unwrap();
/// assert!(!session.database().holds_at("isOpen", &[Value::sym("acc")], 8));
/// ```
pub struct Session {
    reasoner: Reasoner,
    total: Database,
    pending: Vec<Fact>,
    start: Rational,
    now: Rational,
    reach: Rational,
    stats: RunStats,
}

impl Reasoner {
    /// Turns this reasoner into a live session starting at `start` with the
    /// given initial database (genesis facts; rigid facts go here).
    ///
    /// Fails unless the program is in the forward-propagating fragment:
    /// no future operators (`◇⁺`, `⊞`, `until`) in bodies, no head
    /// operators, and finite operator windows.
    pub fn into_session(self, initial: &Database, start: i64) -> Result<Session> {
        let reach = program_reach(self.program())?;
        let start = Rational::integer(start);
        let total = initial.clone();
        let mut stats = RunStats::default();
        // The clone carries the initial database's built indexes with it, so
        // the session never rebuilds them.
        stats.index_rebuilds_avoided += total.built_index_count() as u64;
        chronolog_obs::Registry::global()
            .counter("engine.index_rebuilds_avoided")
            .add(total.built_index_count() as u64);
        let mut session = Session {
            reasoner: self,
            total,
            pending: Vec::new(),
            start,
            now: start,
            reach,
            stats,
        };
        // Materialize the starting instant so `database()` is consistent
        // with `now` from the first moment.
        session.run_advance(start)?;
        Ok(session)
    }
}

impl Session {
    /// The current watermark: everything at or before it is final.
    pub fn now(&self) -> Rational {
        self.now
    }

    /// The materialization up to the watermark.
    pub fn database(&self) -> &Database {
        &self.total
    }

    /// Cumulative statistics across all advances.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Submits a fact that happened strictly after the watermark. It takes
    /// effect at the next [`Session::advance_to`].
    pub fn submit(&mut self, fact: Fact) -> Result<()> {
        match fact.interval.lo() {
            TimeBound::Finite(lo) if lo > self.now => {
                self.pending.push(fact);
                Ok(())
            }
            other => Err(Error::Eval(format!(
                "session facts must start strictly after the watermark {} (got {other:?})",
                self.now
            ))),
        }
    }

    /// Advances the watermark to `t`, deriving everything in `(now, t]`.
    pub fn advance_to(&mut self, t: i64) -> Result<&Database> {
        let t = Rational::integer(t);
        if t < self.now {
            return Err(Error::Eval(format!(
                "cannot advance backwards: watermark {} > target {t}",
                self.now
            )));
        }
        if let Some(f) = self
            .pending
            .iter()
            .find(|f| matches!(f.interval.hi(), TimeBound::Finite(hi) if hi > t))
            .or_else(|| self.pending.iter().find(|f| !f.interval.hi().is_finite()))
        {
            return Err(Error::Eval(format!(
                "pending fact {f} extends beyond the advance target {t}"
            )));
        }
        self.run_advance(t)?;
        Ok(&self.total)
    }

    fn run_advance(&mut self, t: Rational) -> Result<()> {
        let mut advance_span = self
            .reasoner
            .config()
            .profiler
            .as_ref()
            .map(|p| p.span("advance"));
        let started = std::time::Instant::now();
        self.reasoner.init_rule_stats(&mut self.stats);
        let from = self.now;
        let pending_count = self.pending.len();
        let tuples_before = self.total.tuple_count();
        // Seed: boundary slice of the existing materialization plus the
        // pending submissions, clipped to the derivation window.
        let window_lo = self.now.checked_sub(self.reach).ok_or_else(|| {
            Error::TimeOverflow(format!(
                "seed window start {} - {} leaves the rational timeline",
                self.now, self.reach
            ))
        })?;
        let window = Interval::new(
            TimeBound::Finite(window_lo),
            true,
            TimeBound::Finite(t),
            true,
        )
        .expect("non-empty seed window");
        let mut seed = Database::new();
        for (pred, tuple, ivs) in self.total.iter() {
            let clipped = ivs.intersect_interval(&window);
            if !clipped.is_empty() {
                seed.merge(pred, tuple.clone(), &clipped);
            }
        }
        for fact in self.pending.drain(..) {
            self.total.insert_fact(&fact);
            seed.insert(
                fact.pred,
                fact.args.clone().into_boxed_slice(),
                fact.interval,
            );
        }
        let seed_tuples = seed.tuple_count();

        let horizon = Interval::new(
            TimeBound::Finite(self.start),
            true,
            TimeBound::Finite(t),
            true,
        )
        .expect("non-empty horizon");

        // Each stratum's new facts also become seeds for the next stratum.
        let mut provenance: Option<ProvenanceLog> = None;
        let strata: Vec<Vec<usize>> = self.reasoner.stratification().rules_by_stratum.clone();
        for (stratum, rule_indices) in strata.iter().enumerate() {
            let mut collected = Database::new();
            let iterations = self.reasoner.run_stratum(
                stratum,
                rule_indices,
                &mut self.total,
                &mut provenance,
                &mut self.stats,
                horizon,
                Some(&seed),
                Some(&mut collected),
            )?;
            self.stats.iterations.push(iterations);
            for (pred, tuple, ivs) in collected.iter() {
                seed.merge(pred, tuple.clone(), ivs);
            }
        }
        self.now = t;
        if let Some(s) = advance_span.as_mut() {
            s.add("pending", pending_count as u64);
            s.add("seed_tuples", seed_tuples as u64);
        }
        let latency = started.elapsed();
        self.stats.derived_tuples += self
            .total
            .tuple_count()
            .saturating_sub(tuples_before + pending_count);
        self.stats.elapsed += latency;
        self.stats.total_components = self.total.component_count();

        // Tick-latency histogram and watermark-lag gauge: always cheap
        // enough to record (atomics), named under `session.*` in the global
        // registry.
        let registry = chronolog_obs::Registry::global();
        registry
            .histogram("session.advance_latency_us")
            .record(latency.as_micros() as u64);
        registry.counter("session.advances").inc();
        registry
            .counter("session.facts_submitted")
            .add(pending_count as u64);
        registry
            .gauge("session.watermark_advance")
            .set((t.to_f64() - from.to_f64()) as i64);
        if let Some(tracer) = &self.reasoner.config().tracer {
            tracer.emit(
                "advance",
                vec![
                    ("from", chronolog_obs::Json::from(format!("{from}"))),
                    ("to", chronolog_obs::Json::from(format!("{t}"))),
                    ("pending", chronolog_obs::Json::from(pending_count)),
                    ("seed_tuples", chronolog_obs::Json::from(seed_tuples)),
                    (
                        "latency_us",
                        chronolog_obs::Json::from(latency.as_micros() as u64),
                    ),
                ],
            );
        }
        Ok(())
    }
}

/// The maximal temporal look-back of any body literal: how far into the
/// past a single rule application can reach. Errors on future operators,
/// head operators, and unbounded windows (outside the session fragment).
fn program_reach(program: &Program) -> Result<Rational> {
    fn chain_reach(m: &MetricAtom) -> Result<Rational> {
        match m {
            MetricAtom::Top | MetricAtom::Bottom => Ok(Rational::ZERO),
            MetricAtom::Rel(_) => Ok(Rational::ZERO),
            MetricAtom::DiamondMinus(rho, inner) | MetricAtom::BoxMinus(rho, inner) => {
                let hi = match rho.as_interval().hi() {
                    TimeBound::Finite(h) => h,
                    _ => {
                        return Err(Error::Eval(
                            "session mode requires finite operator windows".into(),
                        ))
                    }
                };
                hi.checked_add(chain_reach(inner)?).ok_or_else(|| {
                    Error::TimeOverflow("program look-back overflows the rational timeline".into())
                })
            }
            MetricAtom::DiamondPlus(..) | MetricAtom::BoxPlus(..) | MetricAtom::Until(..) => {
                Err(Error::Eval(
                    "session mode requires the forward-propagating fragment \
                     (no future operators)"
                        .into(),
                ))
            }
            MetricAtom::Since(m1, rho, m2) => {
                let hi = match rho.as_interval().hi() {
                    TimeBound::Finite(h) => h,
                    _ => {
                        return Err(Error::Eval(
                            "session mode requires finite operator windows".into(),
                        ))
                    }
                };
                hi.checked_add(chain_reach(m1)?.max(chain_reach(m2)?))
                    .ok_or_else(|| {
                        Error::TimeOverflow(
                            "program look-back overflows the rational timeline".into(),
                        )
                    })
            }
        }
    }
    let mut reach = Rational::ZERO;
    for rule in &program.rules {
        if !rule.head.ops.is_empty() {
            return Err(Error::Eval(
                "session mode does not support head operators".into(),
            ));
        }
        for lit in &rule.body {
            if let Literal::Pos(m) | Literal::Neg(m) = lit {
                reach = reach.max(chain_reach(m)?);
            }
        }
    }
    Ok(reach)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReasonerConfig;
    use crate::parser::{parse_facts, parse_program};
    use crate::Value;

    const MARGIN_RULES: &str = "isOpen(A) :- tranM(A, M).\n\
         isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
         margin(A, M) :- tranM(A, M), not boxminus isOpen(A).\n\
         changeM(A) :- tranM(A, M).\n\
         changeM(A) :- withdraw(A).\n\
         margin(A, M) :- diamondminus margin(A, M), not changeM(A).\n\
         margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), tranM(A, Y), M = X + Y.";

    fn session() -> Session {
        let program = parse_program(MARGIN_RULES).unwrap();
        Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .unwrap()
    }

    #[test]
    fn streaming_matches_batch() {
        // Stream the quickstart scenario event by event...
        let mut s = session();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(97.0)],
            9,
        ))
        .unwrap();
        s.advance_to(9).unwrap();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(3.0)],
            10,
        ))
        .unwrap();
        s.advance_to(12).unwrap();
        s.submit(Fact::at("withdraw", vec![Value::sym("acc")], 15))
            .unwrap();
        s.advance_to(20).unwrap();

        // ...and compare against the batch materialization.
        let program = parse_program(MARGIN_RULES).unwrap();
        let mut db = Database::new();
        db.extend_facts(
            &parse_facts("tranM(acc, 97.0)@9.\ntranM(acc, 3.0)@10.\nwithdraw(acc)@15.").unwrap(),
        );
        let batch = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 20))
            .unwrap()
            .materialize(&db)
            .unwrap()
            .database;
        assert_eq!(s.database().to_facts_text(), batch.to_facts_text());
    }

    #[test]
    fn derivations_below_watermark_are_final() {
        let mut s = session();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("a"), Value::num(50.0)],
            5,
        ))
        .unwrap();
        s.advance_to(8).unwrap();
        let before = s.database().to_facts_text();
        // Advancing with no new facts only extends, never rewrites.
        s.advance_to(12).unwrap();
        let after = s.database().to_facts_text();
        for line in before.lines() {
            assert!(after.contains(line), "lost fact {line}");
        }
        assert!(s
            .database()
            .holds_at("margin", &[Value::sym("a"), Value::num(50.0)], 12));
    }

    #[test]
    fn rejects_facts_at_or_before_watermark() {
        let mut s = session();
        s.advance_to(10).unwrap();
        assert!(s
            .submit(Fact::at(
                "tranM",
                vec![Value::sym("a"), Value::num(1.0)],
                10
            ))
            .is_err());
        assert!(s
            .submit(Fact::at("tranM", vec![Value::sym("a"), Value::num(1.0)], 3))
            .is_err());
        assert!(s
            .submit(Fact::at(
                "tranM",
                vec![Value::sym("a"), Value::num(1.0)],
                11
            ))
            .is_ok());
    }

    #[test]
    fn rejects_backward_advance_and_overshooting_facts() {
        let mut s = session();
        s.advance_to(10).unwrap();
        assert!(s.advance_to(5).is_err());
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("a"), Value::num(1.0)],
            20,
        ))
        .unwrap();
        // The pending fact lies beyond the advance target.
        assert!(s.advance_to(15).is_err());
        assert!(s.advance_to(25).is_ok());
    }

    #[test]
    fn rejects_programs_outside_the_fragment() {
        let future = parse_program("h(X) :- diamondplus[0, 2] p(X).").unwrap();
        assert!(Reasoner::new(future, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .is_err());
        let head_op = parse_program("boxplus[0, 2] h(X) :- p(X).").unwrap();
        assert!(Reasoner::new(head_op, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .is_err());
        let unbounded = parse_program("h(X) :- diamondminus[0, inf) p(X).").unwrap();
        assert!(Reasoner::new(unbounded, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .is_err());
    }

    #[test]
    fn rigid_genesis_facts_extend_with_the_watermark() {
        let program = parse_program("h(X) :- p(X), rate(X, R).").unwrap();
        let mut init = Database::new();
        init.extend_facts(&parse_facts("rate(a, 0.5).").unwrap());
        let mut s = Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .into_session(&init, 0)
            .unwrap();
        s.submit(Fact::over(
            "p",
            vec![Value::sym("a")],
            Interval::closed_int(3, 8),
        ))
        .unwrap();
        s.advance_to(10).unwrap();
        assert!(s.database().holds_at("h", &[Value::sym("a")], 5));
        assert!(!s.database().holds_at("h", &[Value::sym("a")], 9));
    }

    #[test]
    fn aggregates_stream_correctly() {
        let program = parse_program(
            "event(sum(S)) :- modPos(A, S).\n\
             skew(K) :- startSkew(K).\n\
             skew(K) :- diamondminus skew(K), not event(_).\n\
             skew(K) :- diamondminus skew(X), event(S), K = X + S.",
        )
        .unwrap();
        let mut init = Database::new();
        init.extend_facts(&parse_facts("startSkew(0)@0.").unwrap());
        let mut s = Reasoner::new(program.clone(), ReasonerConfig::default())
            .unwrap()
            .into_session(&init, 0)
            .unwrap();
        s.submit(Fact::at("modPos", vec![Value::sym("a"), Value::Int(5)], 2))
            .unwrap();
        s.advance_to(3).unwrap();
        assert!(s.database().holds_at("skew", &[Value::Int(5)], 3));
        s.submit(Fact::at("modPos", vec![Value::sym("b"), Value::Int(-2)], 4))
            .unwrap();
        s.advance_to(6).unwrap();
        assert!(s.database().holds_at("skew", &[Value::Int(3)], 6));
        // Batch agreement.
        let mut db = Database::new();
        db.extend_facts(
            &parse_facts("startSkew(0)@0.\nmodPos(a, 5)@2.\nmodPos(b, -2)@4.").unwrap(),
        );
        let batch = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 6))
            .unwrap()
            .materialize(&db)
            .unwrap()
            .database;
        assert_eq!(s.database().to_facts_text(), batch.to_facts_text());
    }
}
