//! The generated ETH-PERP program must survive a pretty-print → reparse
//! round trip (the paper's transparency argument presumes the program *is*
//! its text), and the dense/epoch encodings must agree on a full paper-
//! scale window.

use chronolog_core::{parse_program, Stratification};
use chronolog_perp::harness::run_datalog;
use chronolog_perp::program::{build_program, program_source, TimelineMode};
use chronolog_perp::MarketParams;

#[test]
fn program_text_roundtrips_through_the_parser() {
    for mode in [TimelineMode::DenseSeconds, TimelineMode::EventEpochs] {
        let original = build_program(&MarketParams::default(), mode).unwrap();
        let printed = original.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program must reparse: {e}\n{printed}"));
        assert_eq!(original.rules.len(), reparsed.rules.len());
        for (a, b) in original.rules.iter().zip(&reparsed.rules) {
            assert_eq!(a.head, b.head, "head of {:?}", a.label);
            assert_eq!(a.body.len(), b.body.len(), "body of {:?}", a.label);
        }
        // Identical stratification.
        let s1 = Stratification::compute(&original).unwrap();
        let s2 = Stratification::compute(&reparsed).unwrap();
        assert_eq!(s1.count(), s2.count());
    }
}

#[test]
fn program_source_is_commented_per_module() {
    let src = program_source(&MarketParams::default(), TimelineMode::DenseSeconds);
    for module in [
        "MARGIN", "POSITION", "RETURNS", "SKEW", "TDIFF", "RATE", "FRS", "INDF", "FEES",
    ] {
        assert!(src.contains(module), "missing module banner {module}");
    }
    // All 48 paper rules present: count rule terminators.
    let rules = src.lines().filter(|l| l.contains(":-")).count();
    // 48 paper rules + live init/propagate + skew/frs init rules.
    assert_eq!(rules, 52);
}

/// Full paper-scale dense/epoch agreement (a few seconds in release; the
/// debug-profile run is skipped to keep `cargo test` snappy).
#[cfg_attr(debug_assertions, ignore = "slow in debug profile; run with --release")]
#[test]
fn dense_and_epoch_agree_on_a_full_two_hour_window() {
    let config = chronolog_market::paper_intervals().remove(1); // 108 events
    let trace = chronolog_market::generate(&config);
    let params = MarketParams::default();
    let dense = run_datalog(&trace, &params, TimelineMode::DenseSeconds).unwrap();
    let epoch = run_datalog(&trace, &params, TimelineMode::EventEpochs).unwrap();
    assert_eq!(dense.run.frs, epoch.run.frs);
    assert_eq!(dense.run.trades, epoch.run.trades);
    assert_eq!(dense.run.final_skew, epoch.run.final_skew);
}
