//! A Subgraph-like query index over a ledger.
//!
//! The paper obtains its ground-truth values "by querying the Mainnet
//! Subgraph, a decentralized protocol for querying blockchain data". This
//! module plays that role: it replays the ledger through the fixed-point
//! reference engine (the on-chain arithmetic) and indexes the resulting
//! settlements and funding-rate sequence for ad-hoc queries.

use crate::log::Ledger;
use chronolog_perp::{
    AccountId, Fixed18, MarketParams, MarketRun, ReferenceEngine, TradeSettlement,
};
use std::collections::HashMap;

/// The indexed view of one market window.
pub struct SubgraphIndex {
    run: MarketRun,
    by_account: HashMap<AccountId, Vec<usize>>,
    frs_by_time: HashMap<i64, f64>,
}

impl SubgraphIndex {
    /// Replays a ledger with the fixed-point ("on-chain") arithmetic and
    /// indexes the results.
    pub fn build(ledger: &Ledger, params: MarketParams) -> SubgraphIndex {
        let trace = ledger.to_trace();
        let run = ReferenceEngine::<Fixed18>::run_trace(params, &trace);
        let mut by_account: HashMap<AccountId, Vec<usize>> = HashMap::new();
        for (i, t) in run.trades.iter().enumerate() {
            by_account.entry(t.account).or_default().push(i);
        }
        let frs_by_time = run.frs.iter().copied().collect();
        SubgraphIndex {
            run,
            by_account,
            frs_by_time,
        }
    }

    /// The full funding rate sequence `(t, F(t))`.
    pub fn funding_rate_sequence(&self) -> &[(i64, f64)] {
        &self.run.frs
    }

    /// `F(t)` right after the event at `t` (exact timestamps only).
    pub fn frs_at(&self, time: i64) -> Option<f64> {
        self.frs_by_time.get(&time).copied()
    }

    /// All settled trades in close order.
    pub fn trades(&self) -> &[TradeSettlement] {
        &self.run.trades
    }

    /// The trades of one account.
    pub fn trades_of(&self, account: AccountId) -> Vec<&TradeSettlement> {
        self.by_account
            .get(&account)
            .map(|idx| idx.iter().map(|&i| &self.run.trades[i]).collect())
            .unwrap_or_default()
    }

    /// Aggregate PnL across all trades (the house's mirror image).
    pub fn total_pnl(&self) -> f64 {
        self.run.trades.iter().map(|t| t.pnl).sum()
    }

    /// Total fees collected by the protocol.
    pub fn total_fees(&self) -> f64 {
        self.run.trades.iter().map(|t| t.fee).sum()
    }

    /// Final market skew.
    pub fn final_skew(&self) -> f64 {
        self.run.final_skew
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronolog_perp::{Event, Method, Trace};

    fn sample_ledger() -> Ledger {
        let ev = |t, acc, method, price| Event {
            time: t,
            account: AccountId(acc),
            method,
            price,
        };
        let trace = Trace {
            start_time: 0,
            end_time: 7200,
            initial_skew: 500.0,
            initial_price: 1300.0,
            events: vec![
                ev(10, 1, Method::TransferMargin { amount: 10_000.0 }, 1300.0),
                ev(20, 1, Method::ModifyPosition { size: 2.0 }, 1301.0),
                ev(50, 2, Method::TransferMargin { amount: 20_000.0 }, 1302.0),
                ev(80, 2, Method::ModifyPosition { size: -1.5 }, 1299.0),
                ev(200, 1, Method::ClosePosition, 1305.0),
                ev(300, 2, Method::ClosePosition, 1298.0),
            ],
        };
        Ledger::from_trace(&trace).unwrap()
    }

    #[test]
    fn indexes_trades_per_account() {
        let idx = SubgraphIndex::build(&sample_ledger(), MarketParams::default());
        assert_eq!(idx.trades().len(), 2);
        assert_eq!(idx.trades_of(AccountId(1)).len(), 1);
        assert_eq!(idx.trades_of(AccountId(2)).len(), 1);
        assert!(idx.trades_of(AccountId(9)).is_empty());
        // Long closed above entry: positive PnL; short closed below: positive.
        assert!(idx.trades_of(AccountId(1))[0].pnl > 0.0);
    }

    #[test]
    fn frs_lookup_by_event_time() {
        let idx = SubgraphIndex::build(&sample_ledger(), MarketParams::default());
        assert_eq!(idx.funding_rate_sequence().len(), 6);
        assert!(idx.frs_at(20).is_some());
        assert!(idx.frs_at(21).is_none());
    }

    #[test]
    fn totals_are_sums() {
        let idx = SubgraphIndex::build(&sample_ledger(), MarketParams::default());
        let s: f64 = idx.trades().iter().map(|t| t.pnl).sum();
        assert_eq!(idx.total_pnl(), s);
        assert!(idx.total_fees() > 0.0);
        // skew = 500 + 2 - 1.5 - 2 + 1.5 = 500 after both closes.
        assert!((idx.final_skew() - 500.0).abs() < 1e-9);
    }
}
