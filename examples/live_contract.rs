//! The paper's §3.1 execution model, live: the ETH-PERP program runs in a
//! long-lived reasoning [`Session`] that "continuously takes as input the
//! actions that the users send to the smart contract … and updates
//! multiple state amounts". Method calls stream in one by one; the
//! watermark advances; contract state is queryable at every step and is
//! *final* once derived (forward-propagating fragment).
//!
//! ```bash
//! cargo run --release -p chronolog-bench --example live_contract
//! ```

use chronolog_core::{Database, Fact, Reasoner, ReasonerConfig, Value};
use chronolog_market::{generate, ScenarioConfig};
use chronolog_perp::extract::{margin_at, position_at};
use chronolog_perp::program::{build_program, TimelineMode};
use chronolog_perp::{MarketParams, Method};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = MarketParams::default();
    let mut config = ScenarioConfig::new("live demo", 404, 1_665_583_200, 18, 5, 2502.85, 1290.0);
    config.duration_secs = 900;
    let trace = generate(&config);

    // Boot the contract: genesis facts at epoch 0, empty order book.
    let program = build_program(&params, TimelineMode::EventEpochs)?;
    let mut genesis = Database::new();
    genesis.assert_at("start", &[], 0);
    genesis.assert_at("startSkew", &[Value::num(trace.initial_skew)], 0);
    genesis.assert_at("startFrs", &[Value::num(0.0)], 0);
    genesis.assert_at("ts", &[Value::Int(trace.start_time)], 0);
    let mut contract =
        Reasoner::new(program, ReasonerConfig::default())?.into_session(&genesis, 0)?;

    println!(
        "contract booted at unix {}, skew {:+.2}\n",
        trace.start_time, trace.initial_skew
    );

    // Stream every on-chain interaction into the running contract.
    for (i, event) in trace.events.iter().enumerate() {
        let epoch = i as i64 + 1;
        let acc_sym = Value::sym(&event.account.to_string());
        let (label, fact) = match event.method {
            Method::TransferMargin { amount } => (
                format!("tranM({}, {amount:.2}$)", event.account),
                Fact::at("tranM", vec![acc_sym, Value::num(amount)], epoch),
            ),
            Method::Withdraw => (
                format!("withdraw({})", event.account),
                Fact::at("withdraw", vec![acc_sym], epoch),
            ),
            Method::ModifyPosition { size } => (
                format!("modPos({}, {size:+.4})", event.account),
                Fact::at("modPos", vec![acc_sym, Value::num(size)], epoch),
            ),
            Method::ClosePosition => (
                format!("closePos({})", event.account),
                Fact::at("closePos", vec![acc_sym], epoch),
            ),
        };
        contract.submit(fact)?;
        contract.submit(Fact::at("price", vec![Value::num(event.price)], epoch))?;
        contract.submit(Fact::at("ts", vec![Value::Int(event.time)], epoch))?;
        contract.advance_to(epoch)?;

        // Query the live state right after the interaction.
        let db = contract.database();
        let margin = margin_at(db, event.account, epoch);
        let position = position_at(db, event.account, epoch);
        println!(
            "t+{:>4}s  {label:<28} -> margin {}  position {}",
            event.time - trace.start_time,
            margin.map_or("-".into(), |m| format!("{m:10.2}$")),
            position.map_or("-".into(), |(s, _)| format!("{s:+.4} ETH")),
        );
    }

    println!(
        "\nwatermark {}  |  {} tuples materialized  |  cumulative reasoning {:?}",
        contract.now(),
        contract.database().tuple_count(),
        contract.stats().elapsed
    );
    Ok(())
}
