//! The procedural reference implementation of the ETH-PERP business logic —
//! our stand-in for the 3k-line Solidity contract and the Mainnet Subgraph
//! the paper validates against.
//!
//! The engine is generic over an arithmetic backend:
//! * [`f64`] — IEEE doubles with *exactly* the operation order of our
//!   DatalogMTL rules, so the declarative run must match it bit-for-bit
//!   (used to unit-prove the encoding);
//! * [`Fixed18`](crate::fixed::Fixed18) — truncating 18-decimal fixed point,
//!   the EVM's arithmetic, whose results differ from the float run by
//!   ~1e-12 — the error shape reported in Figures 4 and 5.

use crate::fixed::Fixed18;
use crate::params::MarketParams;
use crate::types::{AccountId, Event, MarketRun, Method, Trace, TradeSettlement};
use std::collections::HashMap;

/// Arithmetic backend abstraction.
pub trait Arith: Copy + std::fmt::Debug {
    /// Injects a decimal constant.
    fn of(v: f64) -> Self;
    /// Projects back to a float for reporting.
    fn to_f64(self) -> f64;
    /// Addition.
    fn add(self, o: Self) -> Self;
    /// Subtraction.
    fn sub(self, o: Self) -> Self;
    /// Multiplication.
    fn mul(self, o: Self) -> Self;
    /// Division.
    fn div(self, o: Self) -> Self;
    /// Negation.
    fn neg(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Clamp into `[-1, 1]` (rules 28–30).
    fn clamp_unit(self) -> Self;
    /// Exactly zero?
    fn is_zero(self) -> bool;
    /// `self >= 0`?
    fn is_non_negative(self) -> bool;
}

impl Arith for f64 {
    fn of(v: f64) -> f64 {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn add(self, o: f64) -> f64 {
        self + o
    }
    fn sub(self, o: f64) -> f64 {
        self - o
    }
    fn mul(self, o: f64) -> f64 {
        self * o
    }
    fn div(self, o: f64) -> f64 {
        self / o
    }
    fn neg(self) -> f64 {
        -self
    }
    fn abs(self) -> f64 {
        f64::abs(self)
    }
    #[allow(clippy::manual_clamp)] // mirrors rules 28-30 literally; NaN-free
    fn clamp_unit(self) -> f64 {
        if self > 1.0 {
            1.0
        } else if self < -1.0 {
            -1.0
        } else {
            self
        }
    }
    fn is_zero(self) -> bool {
        self == 0.0
    }
    fn is_non_negative(self) -> bool {
        self >= 0.0
    }
}

impl Arith for Fixed18 {
    fn of(v: f64) -> Fixed18 {
        Fixed18::from_f64(v)
    }
    fn to_f64(self) -> f64 {
        Fixed18::to_f64(self)
    }
    fn add(self, o: Fixed18) -> Fixed18 {
        self + o
    }
    fn sub(self, o: Fixed18) -> Fixed18 {
        self - o
    }
    fn mul(self, o: Fixed18) -> Fixed18 {
        Fixed18::mul(self, o)
    }
    fn div(self, o: Fixed18) -> Fixed18 {
        Fixed18::div(self, o)
    }
    fn neg(self) -> Fixed18 {
        -self
    }
    fn abs(self) -> Fixed18 {
        Fixed18::abs(self)
    }
    fn clamp_unit(self) -> Fixed18 {
        Fixed18::clamp(self, -Fixed18::ONE, Fixed18::ONE)
    }
    fn is_zero(self) -> bool {
        Fixed18::is_zero(self)
    }
    fn is_non_negative(self) -> bool {
        self.signum() >= 0
    }
}

/// Per-account state (the `margin`, `position`, `fee`, `indF` predicates).
#[derive(Clone, Copy, Debug)]
struct AccountState<A: Arith> {
    margin: A,
    size: A,
    notional: A,
    fees: A,
    /// `(PF, AF)` of the `indF` predicate: the funding-sequence value at the
    /// last position change and the funding accrued up to it.
    ind_f: Option<(A, A)>,
}

/// The reference ETH-PERP market engine.
pub struct ReferenceEngine<A: Arith> {
    params: MarketParams,
    skew: A,
    frs: A,
    last_event_time: i64,
    accounts: HashMap<AccountId, AccountState<A>>,
    run: MarketRun,
}

impl<A: Arith> ReferenceEngine<A> {
    /// Opens the market window with the given initial skew at `start_time`.
    pub fn new(params: MarketParams, initial_skew: f64, start_time: i64) -> Self {
        ReferenceEngine {
            params,
            skew: A::of(initial_skew),
            frs: A::of(0.0),
            last_event_time: start_time,
            accounts: HashMap::new(),
            run: MarketRun::default(),
        }
    }

    /// Current skew.
    pub fn skew(&self) -> f64 {
        self.skew.to_f64()
    }

    /// Current funding-rate-sequence value `F(t)`.
    pub fn frs(&self) -> f64 {
        self.frs.to_f64()
    }

    /// Margin of an account, if open.
    pub fn margin(&self, account: AccountId) -> Option<f64> {
        self.accounts.get(&account).map(|a| a.margin.to_f64())
    }

    /// Position `(size, notional)` of an account, if open.
    pub fn position(&self, account: AccountId) -> Option<(f64, f64)> {
        self.accounts
            .get(&account)
            .map(|a| (a.size.to_f64(), a.notional.to_f64()))
    }

    /// Applies one event; returns the settlement when it closes a trade.
    ///
    /// The update order per timestamp matches the stratification of the
    /// DatalogMTL program: funding (rules 23–33, using the *previous* skew —
    /// `⊟skew` in rule 27), then the skew update (rule 22), then fees with
    /// the *post-event* skew (rules 40–47), then positions and margins.
    pub fn apply(&mut self, event: &Event) -> Option<TradeSettlement> {
        let p = A::of(event.price);
        let t = event.time;

        // --- F-RATE: accrue unrecorded funding since the last event. ---
        // Rule 27: I = -K * P / skew_scale  (K = skew at t-1, P = price at t)
        let i_raw = self
            .skew
            .neg()
            .mul(p)
            .div(A::of(self.params.skew_scale_notional));
        // Rules 28-30: clamp.
        let i = i_raw.clamp_unit();
        // Rule 26: Diff = seconds since last event.
        let dt = A::of((t - self.last_event_time) as f64);
        // Rule 31: UF = I * P * T * i_max / 86400 (left-associated).
        let uf = i
            .mul(p)
            .mul(dt)
            .mul(A::of(self.params.max_funding_rate))
            .div(A::of(self.params.funding_period_secs));
        // Rule 33: F = F_prev + UF.
        self.frs = self.frs.add(uf);
        self.last_event_time = t;

        // --- Skew update (rules 17-22). ---
        let order_size: Option<A> = match event.method {
            Method::ModifyPosition { size } => Some(A::of(size)),
            Method::ClosePosition => {
                let acc = self.accounts.get(&event.account);
                Some(acc.map(|a| a.size.neg()).unwrap_or_else(|| A::of(0.0)))
            }
            Method::TransferMargin { .. } | Method::Withdraw => None,
        };
        if let Some(s) = order_size {
            // Rule 22: K = X + S.
            self.skew = self.skew.add(s);
        }

        // --- Per-method state updates. ---
        let settlement = match event.method {
            Method::TransferMargin { amount } => {
                let amount = A::of(amount);
                match self.accounts.get_mut(&event.account) {
                    // Rule 8: later deposit.
                    Some(acc) => acc.margin = acc.margin.add(amount),
                    // Rules 3, 10, 38: first deposit initializes everything.
                    None => {
                        self.accounts.insert(
                            event.account,
                            AccountState {
                                margin: amount,
                                size: A::of(0.0),
                                notional: A::of(0.0),
                                fees: A::of(0.0),
                                ind_f: None,
                            },
                        );
                    }
                }
                None
            }
            Method::Withdraw => {
                // Rules 2/4: the account ceases to exist.
                self.accounts.remove(&event.account);
                None
            }
            Method::ModifyPosition { size } => {
                let s = A::of(size);
                let acc = self
                    .accounts
                    .get_mut(&event.account)
                    .expect("validated trace: margin before modPos");
                // Rules 40-43: fee with post-event skew, increasing pays taker.
                let phi = A::of(fee_rate_for(
                    &self.params,
                    self.skew.is_non_negative(),
                    size > 0.0,
                ));
                acc.fees = acc.fees.add(s.mul(p).mul(phi).abs());
                // Rules 34/36: individual funding checkpoint on the
                // pre-order size (⊟position).
                acc.ind_f = Some(match acc.ind_f {
                    None => (self.frs, A::of(0.0)),
                    Some(_) if acc.size.is_zero() => (self.frs, A::of(0.0)),
                    Some((pf, paf)) => (self.frs, paf.add(acc.size.mul(self.frs.sub(pf)))),
                });
                // Rule 14: S = X + Y, N = Z + X * P.
                acc.size = acc.size.add(s);
                acc.notional = acc.notional.add(s.mul(p));
                None
            }
            Method::ClosePosition => {
                let frs = self.frs;
                let skew_non_negative = self.skew.is_non_negative();
                let acc = self
                    .accounts
                    .get_mut(&event.account)
                    .expect("validated trace: margin before closePos");
                let size = acc.size;
                // Rule 16: PL = S * P - N.
                let pnl = size.mul(p).sub(acc.notional);
                // Rules 44-47: closing reverses the position (Δq = -S).
                let phi = A::of(fee_rate_for(
                    &self.params,
                    skew_non_negative,
                    size.neg().to_f64() > 0.0,
                ));
                let final_fee = acc.fees.add(size.mul(p).mul(phi).abs());
                // Rule 37: IF = AF + S * (F - PF).
                let (pf, af) = acc.ind_f.expect("validated trace: position was opened");
                let funding = af.add(size.mul(frs.sub(pf)));
                // Rule 9: M = X + PL - C + IF.
                acc.margin = acc.margin.add(pnl).sub(final_fee).add(funding);
                // Rules 15/48: reset position and fee accumulator.
                acc.size = A::of(0.0);
                acc.notional = A::of(0.0);
                acc.fees = A::of(0.0);
                acc.ind_f = None;
                Some(TradeSettlement {
                    account: event.account,
                    time: t,
                    pnl: pnl.to_f64(),
                    fee: final_fee.to_f64(),
                    funding: funding.to_f64(),
                })
            }
        };

        self.run.frs.push((t, self.frs.to_f64()));
        if let Some(s) = settlement {
            self.run.trades.push(s);
        }
        self.run.final_skew = self.skew.to_f64();
        settlement
    }

    /// Replays a whole trace, returning the observable run.
    pub fn run_trace(params: MarketParams, trace: &Trace) -> MarketRun {
        let mut engine = Self::new(params, trace.initial_skew, trace.start_time);
        for event in &trace.events {
            engine.apply(event);
        }
        engine.run
    }
}

/// Rate choice shared by modPos and closePos: skew-increasing pays taker.
fn fee_rate_for(params: &MarketParams, skew_non_negative: bool, dq_positive: bool) -> f64 {
    if skew_non_negative == dq_positive {
        params.taker_fee
    } else {
        params.maker_fee
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: i64, acc: u32, m: Method, price: f64) -> Event {
        Event {
            time: t,
            account: AccountId(acc),
            method: m,
            price,
        }
    }

    fn params() -> MarketParams {
        MarketParams::default()
    }

    #[test]
    fn example_3_1_margin_deposit() {
        // margin(123abc, 97)@d1, tranM(123abc, 3)@d2 -> margin 100.
        let mut e = ReferenceEngine::<f64>::new(params(), 0.0, 0);
        e.apply(&ev(10, 1, Method::TransferMargin { amount: 97.0 }, 1500.0));
        e.apply(&ev(20, 1, Method::TransferMargin { amount: 3.0 }, 1500.0));
        assert_eq!(e.margin(AccountId(1)), Some(100.0));
    }

    #[test]
    fn example_3_2_position_initialization() {
        let mut e = ReferenceEngine::<f64>::new(params(), 0.0, 0);
        e.apply(&ev(10, 1, Method::TransferMargin { amount: 60.0 }, 70.0));
        assert_eq!(e.position(AccountId(1)), Some((0.0, 0.0)));
        e.apply(&ev(30, 1, Method::ModifyPosition { size: 0.4 }, 70.0));
        let (s, n) = e.position(AccountId(1)).unwrap();
        assert_eq!(s, 0.4);
        assert!((n - 28.0).abs() < 1e-12); // notional = 0.4 * 70$
    }

    #[test]
    fn example_3_3_pnl() {
        // position(0.7, 39$), price 47$, close -> PNL = 0.7*47 - 39 = -6.1.
        let mut e = ReferenceEngine::<f64>::new(params(), 0.0, 0);
        e.apply(&ev(
            10,
            1,
            Method::TransferMargin { amount: 100.0 },
            55.714285714285715,
        )); // 39/0.7
        e.apply(&ev(
            20,
            1,
            Method::ModifyPosition { size: 0.7 },
            55.714285714285715,
        ));
        let s = e
            .apply(&ev(30, 1, Method::ClosePosition, 47.0))
            .expect("settlement");
        assert!(
            (s.pnl - (0.7 * 47.0 - 39.0)).abs() < 1e-12,
            "pnl = {}",
            s.pnl
        );
    }

    #[test]
    fn example_3_6_fee_on_long_order_with_positive_skew() {
        // skew 1342.2, price 1200, modPos +0.02: rate 0.0035 -> fee 0.084.
        let mut e = ReferenceEngine::<f64>::new(params(), 1342.2, 0);
        e.apply(&ev(
            10,
            1,
            Method::TransferMargin { amount: 1000.0 },
            1200.0,
        ));
        e.apply(&ev(20, 1, Method::ModifyPosition { size: 0.02 }, 1200.0));
        let acc = e.accounts[&AccountId(1)];
        assert!(
            (acc.fees.to_f64() - 0.084).abs() < 1e-12,
            "fee = {:?}",
            acc.fees
        );
    }

    #[test]
    fn example_3_4_funding_rate_sequence() {
        // Market opens at t0; A opens q_a at t1, B interacts at t2, A closes
        // at t4. FRS updated at t1, t2, t4.
        let p = 1500.0;
        let mut e = ReferenceEngine::<f64>::new(params(), 0.0, 0);
        e.apply(&ev(100, 1, Method::TransferMargin { amount: 1e6 }, p)); // F(t1)
        e.apply(&ev(200, 1, Method::ModifyPosition { size: 10.0 }, p));
        e.apply(&ev(300, 2, Method::TransferMargin { amount: 1e6 }, p)); // B interacts
        let s = e
            .apply(&ev(500, 1, Method::ClosePosition, p))
            .expect("settlement");
        // Before t=200 the skew is 0 -> zero funding. After the long opens,
        // skew>0 -> longs pay -> funding negative for the long.
        assert!(s.funding < 0.0, "funding = {}", s.funding);
        assert_eq!(e.run.frs.len(), 4);
        // Manual recomputation of the cumulative FRS:
        let params = params();
        let i1 = params.instantaneous_funding_rate(10.0, p);
        // Zero-skew before t=200 contributes nothing; from t=200 the skew is
        // 10, so F accrues i1*p per second over [200, 300] and [300, 500].
        let expected_f_t4 = i1 * p * (300.0 - 200.0) + i1 * p * (500.0 - 300.0);
        let f_t4 = e.run.frs.last().unwrap().1;
        assert!(
            (f_t4 - expected_f_t4).abs() < 1e-15,
            "{f_t4} vs {expected_f_t4}"
        );
        // Example 3.4: IF_A = q_a (F(t4) - F(t1)); F(t1) = 0 here.
        assert!((s.funding - 10.0 * f_t4).abs() < 1e-12);
    }

    #[test]
    fn example_3_5_funding_with_midway_modification() {
        let p = 1500.0;
        let par = params();
        let mut e = ReferenceEngine::<f64>::new(par, 0.0, 0);
        e.apply(&ev(100, 1, Method::TransferMargin { amount: 1e6 }, p));
        e.apply(&ev(200, 1, Method::ModifyPosition { size: 10.0 }, p)); // open q_a
        e.apply(&ev(400, 1, Method::ModifyPosition { size: 5.0 }, p)); // +s at t3
        let s = e
            .apply(&ev(700, 1, Method::ClosePosition, p))
            .expect("settlement");
        // IF = q_a (F(t3) - F(t1)) + (q_a + s)(F(t4) - F(t3)).
        let f = &e.run.frs;
        let f_t1 = f[1].1;
        let f_t3 = f[2].1;
        let f_t4 = f[3].1;
        let expected = 10.0 * (f_t3 - f_t1) + 15.0 * (f_t4 - f_t3);
        assert!(
            (s.funding - expected).abs() < 1e-12,
            "{} vs {expected}",
            s.funding
        );
    }

    #[test]
    fn close_fee_uses_reversed_side() {
        // Long position, skew positive after close-order applied:
        // closing a long reduces the skew -> maker rate.
        let par = params();
        let mut e = ReferenceEngine::<f64>::new(par, 100.0, 0);
        e.apply(&ev(10, 1, Method::TransferMargin { amount: 1e6 }, 1000.0));
        e.apply(&ev(20, 1, Method::ModifyPosition { size: 2.0 }, 1000.0));
        let s = e.apply(&ev(30, 1, Method::ClosePosition, 1000.0)).unwrap();
        let open_fee = (2.0f64 * 1000.0 * par.taker_fee).abs(); // increased skew
        let close_fee = (2.0f64 * 1000.0 * par.maker_fee).abs(); // reduced skew
        assert!(
            (s.fee - (open_fee + close_fee)).abs() < 1e-12,
            "fee = {}",
            s.fee
        );
    }

    #[test]
    fn margin_settles_pnl_fee_funding() {
        let par = params();
        let mut e = ReferenceEngine::<f64>::new(par, 0.0, 0);
        e.apply(&ev(10, 1, Method::TransferMargin { amount: 1000.0 }, 100.0));
        e.apply(&ev(20, 1, Method::ModifyPosition { size: 1.0 }, 100.0));
        let s = e.apply(&ev(30, 1, Method::ClosePosition, 110.0)).unwrap();
        let m = e.margin(AccountId(1)).unwrap();
        assert!((m - (1000.0 + s.pnl - s.fee + s.funding)).abs() < 1e-12);
        assert!(s.pnl > 9.99 && s.pnl < 10.01); // 1.0 * (110 - 100)
    }

    #[test]
    fn withdraw_removes_account() {
        let mut e = ReferenceEngine::<f64>::new(params(), 0.0, 0);
        e.apply(&ev(10, 1, Method::TransferMargin { amount: 50.0 }, 100.0));
        e.apply(&ev(20, 1, Method::Withdraw, 100.0));
        assert_eq!(e.margin(AccountId(1)), None);
        // Re-opening initializes from scratch.
        e.apply(&ev(30, 1, Method::TransferMargin { amount: 7.0 }, 100.0));
        assert_eq!(e.margin(AccountId(1)), Some(7.0));
    }

    #[test]
    fn fixed18_backend_differs_from_f64_by_dust() {
        let par = params();
        let trace = Trace {
            start_time: 0,
            end_time: 7200,
            initial_skew: -2445.98,
            initial_price: 1362.5,
            events: vec![
                ev(10, 1, Method::TransferMargin { amount: 5000.0 }, 1362.5),
                ev(25, 1, Method::ModifyPosition { size: 1.5 }, 1363.0),
                ev(80, 2, Method::TransferMargin { amount: 9000.0 }, 1364.0),
                ev(120, 2, Method::ModifyPosition { size: -2.25 }, 1361.0),
                ev(600, 1, Method::ClosePosition, 1359.5),
                ev(900, 2, Method::ClosePosition, 1365.25),
            ],
        };
        trace.validate().unwrap();
        let float_run = ReferenceEngine::<f64>::run_trace(par, &trace);
        let fixed_run = ReferenceEngine::<Fixed18>::run_trace(par, &trace);
        assert_eq!(float_run.trades.len(), 2);
        assert_eq!(fixed_run.trades.len(), 2);
        for (a, b) in float_run.trades.iter().zip(&fixed_run.trades) {
            // Same trade, both non-trivial...
            assert_eq!(a.account, b.account);
            // ...agreeing to ~1e-9 relative (the paper's "errors of order
            // 1e-12" on per-trade magnitudes).
            assert!((a.pnl - b.pnl).abs() < 1e-6, "pnl {} vs {}", a.pnl, b.pnl);
            assert!((a.fee - b.fee).abs() < 1e-6);
            assert!((a.funding - b.funding).abs() < 1e-6);
        }
        // The FRS sequences agree closely but not exactly.
        for ((_, x), (_, y)) in float_run.frs.iter().zip(&fixed_run.frs) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }
}
