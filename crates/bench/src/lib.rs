//! Shared reporting helpers for the reproduction harness and benches.

#![warn(missing_docs)]

pub mod microbench;

use chronolog_market::{paper_intervals, ScenarioConfig};
use chronolog_perp::Trace;

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// The three Figure-3 scenarios with their generated traces.
pub fn paper_traces() -> Vec<(ScenarioConfig, Trace)> {
    paper_intervals()
        .into_iter()
        .map(|c| {
            let t = chronolog_market::generate(&c);
            (c, t)
        })
        .collect()
}

/// Formats a float in the paper's scientific style (e.g. `3.545513e-15`).
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.6e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["Date", "# events"],
            &[
                vec!["2022-09-27".into(), "267".into()],
                vec!["2022-10-07".into(), "108".into()],
            ],
        );
        assert!(t.contains("| 2022-09-27 |"));
        assert!(t.contains("267"));
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    fn sci_format() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(3.545513e-15).starts_with("3.545513e-15"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn paper_traces_generate() {
        let traces = paper_traces();
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].1.event_count(), 267);
    }
}
