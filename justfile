# Developer entry points. Everything here is also what CI runs — keep the
# two in sync (.github/workflows/ci.yml).

# Run the full gate: format, lints, build, tests.
check: fmt-check clippy test

# Build the workspace (debug).
build:
    cargo build --workspace

# Build optimized binaries (the repro numbers are only meaningful here).
release:
    cargo build --release --workspace

# Run every test in the workspace.
test:
    cargo test --workspace

# Release-profile slow suite: the netting churn replays in
# crates/cli/tests/repair_corpus.rs and the release-gated ETH-PERP
# equivalence tests (cfg_attr(debug_assertions, ignore)). CI mirrors this
# in the "Slow release suite" step.
test-slow:
    cargo test --release -p chronolog-cli --test repair_corpus
    cargo test --release -p chronolog-perp

# Lints are errors.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

fmt:
    cargo fmt

fmt-check:
    cargo fmt --check

# Regenerate every paper table/figure (slow: includes dense-timeline runs).
repro:
    cargo run --release -p chronolog-bench --bin repro -- --table all

# Machine-readable §4.2 perf report.
repro-json out="perf.json":
    cargo run --release -p chronolog-bench --bin repro -- --table perf --json {{out}}

# Micro-benchmarks (in-tree harness; pass a substring filter after --).
bench *ARGS:
    cargo bench --workspace {{ARGS}}

# Engine micro-benchmarks with a machine-readable report (BENCH_engine.json).
bench-engine out="BENCH_engine.json":
    cargo bench -p chronolog-bench --bench engine_micro -- --json {{justfile_directory()}}/{{out}}
