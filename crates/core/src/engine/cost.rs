//! Cardinality estimation for the physical planner.
//!
//! Estimates are derived from *live* relation sizes and per-position
//! distinct counts. Columnar relations maintain distinct interned-id
//! (semantic-class) counts per column as tuples are inserted, so the
//! planner gets exact distincts for free; row relations only expose a
//! distinct count once a value index for that position exists. Reads are
//! strictly read-only: the planner never forces an index build, it only
//! consults whatever the storage layer and evaluation paths have already
//! built. Unknown quantities fall back to conservative defaults, so a cold
//! start plans like the old interpretive order and only deviates once the
//! statistics justify it.

use crate::database::Database;
use crate::symbol::Symbol;
use std::collections::HashSet;

/// Assumed distinct values per argument position when the storage layer
/// has no count yet (row layout before any value index). Deliberately
/// small: it keeps the estimated selectivity
/// of a bound position modest, so cold plans only reorder on large size
/// differences (which are reliable even without distinct counts).
const DEFAULT_DISTINCT: usize = 8;

/// Live cardinalities the planner reads when costing a rule body.
pub(crate) trait CardinalitySource {
    /// Number of distinct tuples of `pred` in the full materialization.
    fn relation_size(&self, pred: Symbol) -> usize;
    /// Number of distinct tuples of `pred` in the current delta.
    fn delta_size(&self, pred: Symbol) -> usize;
    /// Distinct values at argument position `pos`, when already known:
    /// columnar relations track per-column distinct semantic ids on
    /// insert, row relations report once a value index has been built.
    fn distinct_at(&self, pred: Symbol, pos: usize) -> Option<usize>;
}

/// Cardinalities read from the live total/delta databases.
pub(crate) struct DbCardinalities<'a> {
    pub total: &'a Database,
    pub delta: Option<&'a Database>,
    /// Magic (demand) predicates of a goal-driven sub-program. Their size
    /// estimates are floored at one tuple: demand relations legitimately
    /// start empty (the seed may not have landed, derived demand spreads
    /// per fixpoint iteration), and a hard zero would make every guarded
    /// pipeline estimate collapse — the planner would stop
    /// distinguishing access paths exactly where the guard placement
    /// matters most.
    pub magic_floor: &'a HashSet<Symbol>,
}

impl CardinalitySource for DbCardinalities<'_> {
    // Sizes are *live* tuple counts: entries emptied by `Relation::remove`
    // keep their dense ids (and are still walked by scans) but no longer
    // count toward cardinality, so post-repair replans estimate against
    // survivors instead of phantom rows.
    fn relation_size(&self, pred: Symbol) -> usize {
        let n = self.total.relation(pred).map_or(0, |r| r.live_len());
        if n == 0 && self.magic_floor.contains(&pred) {
            1
        } else {
            n
        }
    }

    fn delta_size(&self, pred: Symbol) -> usize {
        self.delta
            .and_then(|d| d.relation(pred))
            .map_or(0, |r| r.live_len())
    }

    fn distinct_at(&self, pred: Symbol, pos: usize) -> Option<usize> {
        self.total
            .relation(pred)
            .and_then(|r| r.distinct_count(pos))
    }
}

/// A source that knows nothing: every estimate degenerates to the default,
/// so plans keep the original literal order. The naive oracle plans with
/// this (it has no cost model and must stay maximally obvious).
pub(crate) struct NoCardinalities;

impl CardinalitySource for NoCardinalities {
    fn relation_size(&self, _pred: Symbol) -> usize {
        0
    }

    fn delta_size(&self, _pred: Symbol) -> usize {
        0
    }

    fn distinct_at(&self, _pred: Symbol, _pos: usize) -> Option<usize> {
        None
    }
}

/// Estimated rows a lookup of `pred` produces per outer binding, given
/// `size` stored tuples and the set of argument positions that are ground
/// at lookup time. The most selective known position wins, mirroring
/// [`Relation::probe`](crate::database::Relation)'s smallest-bucket choice.
pub(crate) fn estimate_rows(
    cards: &dyn CardinalitySource,
    pred: Symbol,
    size: usize,
    bound_positions: &[usize],
) -> u64 {
    if size == 0 {
        return 0;
    }
    if bound_positions.is_empty() {
        return size as u64;
    }
    let best_distinct = bound_positions
        .iter()
        .map(|&pos| {
            cards
                .distinct_at(pred, pos)
                .unwrap_or(DEFAULT_DISTINCT)
                .clamp(1, size)
        })
        .max()
        .unwrap_or(1);
    (size as u64).div_ceil(best_distinct as u64)
}

/// Buckets a size into a coarse magnitude class for plan fingerprints:
/// a plan is only invalidated when a relation crosses a power-of-two
/// boundary, not on every single-tuple delta change.
pub(crate) fn size_bucket(size: usize) -> u64 {
    (size + 1).next_power_of_two() as u64
}
