//! # chronolog-market
//!
//! Synthetic market activity for the ETH-PERP reproduction: a GBM price
//! oracle and a scenario generator that fabricates valid trader event
//! streams matching the aggregate statistics of the paper's Figure 3
//! (events / trades / initial skew per 2-hour window).
//!
//! This crate substitutes for the Optimism-Mainnet traces the paper
//! replays; see DESIGN.md for why the substitution preserves the
//! experiments' meaning.

#![warn(missing_docs)]

pub mod price;
pub mod scenario;
pub mod stats;

pub use price::GbmPrice;
pub use scenario::{generate, paper_intervals, ScenarioConfig};
pub use stats::TraceStats;
