//! The parser must never panic: arbitrary byte soup, token soup, and
//! mutations of valid programs all either parse or return `Error::Parse`.

use chronolog_core::parse_source;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_strings_never_panic(s in "\\PC*") {
        let _ = parse_source(&s);
    }

    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("p".to_string()),
            Just("X".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just(",".to_string()),
            Just(".".to_string()),
            Just(":-".to_string()),
            Just("@".to_string()),
            Just("not".to_string()),
            Just("boxminus".to_string()),
            Just("diamondminus".to_string()),
            Just("since".to_string()),
            Just("sum".to_string()),
            Just("=".to_string()),
            Just("+".to_string()),
            Just("-".to_string()),
            Just("1".to_string()),
            Just("2.5".to_string()),
            Just("inf".to_string()),
            Just("_".to_string()),
        ],
        0..24,
    )) {
        let src = tokens.join(" ");
        let _ = parse_source(&src);
    }

    /// Deleting a random chunk from a valid program must not panic.
    #[test]
    fn truncated_valid_programs_never_panic(start in 0usize..300, len in 0usize..80) {
        let valid = "margin(A, M) :- diamondminus margin(A, X), tranM(A, Y), M = X + Y.\n\
                     event(sum(S)) :- modPos(A, S).\n\
                     h(T) :- p(A)@T, since[0, 5](q(A), r(A)).\n\
                     price(1362.5)@[100, 200].";
        let bytes = valid.as_bytes();
        let start = start.min(bytes.len());
        let end = (start + len).min(bytes.len());
        let mut mutated = Vec::new();
        mutated.extend_from_slice(&bytes[..start]);
        mutated.extend_from_slice(&bytes[end..]);
        if let Ok(s) = String::from_utf8(mutated) {
            let _ = parse_source(&s);
        }
    }
}

#[test]
fn error_messages_carry_positions() {
    for bad in [
        "p(X) :- q(X",
        "p(X) q(X).",
        "p(X) :- boxminus[1, -2] q(X).",
        "p(X) :- .",
        "@5.",
        "p('unterminated).",
    ] {
        match parse_source(bad) {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("parse error at") || msg.contains("error"),
                    "uninformative error for `{bad}`: {msg}"
                );
            }
            Ok(_) => panic!("`{bad}` should not parse"),
        }
    }
}
