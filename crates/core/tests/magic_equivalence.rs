//! Magic-sets rewrite vs full materialization, differentially tested the
//! same way `plan_equivalence` pins reordering: over seeded random
//! programs (the `random_programs.rs` generator shapes — random operator
//! chains, joins, recursion, negation) every query answer must be
//! byte-identical between [`chronolog_core::Reasoner::query`] (the
//! demand-transformed path) and full materialization followed by
//! [`chronolog_core::Database::query`], across thread counts {1, 4}.
//!
//! The netting corpus program additionally pins the *point* of the
//! transformation: a bound-counterparty exposure query must touch < 25%
//! of the tuples full materialization derives.

use chronolog_core::rewrite::Query;
use chronolog_core::{
    parse_query, parse_source, Database, Interval, Reasoner, ReasonerConfig, Value,
};
use chronolog_obs::SmallRng;

const T_MIN: i64 = 0;
const T_MAX: i64 = 18;

const IDB: [(&str, usize); 4] = [("p0", 1), ("p1", 2), ("p2", 1), ("p3", 2)];
const EDB: [(&str, usize); 2] = [("e1", 1), ("e2", 2)];

fn source_pred(src: usize) -> (&'static str, usize) {
    match src {
        0 | 1 => EDB[src],
        _ => IDB[src - 2],
    }
}

/// One random rule in concrete syntax (same shapes and constraints as
/// `random_programs.rs`: head variables bound by the first atom, positive
/// recursion same-or-lower, negation strictly lower, so every program is
/// safe and stratifiable by construction).
fn gen_rule(rng: &mut SmallRng) -> Option<String> {
    let head = rng.gen_range_usize(0, IDB.len());
    let (head_name, head_arity) = IDB[head];
    let head_args = if head_arity == 1 { "X" } else { "X, Y" };
    let body_len = rng.gen_range_usize(1, 4);
    let wlo = rng.gen_range_i64(0, 3);
    let whi = wlo + rng.gen_range_i64(0, 3);
    let shift = rng.gen_range_i64(1, 3);
    let mut body = Vec::new();
    for i in 0..body_len {
        let mut src = rng.gen_range_usize(0, 6);
        if src >= 2 && (src - 2) > head {
            src = head + 2;
        }
        let (name, arity) = source_pred(src);
        let args = match (i, arity, head_arity) {
            (0, 1, 1) => "X",
            (0, 1, _) => return None,
            (0, _, 1) => "X, _",
            (0, _, _) => "X, Y",
            (_, 1, _) => "X",
            (_, _, _) => "X, _",
        };
        let atom = format!("{name}({args})");
        let wrapped = match rng.gen_range_i64(0, 5) {
            0 => atom,
            1 => format!("diamondminus[{wlo}, {whi}] {atom}"),
            2 => format!("boxminus[{shift}, {shift}] {atom}"),
            3 => format!("diamondplus[{wlo}, {whi}] {atom}"),
            _ => format!("boxplus[{shift}, {shift}] {atom}"),
        };
        body.push(wrapped);
    }
    if rng.gen_bool(0.5) {
        let nsrc = rng.gen_range_usize(0, 6);
        if nsrc < 2 || (nsrc - 2) < head {
            let (name, arity) = source_pred(nsrc);
            let args = if arity == 1 { "X" } else { "X, _" };
            body.push(format!("not {name}({args})"));
        }
    }
    Some(format!("{head_name}({head_args}) :- {}.", body.join(", ")))
}

fn gen_program(rng: &mut SmallRng) -> String {
    let n = rng.gen_range_usize(1, 6);
    (0..n)
        .filter_map(|_| gen_rule(rng))
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_db(rng: &mut SmallRng) -> Database {
    let mut db = Database::new();
    let n = rng.gen_range_usize(0, 10);
    for _ in 0..n {
        let e = rng.gen_range_usize(0, 2);
        let (name, arity) = EDB[e];
        let x = Value::Int(rng.gen_range_i64(0, 3));
        let args: Vec<Value> = if arity == 1 {
            vec![x]
        } else {
            vec![x, Value::Int(rng.gen_range_i64(0, 3))]
        };
        db.assert_at(name, &args, rng.gen_range_i64(T_MIN, T_MAX + 1));
    }
    db
}

/// A random point query over an IDB predicate: maybe-bound first
/// argument, maybe a window.
fn gen_query(rng: &mut SmallRng) -> Query {
    let (name, arity) = IDB[rng.gen_range_usize(0, IDB.len())];
    let first = if rng.gen_bool(0.6) {
        rng.gen_range_i64(0, 3).to_string()
    } else {
        "A".to_string()
    };
    let args = if arity == 1 {
        first
    } else {
        format!("{first}, B")
    };
    let text = match rng.gen_range_i64(0, 3) {
        0 => format!("{name}({args})"),
        1 => format!("{name}({args})@{}", rng.gen_range_i64(T_MIN, T_MAX + 1)),
        _ => {
            let lo = rng.gen_range_i64(T_MIN, T_MAX);
            let hi = rng.gen_range_i64(lo, T_MAX + 1);
            format!("{name}({args})@[{lo},{hi}]")
        }
    };
    parse_query(&text).expect("generated query parses")
}

fn render(answers: &[(chronolog_core::Tuple, chronolog_core::IntervalSet)]) -> String {
    let mut lines: Vec<String> = answers
        .iter()
        .flat_map(|(tuple, ivs)| {
            let args = tuple
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            ivs.iter().map(move |iv| format!("({args})@{iv}"))
        })
        .collect();
    lines.sort();
    lines.join("\n")
}

fn full_answers(
    program: &chronolog_core::Program,
    db: &Database,
    query: &Query,
    threads: usize,
) -> String {
    let reasoner = Reasoner::new(
        program.clone(),
        ReasonerConfig::default()
            .with_horizon(T_MIN, T_MAX)
            .with_threads(threads),
    )
    .unwrap();
    let full = reasoner.materialize(db).unwrap();
    let mut answers = full.database.query(&query.atom, query.window.as_ref());
    answers.sort_by(|a, b| a.0.cmp(&b.0));
    render(&answers)
}

fn magic_answers(
    program: &chronolog_core::Program,
    db: &Database,
    query: &Query,
    threads: usize,
) -> (String, chronolog_core::MagicStats) {
    let reasoner = Reasoner::new(
        program.clone(),
        ReasonerConfig::default()
            .with_horizon(T_MIN, T_MAX)
            .with_threads(threads),
    )
    .unwrap();
    let outcome = reasoner.query(db, query).unwrap();
    (render(&outcome.answers), outcome.stats.magic)
}

/// ≥ 48 seeded (program, query) cases: magic answers byte-identical to
/// full materialization across threads {1, 4}.
#[test]
fn seeded_queries_match_full_materialization() {
    let mut executed = 0u32;
    let mut guarded = 0u32;
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x5EED_CAFE ^ (case << 4));
        let src = gen_program(&mut rng);
        if src.is_empty() {
            continue;
        }
        let db = gen_db(&mut rng);
        let query = gen_query(&mut rng);
        let program = chronolog_core::parse_program(&src).unwrap();
        let expected = full_answers(&program, &db, &query, 1);
        let expected4 = full_answers(&program, &db, &query, 4);
        assert_eq!(
            expected, expected4,
            "case {case}: full materialization must be thread-invariant\n{src}"
        );
        for threads in [1usize, 4] {
            let (got, magic) = magic_answers(&program, &db, &query, threads);
            assert_eq!(
                got, expected,
                "case {case} (threads {threads}, mode {}): query {query} diverged\n{src}",
                magic.mode
            );
            if threads == 1 && magic.enabled {
                guarded += 1;
            }
        }
        executed += 1;
    }
    assert!(executed >= 48, "only {executed} cases executed");
    // The generator must exercise the guarded path on a healthy share of
    // cases, not just degrade everything to cone evaluation.
    assert!(guarded >= 10, "only {guarded} cases took the magic path");
}

/// The netting corpus: a bound-counterparty exposure query demands < 25%
/// of the tuples full materialization derives, with identical answers.
#[test]
fn netting_point_query_is_demand_bounded() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/netting.dmtl"),
    )
    .unwrap();
    let (program, facts) = parse_source(&text).unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    let query = parse_query("exposure(cp0, X)").unwrap();
    let config = ReasonerConfig::default().with_horizon(0, 20);

    let reasoner = Reasoner::new(program.clone(), config.clone()).unwrap();
    let full = reasoner.materialize(&db).unwrap();
    let full_tuples = full.database.tuple_count() as u64;
    let mut expected = full.database.query(&query.atom, None);
    expected.sort_by(|a, b| a.0.cmp(&b.0));

    let outcome = reasoner.query(&db, &query).unwrap();
    assert_eq!(render(&outcome.answers), render(&expected));
    let magic = &outcome.stats.magic;
    assert_eq!(magic.mode, "magic");
    assert!(!magic.degraded);
    assert_eq!(magic.rules_rewritten, 2); // both exposure rules guarded
    assert_eq!(magic.cone_preds, 2); // exposure, trade — nettable dropped
    assert!(
        magic.demanded_tuples * 4 < full_tuples,
        "demanded {} vs full {full_tuples}: not under 25%",
        magic.demanded_tuples
    );
}

/// Sessions answer goal-driven queries from their base facts without
/// touching the session state, byte-identical to querying the
/// materialization.
#[test]
fn session_query_matches_database_query() {
    let (program, facts) = parse_source(
        "exposure(X, Y) :- trade(X, Y).\n\
         exposure(X, Z) :- exposure(X, Y), trade(Y, Z).\n\
         trade(a, b)@[0, 10].\n\
         trade(b, c)@[2, 8].\n",
    )
    .unwrap();
    let mut genesis = Database::new();
    genesis.extend_facts(&facts).unwrap();
    let mut session = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 10))
        .unwrap()
        .into_session(&genesis, 0)
        .unwrap();
    session.advance_to(10).unwrap();

    let query = parse_query("exposure(a, Z)@[0,10]").unwrap();
    let tuples_before = session.database().tuple_count();
    let outcome = session.query(&query).unwrap();
    assert_eq!(session.database().tuple_count(), tuples_before);

    let mut expected = session
        .database()
        .query(&query.atom, Some(&Interval::closed_int(0, 10)));
    expected.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(render(&outcome.answers), render(&expected));
    assert_eq!(outcome.stats.magic.mode, "magic");
}
