//! Unguardable-set and adornment computation for the magic rewrite.
//!
//! *Unguardable* predicates are those whose extensions must stay complete
//! for the rewritten program to be sound: anything read under negation
//! (negation-as-failure consults absence, which demand filtering would
//! fabricate) or involved in aggregation (an aggregate over a demanded
//! subset is simply a different number). The set closes *downward*: an
//! unguardable predicate's rules run unguarded, so everything those rules
//! read must be complete too.
//!
//! *Adornment* assigns each guardable predicate one global binding
//! pattern — the argument positions every demand site can supply. Sites
//! are the query itself plus every positive occurrence in a guarded rule;
//! a position is suppliable when its term is a constant or a variable
//! bound by the guard (adorned head positions), the positive prefix, or
//! the assignment closure over prefix constraints (mirroring
//! `check_rule_safety`). Suppliability depends on the head's own
//! adornment, so the meet is iterated to a (shrinking, hence terminating)
//! fixpoint starting from all-bound.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{CmpOp, Expr, Literal, Program, Rule, Term};
use crate::hash::FxHashSet;
use crate::symbol::Symbol;

use super::{constant_positions, Query};

/// Predicates that must keep their full extension (see module docs).
/// Returns the downward closure over the cone rules.
pub(super) fn unguardable(program: &Program, cone_rules: &[usize]) -> BTreeSet<Symbol> {
    let mut tainted: BTreeSet<Symbol> = BTreeSet::new();
    for &ri in cone_rules {
        let rule = &program.rules[ri];
        if rule.head.aggregate.is_some() {
            // The aggregate needs every group member; guard neither the
            // head (its rules must see all inputs) nor the inputs.
            tainted.insert(rule.head.atom.pred);
            for lit in &rule.body {
                if let Literal::Pos(m) | Literal::Neg(m) = lit {
                    for a in m.atoms() {
                        tainted.insert(a.pred);
                    }
                }
            }
        }
        for lit in &rule.body {
            if let Literal::Neg(m) = lit {
                for a in m.atoms() {
                    tainted.insert(a.pred);
                }
            }
        }
    }
    // Downward closure: a tainted head's whole rule body is read at full
    // extension, so its body predicates are tainted in turn.
    let mut changed = true;
    while changed {
        changed = false;
        for &ri in cone_rules {
            let rule = &program.rules[ri];
            if !tainted.contains(&rule.head.atom.pred) {
                continue;
            }
            for lit in &rule.body {
                if let Literal::Pos(m) | Literal::Neg(m) = lit {
                    for a in m.atoms() {
                        if tainted.insert(a.pred) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    tainted
}

/// Variables known to be bound when evaluation reaches body literal
/// `lit_idx` of `rule`, given that the guard supplies the head variables
/// at `head_bound` positions. Mirrors the assignment-closure logic of
/// `check_rule_safety`, restricted to the prefix.
pub(crate) fn bound_before(
    rule: &Rule,
    lit_idx: usize,
    head_bound: &BTreeSet<usize>,
) -> FxHashSet<Symbol> {
    let mut bound: FxHashSet<Symbol> = FxHashSet::default();
    for (j, term) in rule.head.atom.args.iter().enumerate() {
        if head_bound.contains(&j) {
            if let Term::Var(v) = term {
                bound.insert(*v);
            }
        }
    }
    for lit in &rule.body[..lit_idx] {
        if let Literal::Pos(m) = lit {
            bound.extend(m.variables());
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for lit in &rule.body[..lit_idx] {
            if let Literal::Constraint(lhs, CmpOp::Eq, rhs) = lit {
                for (a, b) in [(lhs, rhs), (rhs, lhs)] {
                    if let Expr::Term(Term::Var(v)) = a {
                        if !bound.contains(v) && b.variables().iter().all(|w| bound.contains(w)) {
                            bound.insert(*v);
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    bound
}

/// One global adornment per guardable predicate: the meet over all demand
/// sites of the suppliable argument positions, iterated to fixpoint.
pub(super) fn adornments(
    program: &Program,
    cone_rules: &[usize],
    guardable: &BTreeSet<Symbol>,
    unguarded: &BTreeSet<Symbol>,
    query: &Query,
) -> BTreeMap<Symbol, BTreeSet<usize>> {
    let arity_of = |p: Symbol| -> usize {
        cone_rules
            .iter()
            .map(|&ri| &program.rules[ri].head.atom)
            .find(|a| a.pred == p)
            .map_or(0, |a| a.arity())
    };
    let mut adorn: BTreeMap<Symbol, BTreeSet<usize>> = guardable
        .iter()
        .map(|&p| (p, (0..arity_of(p)).collect()))
        .collect();
    // Guarded rules are exactly the cone rules of guardable heads.
    let guarded: Vec<&Rule> = cone_rules
        .iter()
        .map(|&ri| &program.rules[ri])
        .filter(|r| guardable.contains(&r.head.atom.pred) && !unguarded.contains(&r.head.atom.pred))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &p in guardable.iter() {
            let mut meet: Option<BTreeSet<usize>> = None;
            let mut fold = |supp: BTreeSet<usize>| {
                meet = Some(match meet.take() {
                    None => supp,
                    Some(prev) => prev.intersection(&supp).copied().collect(),
                });
            };
            if p == query.atom.pred {
                fold(constant_positions(&query.atom));
            }
            for rule in &guarded {
                let head_bound = adorn[&rule.head.atom.pred].clone();
                for (i, lit) in rule.body.iter().enumerate() {
                    let Literal::Pos(m) = lit else { continue };
                    let occurrences: Vec<_> =
                        m.atoms().into_iter().filter(|a| a.pred == p).collect();
                    if occurrences.is_empty() {
                        continue;
                    }
                    let bound = bound_before(rule, i, &head_bound);
                    for atom in occurrences {
                        let supp: BTreeSet<usize> = atom
                            .args
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| match t {
                                Term::Val(_) => true,
                                Term::Var(v) => bound.contains(v),
                            })
                            .map(|(j, _)| j)
                            .collect();
                        fold(supp);
                    }
                }
            }
            let fresh = meet.unwrap_or_default();
            if fresh != adorn[&p] {
                adorn.insert(p, fresh);
                changed = true;
            }
        }
    }
    adorn
}
