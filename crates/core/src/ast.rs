//! Abstract syntax of DatalogMTL programs, following §2.1 of the paper plus
//! the Vadalog practical extensions the ETH-PERP encoding relies on:
//! arithmetic/comparison built-ins, temporal aggregation heads, anonymous
//! variables, and `@T` time capture (the `unix(t)` promotion).

use crate::symbol::Symbol;
use crate::value::Value;
use mtl_temporal::{Interval, MetricInterval};
use std::fmt;

/// A term: a variable or a ground value. Anonymous variables (`_`) are
/// renamed apart at parse time and are therefore ordinary variables here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable, named by its interned identifier.
    Var(Symbol),
    /// A ground value.
    Val(Value),
}

impl Term {
    /// Variable constructor.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::new(name))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Val(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Val(v) => write!(f, "{v}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Val(v)
    }
}

/// A relational atom `P(t1, …, tn)`, optionally carrying a time-capture
/// variable (`P(s)@T` — a Vadalog extension binding `T` to the time point of
/// a punctual fact, used by the ETH-PERP rules 23–25 in place of `unix(t)`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Predicate name.
    pub pred: Symbol,
    /// Argument terms.
    pub args: Vec<Term>,
    /// Optional `@T` time-capture variable.
    pub time_var: Option<Symbol>,
}

impl Atom {
    /// Plain atom constructor.
    pub fn new(pred: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: Symbol::new(pred),
            args,
            time_var: None,
        }
    }

    /// Atom with an `@T` capture.
    pub fn with_time(pred: &str, args: Vec<Term>, time_var: &str) -> Atom {
        Atom {
            pred: Symbol::new(pred),
            args,
            time_var: Some(Symbol::new(time_var)),
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// All variables occurring in the atom (including the capture).
    pub fn variables(&self) -> Vec<Symbol> {
        let mut vs: Vec<Symbol> = self.args.iter().filter_map(Term::as_var).collect();
        if let Some(t) = self.time_var {
            vs.push(t);
        }
        vs
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if let Some(t) = self.time_var {
            write!(f, "@{t}")?;
        }
        Ok(())
    }
}

/// A metric atom: a relational atom under a (possibly nested) tree of MTL
/// operators, per the grammar of §2.1.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum MetricAtom {
    /// `⊤` — true at every time point (of the reasoning horizon).
    Top,
    /// `⊥` — true nowhere.
    Bottom,
    /// A relational atom.
    Rel(Atom),
    /// `⊟ρ M` — `M` held continuously throughout the past window `ρ`.
    BoxMinus(MetricInterval, Box<MetricAtom>),
    /// `⊞ρ M` — `M` holds continuously throughout the future window `ρ`.
    BoxPlus(MetricInterval, Box<MetricAtom>),
    /// `◇⁻ρ M` — `M` held at some point in the past window `ρ`.
    DiamondMinus(MetricInterval, Box<MetricAtom>),
    /// `◇⁺ρ M` — `M` holds at some point in the future window `ρ`.
    DiamondPlus(MetricInterval, Box<MetricAtom>),
    /// `M1 S_ρ M2` — Since.
    Since(Box<MetricAtom>, MetricInterval, Box<MetricAtom>),
    /// `M1 U_ρ M2` — Until.
    Until(Box<MetricAtom>, MetricInterval, Box<MetricAtom>),
}

impl MetricAtom {
    /// Convenience: `⊟[1,1] atom` (the pervasive ETH-PERP shift).
    pub fn box_minus_one(atom: Atom) -> MetricAtom {
        MetricAtom::BoxMinus(MetricInterval::one(), Box::new(MetricAtom::Rel(atom)))
    }

    /// Convenience: `◇⁻[1,1] atom`.
    pub fn diamond_minus_one(atom: Atom) -> MetricAtom {
        MetricAtom::DiamondMinus(MetricInterval::one(), Box::new(MetricAtom::Rel(atom)))
    }

    /// All relational atoms in the operator tree.
    pub fn atoms(&self) -> Vec<&Atom> {
        match self {
            MetricAtom::Top | MetricAtom::Bottom => vec![],
            MetricAtom::Rel(a) => vec![a],
            MetricAtom::BoxMinus(_, m)
            | MetricAtom::BoxPlus(_, m)
            | MetricAtom::DiamondMinus(_, m)
            | MetricAtom::DiamondPlus(_, m) => m.atoms(),
            MetricAtom::Since(m1, _, m2) | MetricAtom::Until(m1, _, m2) => {
                let mut v = m1.atoms();
                v.extend(m2.atoms());
                v
            }
        }
    }

    /// All variables in the operator tree.
    pub fn variables(&self) -> Vec<Symbol> {
        self.atoms().iter().flat_map(|a| a.variables()).collect()
    }
}

impl fmt::Display for MetricAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rho_str(rho: &MetricInterval) -> String {
            if *rho == MetricInterval::one() {
                String::new()
            } else {
                rho.to_string()
            }
        }
        match self {
            MetricAtom::Top => write!(f, "top"),
            MetricAtom::Bottom => write!(f, "bottom"),
            MetricAtom::Rel(a) => write!(f, "{a}"),
            MetricAtom::BoxMinus(r, m) => write!(f, "boxminus{} {m}", rho_str(r)),
            MetricAtom::BoxPlus(r, m) => write!(f, "boxplus{} {m}", rho_str(r)),
            MetricAtom::DiamondMinus(r, m) => write!(f, "diamondminus{} {m}", rho_str(r)),
            MetricAtom::DiamondPlus(r, m) => write!(f, "diamondplus{} {m}", rho_str(r)),
            MetricAtom::Since(a, r, b) => write!(f, "since{}({a}, {b})", rho_str(r)),
            MetricAtom::Until(a, r, b) => write!(f, "until{}({a}, {b})", rho_str(r)),
        }
    }
}

/// Comparison operators of built-in constraints.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=` — equality, or assignment when the left side is an unbound variable.
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An arithmetic expression over terms, used in built-in constraints.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A term (variable or constant).
    Term(Term),
    /// `a + b`
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`
    Mul(Box<Expr>, Box<Expr>),
    /// `a / b`
    Div(Box<Expr>, Box<Expr>),
    /// `-a`
    Neg(Box<Expr>),
    /// `abs(a)` (also written `|a|` conceptually in the paper's fee rules).
    Abs(Box<Expr>),
    /// `min(a, b)`
    Min(Box<Expr>, Box<Expr>),
    /// `max(a, b)`
    Max(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A variable expression.
    pub fn var(name: &str) -> Expr {
        Expr::Term(Term::var(name))
    }

    /// A constant expression.
    pub fn val(v: impl Into<Value>) -> Expr {
        Expr::Term(Term::Val(v.into()))
    }

    /// All variables in the expression.
    pub fn variables(&self) -> Vec<Symbol> {
        match self {
            Expr::Term(t) => t.as_var().into_iter().collect(),
            Expr::Neg(a) | Expr::Abs(a) => a.variables(),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                let mut v = a.variables();
                v.extend(b.variables());
                v
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Abs(a) => write!(f, "abs({a})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
        }
    }
}

/// A body literal.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// A positive metric atom.
    Pos(MetricAtom),
    /// A negated metric atom (stratified; unbound variables are read as a
    /// negated existential).
    Neg(MetricAtom),
    /// A built-in constraint `lhs op rhs`; `X = expr` with `X` unbound acts
    /// as an assignment.
    Constraint(Expr, CmpOp, Expr),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(m) => write!(f, "{m}"),
            Literal::Neg(m) => write!(f, "not {m}"),
            Literal::Constraint(a, op, b) => write!(f, "{a} {op} {b}"),
        }
    }
}

/// Temporal aggregation functions (Vadalog-style stratified monotonic
/// aggregation; see Bellomarini–Nissl–Sallinger 2021).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFn {
    /// Temporal sum.
    Sum,
    /// Count of contributions.
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFn::Sum => "sum",
            AggFn::Count => "count",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Avg => "avg",
        };
        write!(f, "{s}")
    }
}

/// Head temporal operator (the grammar restricts heads to `⊟`/`⊞` chains).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HeadOp {
    /// `⊟ρ` in the head: the derived atom is spread backwards over `ρ`.
    BoxMinus(MetricInterval),
    /// `⊞ρ` in the head: spread forwards over `ρ`.
    BoxPlus(MetricInterval),
}

/// A rule head: an atom wrapped in zero or more `⊟/⊞` operators, where at
/// most one argument position may be an aggregate (e.g. `event(sum(S))`).
#[derive(Clone, PartialEq, Debug)]
pub struct Head {
    /// The head atom; when `aggregate` is set, `atom.args[agg_pos]` is the
    /// aggregated variable/expression argument.
    pub atom: Atom,
    /// Operator chain, outermost first.
    pub ops: Vec<HeadOp>,
    /// Aggregation: function and the argument position it applies to.
    pub aggregate: Option<(AggFn, usize)>,
}

impl Head {
    /// Plain head.
    pub fn plain(atom: Atom) -> Head {
        Head {
            atom,
            ops: Vec::new(),
            aggregate: None,
        }
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for op in &self.ops {
            match op {
                HeadOp::BoxMinus(r) => write!(f, "boxminus{r} ")?,
                HeadOp::BoxPlus(r) => write!(f, "boxplus{r} ")?,
            }
        }
        if let Some((fun, pos)) = &self.aggregate {
            write!(f, "{}(", self.atom.pred)?;
            for (i, a) in self.atom.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if i == *pos {
                    write!(f, "{fun}({a})")?;
                } else {
                    write!(f, "{a}")?;
                }
            }
            write!(f, ")")
        } else {
            write!(f, "{}", self.atom)
        }
    }
}

/// A rule `body → head`.
#[derive(Clone, PartialEq, Debug)]
pub struct Rule {
    /// The rule head.
    pub head: Head,
    /// The body literals.
    pub body: Vec<Literal>,
    /// Optional label (e.g. the paper's rule number) used in provenance and
    /// error messages.
    pub label: Option<String>,
}

impl Rule {
    /// Builds a rule with a label.
    pub fn labeled(label: &str, head: Head, body: Vec<Literal>) -> Rule {
        Rule {
            head,
            body,
            label: Some(label.to_string()),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

/// A temporal fact `P(v̄)@ρ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fact {
    /// Predicate name.
    pub pred: Symbol,
    /// Ground arguments.
    pub args: Vec<Value>,
    /// Validity interval.
    pub interval: Interval,
}

impl Fact {
    /// A fact holding at a single integer time point.
    pub fn at(pred: &str, args: Vec<Value>, t: i64) -> Fact {
        Fact {
            pred: Symbol::new(pred),
            args,
            interval: Interval::at(t),
        }
    }

    /// A fact holding over an interval.
    pub fn over(pred: &str, args: Vec<Value>, interval: Interval) -> Fact {
        Fact {
            pred: Symbol::new(pred),
            args,
            interval,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")@{}", self.interval)
    }
}

/// A DatalogMTL program: a finite set of safe rules.
#[derive(Clone, Default, Debug)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program { rules: Vec::new() }
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// All predicates appearing in rule heads (the IDB).
    pub fn head_predicates(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.rules.iter().map(|r| r.head.atom.pred).collect();
        v.sort();
        v.dedup();
        v
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            if let Some(l) = &r.label {
                writeln!(f, "% {l}")?;
            }
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_display_and_vars() {
        let a = Atom::with_time("event", vec![Term::var("S"), Term::Val(Value::Int(3))], "T");
        assert_eq!(a.to_string(), "event(S, 3)@T");
        let vars = a.variables();
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn metric_atom_collects_nested_atoms() {
        let m = MetricAtom::Since(
            Box::new(MetricAtom::Rel(Atom::new("p", vec![Term::var("X")]))),
            MetricInterval::one(),
            Box::new(MetricAtom::diamond_minus_one(Atom::new(
                "q",
                vec![Term::var("Y")],
            ))),
        );
        assert_eq!(m.atoms().len(), 2);
        assert_eq!(m.variables().len(), 2);
    }

    #[test]
    fn rule_display_roundtrip_shape() {
        let rule = Rule::labeled(
            "r2",
            Head::plain(Atom::new("isOpen", vec![Term::var("A")])),
            vec![
                Literal::Pos(MetricAtom::box_minus_one(Atom::new(
                    "isOpen",
                    vec![Term::var("A")],
                ))),
                Literal::Neg(MetricAtom::Rel(Atom::new("withdraw", vec![Term::var("A")]))),
            ],
        );
        assert_eq!(
            rule.to_string(),
            "isOpen(A) :- boxminus isOpen(A), not withdraw(A)."
        );
    }

    #[test]
    fn expr_variables() {
        let e = Expr::Add(
            Box::new(Expr::var("X")),
            Box::new(Expr::Mul(
                Box::new(Expr::var("Y")),
                Box::new(Expr::val(2i64)),
            )),
        );
        assert_eq!(e.variables().len(), 2);
        assert_eq!(e.to_string(), "(X + (Y * 2))");
    }

    #[test]
    fn aggregate_head_display() {
        let h = Head {
            atom: Atom::new("event", vec![Term::var("S")]),
            ops: vec![],
            aggregate: Some((AggFn::Sum, 0)),
        };
        assert_eq!(h.to_string(), "event(sum(S))");
    }
}
