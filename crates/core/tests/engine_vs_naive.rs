//! Cross-validation: the interval-based semi-naive engine must agree with
//! the brute-force discrete oracle on the integer-punctual fragment, over a
//! family of structurally diverse programs stimulated with random facts.

use chronolog_core::naive::naive_materialize;
use chronolog_core::{
    parse_program, Database, IntervalSet, Rational, Reasoner, ReasonerConfig, Symbol, Value,
};
use chronolog_obs::SmallRng;

const T_MIN: i64 = 0;
const T_MAX: i64 = 24;

/// Programs covering the engine features: recursion, negation, operators,
/// constraints, aggregation, time capture, head operators, wildcards.
const PROGRAMS: &[&str] = &[
    // 1. The paper's margin-account skeleton (recursion + negation).
    "isOpen(A) :- tranM(A, M).\n\
     isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
     margin(A, M) :- tranM(A, M), not boxminus isOpen(A).\n\
     changeM(A) :- tranM(A, M).\n\
     changeM(A) :- withdraw(A).\n\
     margin(A, M) :- diamondminus margin(A, M), not changeM(A).\n\
     margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), tranM(A, Y), M = X + Y.",
    // 2. Diamond windows and joins.
    "recent(A) :- diamondminus[0, 3] tranM(A, M).\n\
     coincide(A, B) :- recent(A), recent(B).\n\
     future(A) :- diamondplus[1, 2] withdraw(A).",
    // 3. Aggregation feeding recursion (the skew pattern).
    "event(sum(S)) :- modPos(A, S).\n\
     event(sum(S)) :- tranM(A, M), S = 0.\n\
     skew(K) :- start(K).\n\
     skew(K) :- diamondminus skew(K), not event(_).\n\
     skew(K) :- diamondminus skew(X), event(S), K = X + S.",
    // 4. Arithmetic chains and comparisons.
    "big(A, V) :- tranM(A, M), V = M * 2 + 1, V > 10.\n\
     neg(A, W) :- big(A, V), W = -V.\n\
     inRange(A) :- big(A, V), V >= 11, V <= 41, V != 13.",
    // 5. Time capture and intervals between events.
    "tick(T) :- tranM(A, M)@T.\n\
     gap(T1, T2) :- diamondminus tick(T1), tick(T2).\n\
     span(D) :- gap(T1, T2), D = T2 - T1.",
    // 6. Head operators (punctual) and double recursion.
    "boxplus[1, 1] echo(A) :- tranM(A, M).\n\
     boxminus[1, 1] pre(A) :- withdraw(A).\n\
     chain(A) :- echo(A).\n\
     chain(A) :- boxminus chain(A), not withdraw(A).",
    // 7. Wildcards under negation, multiple strata.
    "quiet(A) :- isOpen(A), not modPos(A, _).\n\
     isOpen(A) :- tranM(A, M).\n\
     isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
     calm() :- quiet(A), not withdraw(_).",
    // 8. Count/min/max aggregates with group-by.
    "perAcc(A, count(S)) :- modPos(A, S).\n\
     best(max(S)) :- modPos(A, S).\n\
     worst(min(S)) :- modPos(A, S).",
];

#[derive(Debug, Clone)]
struct RandomTrace {
    tran: Vec<(u8, i64, i64)>,   // (account, amount, time)
    withdraw: Vec<(u8, i64)>,    // (account, time)
    modpos: Vec<(u8, i64, i64)>, // (account, size, time)
    start: Vec<(i64, i64)>,      // (value, time)
}

fn gen_trace(rng: &mut SmallRng) -> RandomTrace {
    let tran = (0..rng.gen_range_usize(0, 6))
        .map(|_| {
            (
                rng.gen_range_i64(0, 3) as u8,
                rng.gen_range_i64(1, 50),
                rng.gen_range_i64(T_MIN, T_MAX),
            )
        })
        .collect();
    let withdraw = (0..rng.gen_range_usize(0, 3))
        .map(|_| {
            (
                rng.gen_range_i64(0, 3) as u8,
                rng.gen_range_i64(T_MIN, T_MAX),
            )
        })
        .collect();
    let modpos = (0..rng.gen_range_usize(0, 6))
        .map(|_| {
            (
                rng.gen_range_i64(0, 3) as u8,
                rng.gen_range_i64(-5, 6),
                rng.gen_range_i64(T_MIN, T_MAX),
            )
        })
        .collect();
    let start = (0..rng.gen_range_usize(0, 2))
        .map(|_| (rng.gen_range_i64(-3, 4), rng.gen_range_i64(T_MIN, 2)))
        .collect();
    RandomTrace {
        tran,
        withdraw,
        modpos,
        start,
    }
}

fn account(id: u8) -> Value {
    Value::sym(&format!("acc{id}"))
}

fn build_db(trace: &RandomTrace) -> Database {
    let mut db = Database::new();
    for (a, m, t) in &trace.tran {
        db.assert_at("tranM", &[account(*a), Value::Int(*m)], *t);
    }
    for (a, t) in &trace.withdraw {
        db.assert_at("withdraw", &[account(*a)], *t);
    }
    for (a, s, t) in &trace.modpos {
        db.assert_at("modPos", &[account(*a), Value::Int(*s)], *t);
    }
    for (k, t) in &trace.start {
        db.assert_at("start", &[Value::Int(*k)], *t);
    }
    db
}

/// Renders the engine's materialization as sorted `(pred, tuple, t)` lines
/// over the integer grid, for diffing against the oracle.
fn engine_text(db: &Database) -> String {
    let mut lines = Vec::new();
    for (pred, tuple, ivs) in db.iter() {
        for t in T_MIN..=T_MAX {
            if IntervalSet::components_contain(ivs, Rational::integer(t)) {
                let args = (0..tuple.len())
                    .map(|i| tuple.value(i).to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                lines.push(format!("{pred}({args})@{t}"));
            }
        }
    }
    lines.sort();
    lines.join("\n")
}

fn check_program_on_trace(src: &str, trace: &RandomTrace) {
    let program = parse_program(src).unwrap();
    let db = build_db(trace);
    let naive = naive_materialize(&program, &db, T_MIN, T_MAX).unwrap();
    let reasoner = Reasoner::new(
        program,
        ReasonerConfig::default().with_horizon(T_MIN, T_MAX),
    )
    .unwrap();
    let engine = reasoner.materialize(&db).unwrap();
    let engine_out = engine_text(&engine.database);
    let naive_out = naive.to_text();
    assert_eq!(
        engine_out, naive_out,
        "engine and oracle disagree on program:\n{src}\ntrace: {trace:?}"
    );
}

#[test]
fn engine_matches_oracle_on_random_traces() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x0DDBA11 ^ case);
        let trace = gen_trace(&mut rng);
        let program_idx = rng.gen_range_usize(0, PROGRAMS.len());
        check_program_on_trace(PROGRAMS[program_idx], &trace);
    }
}

#[test]
fn seminaive_matches_naive_mode_on_random_traces() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0xAB1E ^ (case << 3));
        let trace = gen_trace(&mut rng);
        let program_idx = rng.gen_range_usize(0, PROGRAMS.len());
        let program = parse_program(PROGRAMS[program_idx]).unwrap();
        let db = build_db(&trace);
        let mk = |semi: bool| {
            Reasoner::new(
                program.clone(),
                ReasonerConfig {
                    semi_naive: semi,
                    ..ReasonerConfig::default().with_horizon(T_MIN, T_MAX)
                },
            )
            .unwrap()
            .materialize(&db)
            .unwrap()
            .database
        };
        assert_eq!(
            mk(true).to_facts_text(),
            mk(false).to_facts_text(),
            "case {case}: program {program_idx}"
        );
    }
}

#[test]
fn every_template_program_compiles_and_stratifies() {
    for (i, src) in PROGRAMS.iter().enumerate() {
        let program = parse_program(src).unwrap_or_else(|e| panic!("program {i}: {e}"));
        Reasoner::new(
            program,
            ReasonerConfig::default().with_horizon(T_MIN, T_MAX),
        )
        .unwrap_or_else(|e| panic!("program {i}: {e}"));
    }
}

#[test]
fn dense_trace_exercises_all_templates() {
    // A handcrafted trace touching every predicate on overlapping times.
    let trace = RandomTrace {
        tran: vec![(0, 10, 1), (1, 20, 1), (0, 5, 6), (2, 7, 12)],
        withdraw: vec![(0, 9), (1, 15)],
        modpos: vec![(0, 3, 2), (1, -2, 2), (0, 1, 8), (2, -4, 13)],
        start: vec![(0, 0)],
    };
    for src in PROGRAMS {
        check_program_on_trace(src, &trace);
    }
}

#[test]
fn symbols_survive_cross_database_reuse() {
    // Regression guard for the global interner: same name in two databases
    // must be the same symbol.
    let a = Symbol::new("margin");
    let b = Symbol::new("margin");
    assert_eq!(a, b);
}
