//! Multi-market extension: several perpetual futures (ETH-PERP, BTC-PERP,
//! …) running inside *one* DatalogMTL program — the paper's concluding
//! claim ("our contribution can be easily replicated or adapted for other
//! derivatives") made concrete.
//!
//! Every predicate gains a leading market argument, and — where the
//! single-market program inlines the market parameters as constants — the
//! multi-market program lifts them into a rigid `mparams` fact per market,
//! joined by the rules. Markets are economically independent (separate
//! skews, funding sequences, fee schedules), which the validation exploits:
//! the combined declarative run must equal one procedural reference engine
//! per market, bit for bit.

use crate::params::MarketParams;
#[cfg(test)]
use crate::reference::ReferenceEngine;
use crate::types::{MarketRun, Method, Trace};
use chronolog_core::{
    parse_program, Database, IntervalSet, Program, Rational, Reasoner, ReasonerConfig, Result,
    Symbol, Value,
};
use std::collections::HashMap;

/// A market identifier (e.g. `ethperp`, `btcperp`).
pub type MarketId = String;

/// One market's configuration and activity inside a combined scenario.
#[derive(Clone, Debug)]
pub struct MarketSpec {
    /// Market name (becomes the leading symbol argument of every fact).
    pub id: MarketId,
    /// The market's own fee/funding parameters.
    pub params: MarketParams,
    /// The market's trace (its own initial skew, prices, and events).
    pub trace: Trace,
}

/// The multi-market DatalogMTL program: the 48 paper rules, generalized
/// with a market argument and parameter facts.
pub fn multi_market_source() -> String {
    "% ============================================================\n\
     % Multi-market perpetual futures in DatalogMTL\n\
     % (market-indexed generalization of the ETH-PERP encoding;\n\
     %  per-market parameters arrive as mparams facts:\n\
     %  mparams(Mkt, TakerFee, MakerFee, SkewScale, IMax, Period).)\n\
     % ============================================================\n\
     \n\
     live() :- start(Mkt).\n\
     live() :- boxminus live().\n\
     \n\
     % ----- MARGIN -----\n\
     isOpen(Mkt, A) :- tranM(Mkt, A, M).\n\
     isOpen(Mkt, A) :- boxminus isOpen(Mkt, A), not withdraw(Mkt, A).\n\
     margin(Mkt, A, M) :- tranM(Mkt, A, M), not boxminus isOpen(Mkt, A).\n\
     changeM(Mkt, A) :- withdraw(Mkt, A).\n\
     changeM(Mkt, A) :- tranM(Mkt, A, M).\n\
     changeM(Mkt, A) :- closePos(Mkt, A).\n\
     margin(Mkt, A, M) :- diamondminus margin(Mkt, A, M), not changeM(Mkt, A).\n\
     margin(Mkt, A, M) :- boxminus isOpen(Mkt, A), diamondminus margin(Mkt, A, X), tranM(Mkt, A, Y), M = X + Y.\n\
     margin(Mkt, A, M) :- diamondminus margin(Mkt, A, X), pnl(Mkt, A, PL), finalFee(Mkt, A, C), funding(Mkt, A, IF), M = X + PL - C + IF.\n\
     \n\
     % ----- POSITION -----\n\
     position(Mkt, A, S, N) :- tranM(Mkt, A, M), not boxminus isOpen(Mkt, A), S = 0.0, N = 0.0.\n\
     order(Mkt, A, S) :- modPos(Mkt, A, S).\n\
     order(Mkt, A, S) :- closePos(Mkt, A), S = 0.0.\n\
     position(Mkt, A, S, N) :- diamondminus position(Mkt, A, S, N), not order(Mkt, A, _), isOpen(Mkt, A).\n\
     position(Mkt, A, S, N) :- diamondminus position(Mkt, A, Y, Z), price(Mkt, P), modPos(Mkt, A, X), S = X + Y, N = Z + X * P.\n\
     position(Mkt, A, S, N) :- closePos(Mkt, A), S = 0.0, N = 0.0.\n\
     \n\
     % ----- RETURNS -----\n\
     pnl(Mkt, A, PL) :- closePos(Mkt, A), boxminus position(Mkt, A, S, N), price(Mkt, P), PL = S * P - N.\n\
     \n\
     % ----- F-RATE: events, per market -----\n\
     event(Mkt, sum(S)) :- tranM(Mkt, A, M), S = 0.0.\n\
     event(Mkt, sum(S)) :- withdraw(Mkt, A), S = 0.0.\n\
     event(Mkt, sum(S)) :- modPos(Mkt, A, S).\n\
     event(Mkt, sum(S)) :- closePos(Mkt, A), boxminus position(Mkt, A, X, N), S = -X.\n\
     \n\
     % ----- SKEW, per market -----\n\
     skew(Mkt, K) :- startSkew(Mkt, K).\n\
     skew(Mkt, K) :- diamondminus skew(Mkt, K), not event(Mkt, _), live().\n\
     skew(Mkt, K) :- diamondminus skew(Mkt, X), event(Mkt, S), K = X + S.\n\
     \n\
     % ----- TDIFF, per market (epoch encoding with shared ts feed) -----\n\
     tdiff(Mkt, U, U) :- start(Mkt), ts(U).\n\
     tdiff(Mkt, T1, T2) :- diamondminus tdiff(Mkt, T1, T2), not event(Mkt, _), live().\n\
     tdiff(Mkt, T2, U) :- diamondminus tdiff(Mkt, T1, T2), event(Mkt, S), ts(U).\n\
     diff(Mkt, D) :- tdiff(Mkt, T1, T2), event(Mkt, S), D = T2 - T1.\n\
     \n\
     % ----- RATE & FRS, per market, parameters from mparams -----\n\
     rate(Mkt, I) :- event(Mkt, S), boxminus skew(Mkt, K), price(Mkt, P), mparams(Mkt, FT, FM, Scale, IMax, Per), I = -K * P / Scale.\n\
     clampR(Mkt, C) :- rate(Mkt, I), I > 1.0, C = 1.0.\n\
     clampR(Mkt, C) :- rate(Mkt, I), I < -1.0, C = -1.0.\n\
     clampR(Mkt, I) :- rate(Mkt, I), I >= -1.0, I <= 1.0.\n\
     unrFund(Mkt, UF) :- clampR(Mkt, I), price(Mkt, P), diff(Mkt, T), mparams(Mkt, FT, FM, Scale, IMax, Per), UF = I * P * T * IMax / Per.\n\
     frs(Mkt, F) :- startFrs(Mkt, F).\n\
     frs(Mkt, F) :- diamondminus frs(Mkt, F), not unrFund(Mkt, _), live().\n\
     frs(Mkt, F) :- diamondminus frs(Mkt, X), unrFund(Mkt, UF), F = X + UF.\n\
     \n\
     % ----- INDF, per market -----\n\
     indF(Mkt, A, F, AF) :- boxminus position(Mkt, A, S, N), frs(Mkt, F), modPos(Mkt, A, C), S = 0.0, AF = 0.0.\n\
     indF(Mkt, A, F, AF) :- diamondminus indF(Mkt, A, F, AF), not order(Mkt, A, _).\n\
     indF(Mkt, A, F, AF) :- diamondminus indF(Mkt, A, PF, PAF), frs(Mkt, F), modPos(Mkt, A, C), boxminus position(Mkt, A, S, N), AF = PAF + S * (F - PF).\n\
     funding(Mkt, A, IF) :- diamondminus indF(Mkt, A, PF, AF), closePos(Mkt, A), frs(Mkt, F), boxminus position(Mkt, A, S, N), IF = AF + S * (F - PF).\n\
     \n\
     % ----- FEES, per market, rates from mparams -----\n\
     fee(Mkt, A, C) :- tranM(Mkt, A, M), not boxminus isOpen(Mkt, A), C = 0.0.\n\
     fee(Mkt, A, C) :- diamondminus fee(Mkt, A, C), not order(Mkt, A, _), isOpen(Mkt, A).\n\
     fee(Mkt, A, C) :- modPos(Mkt, A, S), price(Mkt, P), diamondminus fee(Mkt, A, OldC), skew(Mkt, K), mparams(Mkt, FT, FM, Scale, IMax, Per), K >= 0.0, S > 0.0, C = OldC + abs(S * P * FT).\n\
     fee(Mkt, A, C) :- modPos(Mkt, A, S), price(Mkt, P), diamondminus fee(Mkt, A, OldC), skew(Mkt, K), mparams(Mkt, FT, FM, Scale, IMax, Per), K < 0.0, S > 0.0, C = OldC + abs(S * P * FM).\n\
     fee(Mkt, A, C) :- modPos(Mkt, A, S), price(Mkt, P), diamondminus fee(Mkt, A, OldC), skew(Mkt, K), mparams(Mkt, FT, FM, Scale, IMax, Per), K >= 0.0, S < 0.0, C = OldC + abs(S * P * FM).\n\
     fee(Mkt, A, C) :- modPos(Mkt, A, S), price(Mkt, P), diamondminus fee(Mkt, A, OldC), skew(Mkt, K), mparams(Mkt, FT, FM, Scale, IMax, Per), K < 0.0, S < 0.0, C = OldC + abs(S * P * FT).\n\
     finalFee(Mkt, A, C) :- closePos(Mkt, A), boxminus position(Mkt, A, S, N), skew(Mkt, K), price(Mkt, P), diamondminus fee(Mkt, A, OldC), mparams(Mkt, FT, FM, Scale, IMax, Per), K >= 0.0, S < 0.0, C = OldC + abs(S * P * FT).\n\
     finalFee(Mkt, A, C) :- closePos(Mkt, A), boxminus position(Mkt, A, S, N), skew(Mkt, K), price(Mkt, P), diamondminus fee(Mkt, A, OldC), mparams(Mkt, FT, FM, Scale, IMax, Per), K < 0.0, S < 0.0, C = OldC + abs(S * P * FM).\n\
     finalFee(Mkt, A, C) :- closePos(Mkt, A), boxminus position(Mkt, A, S, N), skew(Mkt, K), price(Mkt, P), diamondminus fee(Mkt, A, OldC), mparams(Mkt, FT, FM, Scale, IMax, Per), K >= 0.0, S > 0.0, C = OldC + abs(S * P * FM).\n\
     finalFee(Mkt, A, C) :- closePos(Mkt, A), boxminus position(Mkt, A, S, N), skew(Mkt, K), price(Mkt, P), diamondminus fee(Mkt, A, OldC), mparams(Mkt, FT, FM, Scale, IMax, Per), K < 0.0, S > 0.0, C = OldC + abs(S * P * FT).\n\
     fee(Mkt, A, C) :- closePos(Mkt, A), C = 0.0.\n"
        .to_string()
}

/// Builds and validates the multi-market program.
pub fn build_multi_market_program() -> Result<Program> {
    parse_program(&multi_market_source())
}

/// Encodes several markets onto one shared epoch timeline. All traces must
/// share the same `start_time`; the global epoch order is the merged event
/// order across markets (ties broken by market order — traces are expected
/// to use disjoint timestamps, as chains totally order transactions).
pub struct MultiEncoded {
    /// The combined input database.
    pub database: Database,
    /// Shared horizon (epochs).
    pub horizon: (i64, i64),
    /// `(market index, event index within its trace, epoch)` per event.
    pub schedule: Vec<(usize, usize, i64)>,
}

/// Encodes the markets. Panics if traces disagree on `start_time`.
pub fn encode_markets(markets: &[MarketSpec]) -> MultiEncoded {
    let mut db = Database::new();
    let start_time = markets
        .first()
        .map(|m| m.trace.start_time)
        .unwrap_or_default();
    // Merge all events into one global timeline.
    let mut schedule: Vec<(usize, usize, i64)> = Vec::new();
    {
        let mut all: Vec<(i64, usize, usize)> = Vec::new();
        for (mi, market) in markets.iter().enumerate() {
            assert_eq!(
                market.trace.start_time, start_time,
                "all markets share the window start"
            );
            for (ei, e) in market.trace.events.iter().enumerate() {
                all.push((e.time, mi, ei));
            }
        }
        all.sort();
        for (epoch0, (_, mi, ei)) in all.into_iter().enumerate() {
            schedule.push((mi, ei, epoch0 as i64 + 1));
        }
    }

    db.assert_at("ts", &[Value::Int(start_time)], 0);
    for (mi, market) in markets.iter().enumerate() {
        let mkt = Value::sym(&market.id);
        db.assert_at("start", &[mkt], 0);
        db.assert_at(
            "startSkew",
            &[mkt, Value::num(market.trace.initial_skew)],
            0,
        );
        db.assert_at("startFrs", &[mkt, Value::num(0.0)], 0);
        let p = market.params;
        db.assert_over(
            "mparams",
            &[
                mkt,
                Value::num(p.taker_fee),
                Value::num(p.maker_fee),
                Value::num(p.skew_scale_notional),
                Value::num(p.max_funding_rate),
                Value::num(p.funding_period_secs),
            ],
            chronolog_core::Interval::ALL,
        );
        let _ = mi;
    }
    for &(mi, ei, epoch) in &schedule {
        let market = &markets[mi];
        let event = &market.trace.events[ei];
        let mkt = Value::sym(&market.id);
        let acc = Value::sym(&event.account.to_string());
        match event.method {
            Method::TransferMargin { amount } => {
                db.assert_at("tranM", &[mkt, acc, Value::num(amount)], epoch);
            }
            Method::Withdraw => {
                db.assert_at("withdraw", &[mkt, acc], epoch);
            }
            Method::ModifyPosition { size } => {
                db.assert_at("modPos", &[mkt, acc, Value::num(size)], epoch);
            }
            Method::ClosePosition => {
                db.assert_at("closePos", &[mkt, acc], epoch);
            }
        }
        db.assert_at("price", &[mkt, Value::num(event.price)], epoch);
        db.assert_at("ts", &[Value::Int(event.time)], epoch);
    }

    MultiEncoded {
        database: db,
        horizon: (0, schedule.len() as i64),
        schedule,
    }
}

/// Runs the combined program and extracts each market's run, validated
/// against one independent reference engine per market.
pub fn run_multi_market(markets: &[MarketSpec]) -> Result<HashMap<MarketId, MarketRun>> {
    let program = build_multi_market_program()?;
    let encoded = encode_markets(markets);
    let reasoner = Reasoner::new(
        program,
        ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1),
    )?;
    let m = reasoner.materialize(&encoded.database)?;

    let mut runs: HashMap<MarketId, MarketRun> = markets
        .iter()
        .map(|s| (s.id.clone(), MarketRun::default()))
        .collect();
    let frs_pred = Symbol::new("frs");
    for &(mi, ei, epoch) in &encoded.schedule {
        let market = &markets[mi];
        let event = &market.trace.events[ei];
        let mkt = Value::sym(&market.id);
        let frs = lookup(&m.database, frs_pred, &[mkt], epoch)
            .ok_or_else(|| chronolog_core::Error::Eval(format!("frs missing for {}", market.id)))?;
        let run = runs.get_mut(&market.id).expect("initialized above");
        run.frs.push((event.time, frs));
        if matches!(event.method, Method::ClosePosition) {
            let acc = Value::sym(&event.account.to_string());
            let get = |pred: &str| {
                lookup(&m.database, Symbol::new(pred), &[mkt, acc], epoch).ok_or_else(|| {
                    chronolog_core::Error::Eval(format!("{pred} missing for {}", market.id))
                })
            };
            run.trades.push(crate::types::TradeSettlement {
                account: event.account,
                time: event.time,
                pnl: get("pnl")?,
                fee: get("finalFee")?,
                funding: get("funding")?,
            });
        }
    }
    for spec in markets {
        if let Some(&(_, _, last)) = encoded
            .schedule
            .iter()
            .rev()
            .find(|&&(mi, _, _)| markets[mi].id == spec.id)
        {
            let run = runs.get_mut(&spec.id).expect("initialized");
            run.final_skew = lookup(
                &m.database,
                Symbol::new("skew"),
                &[Value::sym(&spec.id)],
                last,
            )
            .unwrap_or(spec.trace.initial_skew);
        }
    }
    Ok(runs)
}

/// Unique numeric lookup of `pred(prefix..., X)` at an epoch.
fn lookup(db: &Database, pred: Symbol, prefix: &[Value], epoch: i64) -> Option<f64> {
    let rel = db.relation(pred)?;
    let t = Rational::integer(epoch);
    let mut found = None;
    for (tuple, ivs) in rel.iter() {
        if tuple.len() != prefix.len() + 1 || !IntervalSet::components_contain(ivs, t) {
            continue;
        }
        if !(0..prefix.len()).all(|i| tuple.value(i).semantic_eq(&prefix[i])) {
            continue;
        }
        let v = tuple.value(prefix.len()).as_f64()?;
        match found {
            Some(prev) if prev != v => return None, // ambiguous
            _ => found = Some(v),
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AccountId, Event};

    fn ev(t: i64, acc: u32, m: Method, price: f64) -> Event {
        Event {
            time: t,
            account: AccountId(acc),
            method: m,
            price,
        }
    }

    fn eth_and_btc() -> Vec<MarketSpec> {
        let eth = Trace {
            start_time: 0,
            end_time: 3_600,
            initial_skew: 1302.88,
            initial_price: 1350.0,
            events: vec![
                ev(10, 1, Method::TransferMargin { amount: 10_000.0 }, 1350.0),
                ev(30, 1, Method::ModifyPosition { size: 2.0 }, 1351.0),
                ev(200, 1, Method::ModifyPosition { size: -0.5 }, 1352.5),
                ev(900, 1, Method::ClosePosition, 1349.0),
            ],
        };
        let btc = Trace {
            start_time: 0,
            end_time: 3_600,
            initial_skew: -88.5,
            initial_price: 19_000.0,
            events: vec![
                ev(15, 7, Method::TransferMargin { amount: 50_000.0 }, 19_000.0),
                ev(45, 7, Method::ModifyPosition { size: -1.25 }, 19_020.0),
                ev(800, 7, Method::ClosePosition, 18_950.0),
                ev(1_000, 7, Method::Withdraw, 18_960.0),
            ],
        };
        vec![
            MarketSpec {
                id: "ethperp".into(),
                params: MarketParams::default(),
                trace: eth,
            },
            MarketSpec {
                id: "btcperp".into(),
                params: MarketParams {
                    taker_fee: 0.0045,
                    maker_fee: 0.0015,
                    skew_scale_notional: 100_000_000.0,
                    ..MarketParams::default()
                },
                trace: btc,
            },
        ]
    }

    #[test]
    fn multi_market_program_validates() {
        let program = build_multi_market_program().unwrap();
        Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 10)).unwrap();
    }

    #[test]
    fn combined_run_equals_independent_references() {
        let markets = eth_and_btc();
        let runs = run_multi_market(&markets).unwrap();
        for spec in &markets {
            let reference = ReferenceEngine::<f64>::run_trace(spec.params, &spec.trace);
            let run = &runs[&spec.id];
            assert_eq!(run.frs, reference.frs, "{} FRS", spec.id);
            assert_eq!(run.trades, reference.trades, "{} trades", spec.id);
            assert_eq!(run.final_skew, reference.final_skew, "{} skew", spec.id);
        }
    }

    #[test]
    fn markets_do_not_interfere() {
        // Running ETH alone must give the same ETH results as running it
        // next to BTC (markets are independent).
        let markets = eth_and_btc();
        let combined = run_multi_market(&markets).unwrap();
        let solo = run_multi_market(&markets[..1]).unwrap();
        assert_eq!(combined["ethperp"].frs, solo["ethperp"].frs);
        assert_eq!(combined["ethperp"].trades, solo["ethperp"].trades);
    }

    #[test]
    fn per_market_parameters_differ() {
        // BTC uses a different taker fee; the same-sized trade must cost
        // differently than it would under ETH parameters.
        let markets = eth_and_btc();
        let runs = run_multi_market(&markets).unwrap();
        let btc_trade = runs["btcperp"].trades[0];
        let eth_params_ref =
            ReferenceEngine::<f64>::run_trace(MarketParams::default(), &markets[1].trace);
        assert_ne!(btc_trade.fee, eth_params_ref.trades[0].fee);
    }
}
