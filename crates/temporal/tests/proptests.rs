//! Property-based validation of the interval algebra.
//!
//! Strategy: generate random interval sets with endpoints on the half-integer
//! grid (so open/closed distinctions matter at sample points), then check
//! every operation pointwise against its set-theoretic definition evaluated
//! by brute force over a grid of sample points.

use mtl_temporal::{Interval, IntervalSet, MetricInterval, Rational};
use proptest::prelude::*;

fn r(num: i64, den: i64) -> Rational {
    Rational::new(num, den)
}

/// Sample points: integers and half-integers in [-2, 42] (in halves).
fn sample_points() -> Vec<Rational> {
    (-4..=84).map(|k| r(k, 2)).collect()
}

/// Random interval with integer endpoints in [0, 40] and random closedness.
fn arb_interval() -> impl Strategy<Value = Interval> {
    (0i64..40, 0i64..6, any::<bool>(), any::<bool>()).prop_filter_map(
        "non-empty",
        |(lo, len, lc, hc)| {
            Interval::new(
                Rational::integer(lo).into(),
                lc,
                Rational::integer(lo + len).into(),
                hc,
            )
        },
    )
}

fn arb_set() -> impl Strategy<Value = IntervalSet> {
    proptest::collection::vec(arb_interval(), 0..6).prop_map(IntervalSet::from_intervals)
}

/// Random metric interval with small non-negative integer bounds.
fn arb_rho() -> impl Strategy<Value = MetricInterval> {
    (0i64..4, 0i64..4, any::<bool>(), any::<bool>()).prop_filter_map(
        "valid rho",
        |(lo, len, lc, hc)| {
            let i = Interval::new(
                Rational::integer(lo).into(),
                lc,
                Rational::integer(lo + len).into(),
                hc,
            )?;
            MetricInterval::new(i).ok()
        },
    )
}

proptest! {
    #[test]
    fn invariant_holds_after_inserts(set in arb_set()) {
        set.check_invariant();
    }

    #[test]
    fn union_is_pointwise_or(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        u.check_invariant();
        for t in sample_points() {
            prop_assert_eq!(u.contains(t), a.contains(t) || b.contains(t), "at {}", t);
        }
    }

    #[test]
    fn intersection_is_pointwise_and(a in arb_set(), b in arb_set()) {
        let x = a.intersect(&b);
        x.check_invariant();
        for t in sample_points() {
            prop_assert_eq!(x.contains(t), a.contains(t) && b.contains(t), "at {}", t);
        }
    }

    #[test]
    fn difference_is_pointwise_and_not(a in arb_set(), b in arb_set()) {
        let d = a.difference(&b);
        d.check_invariant();
        for t in sample_points() {
            prop_assert_eq!(d.contains(t), a.contains(t) && !b.contains(t), "at {}", t);
        }
    }

    #[test]
    fn complement_is_pointwise_not(a in arb_set()) {
        let horizon = Interval::closed_int(-2, 42);
        let c = a.complement_within(&horizon);
        c.check_invariant();
        for t in sample_points() {
            prop_assert_eq!(c.contains(t), !a.contains(t), "at {}", t);
        }
    }

    /// ◇⁻ρ M holds at t iff ∃s: t − s ∈ ρ and M(s). We verify via the grid:
    /// witnesses, if any exist, exist on the grid closure (endpoints are
    /// grid-aligned and ρ endpoints are integers), but to be safe we check
    /// both directions with quarter-step witnesses.
    #[test]
    fn diamond_minus_pointwise(a in arb_set(), rho in arb_rho()) {
        let out = a.diamond_minus(&rho);
        out.check_invariant();
        let witnesses: Vec<Rational> = (-80..=400).map(|k| r(k, 8)).collect();
        for t in sample_points() {
            let expected = witnesses.iter().any(|&s| {
                rho.as_interval().contains(t - s) && a.contains(s)
            });
            prop_assert_eq!(out.contains(t), expected, "◇⁻{} at {}", rho, t);
        }
    }

    /// ⊟ρ M holds at t iff ∀s with t − s ∈ ρ: M(s). Brute-force check over
    /// quarter-step obligation points (sufficient: all endpoints lie on the
    /// eighth-grid, so truth is constant between consecutive grid points).
    #[test]
    fn box_minus_pointwise(a in arb_set(), rho in arb_rho()) {
        let out = a.box_minus(&rho);
        out.check_invariant();
        let obligations: Vec<Rational> = (-160..=800).map(|k| r(k, 16)).collect();
        for t in sample_points() {
            let expected = obligations
                .iter()
                .filter(|&&s| rho.as_interval().contains(t - s))
                .all(|&s| a.contains(s));
            // Also require at least the endpoints of the obligation window
            // to be exercised; the window is never empty since rho is non-empty.
            prop_assert_eq!(out.contains(t), expected, "⊟{} at {}", rho, t);
        }
    }

    #[test]
    fn future_operators_are_time_mirrors(a in arb_set(), rho in arb_rho()) {
        // Mirror the set around 0, apply the past operator, mirror back:
        // must equal the future operator.
        let mirrored = IntervalSet::from_intervals(a.iter().map(mirror_interval));
        let dm = IntervalSet::from_intervals(
            mirrored.diamond_minus(&rho).iter().map(mirror_interval),
        );
        prop_assert_eq!(dm, a.diamond_plus(&rho));
        let bm = IntervalSet::from_intervals(
            mirrored.box_minus(&rho).iter().map(mirror_interval),
        );
        prop_assert_eq!(bm, a.box_plus(&rho));
    }

    /// Since, checked against its definition with grid witnesses and grid
    /// continuity obligations.
    #[test]
    fn since_pointwise(m1 in arb_set(), m2 in arb_set(), rho in arb_rho()) {
        let out = m1.since(&m2, &rho);
        out.check_invariant();
        let witnesses: Vec<Rational> = (-80..=400).map(|k| r(k, 8)).collect();
        for t in sample_points() {
            let expected = witnesses.iter().any(|&s| {
                s <= t
                    && rho.as_interval().contains(t - s)
                    && m2.contains(s)
                    && continuity_holds(&m1, s, t)
            });
            prop_assert_eq!(out.contains(t), expected, "S_{} at {}", rho, t);
        }
    }

    #[test]
    fn until_pointwise(m1 in arb_set(), m2 in arb_set(), rho in arb_rho()) {
        let out = m1.until(&m2, &rho);
        out.check_invariant();
        let witnesses: Vec<Rational> = (-80..=400).map(|k| r(k, 8)).collect();
        for t in sample_points() {
            let expected = witnesses.iter().any(|&s| {
                s >= t
                    && rho.as_interval().contains(s - t)
                    && m2.contains(s)
                    && continuity_holds(&m1, t, s)
            });
            prop_assert_eq!(out.contains(t), expected, "U_{} at {}", rho, t);
        }
    }

    /// Coalescing must never change set membership: building from the raw
    /// interval list and from pre-unioned pieces agree everywhere.
    #[test]
    fn coalescing_preserves_membership(intervals in proptest::collection::vec(arb_interval(), 0..8)) {
        let set = IntervalSet::from_intervals(intervals.clone());
        for t in sample_points() {
            let raw = intervals.iter().any(|i| i.contains(t));
            prop_assert_eq!(set.contains(t), raw, "at {}", t);
        }
    }
}

/// Does `m1` hold on the whole open interval `(a, b)`? Checked on the
/// sixteenth-step grid, which refines every endpoint in play.
fn continuity_holds(m1: &IntervalSet, a: Rational, b: Rational) -> bool {
    if b <= a {
        return true; // empty obligation
    }
    let step = r(1, 16);
    let mut t = a + step;
    while t < b {
        if !m1.contains(t) {
            return false;
        }
        t = t + step;
    }
    true
}

fn mirror_interval(i: &Interval) -> Interval {
    use mtl_temporal::TimeBound;
    let flip = |b: TimeBound| match b {
        TimeBound::Finite(x) => TimeBound::Finite(-x),
        TimeBound::NegInf => TimeBound::PosInf,
        TimeBound::PosInf => TimeBound::NegInf,
    };
    Interval::new(flip(i.hi()), i.hi_closed(), flip(i.lo()), i.lo_closed())
        .expect("mirror of non-empty interval is non-empty")
}
