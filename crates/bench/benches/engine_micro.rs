//! Microbenchmarks of the engine substrate: interval-set algebra, operator
//! transforms, parsing, and small materializations.

use chronolog_bench::microbench::{black_box, Bench};
use chronolog_core::{
    parse_program, parse_source, Database, Fact, Reasoner, ReasonerConfig, StorageMode, Value,
};
use mtl_temporal::{Interval, IntervalSet, MetricInterval, Rational};

fn bench_interval_sets(c: &mut Bench) {
    let mut group = c.group("interval_set");

    // Insertions that keep coalescing into one component (the propagation
    // pattern of the ETH-PERP recursion).
    group.bench_function("insert_coalescing_1k", |b| {
        b.iter(|| {
            let mut s = IntervalSet::new();
            for t in 0..1_000 {
                s.insert(Interval::closed_int(t, t + 1));
            }
            black_box(s)
        })
    });

    // Insertions that stay fragmented (event-style punctual facts).
    group.bench_function("insert_fragmented_1k", |b| {
        b.iter(|| {
            let mut s = IntervalSet::new();
            for t in 0..1_000 {
                s.insert(Interval::at(2 * t));
            }
            black_box(s)
        })
    });

    let coalesced = IntervalSet::from_interval(Interval::closed_int(0, 2_000));
    let fragmented: IntervalSet = (0..1_000).map(|t| Interval::at(2 * t)).collect();
    let rho = MetricInterval::closed_int(0, 5);

    group.bench_function("box_minus_coalesced", |b| {
        b.iter(|| black_box(coalesced.box_minus(&rho)))
    });
    group.bench_function("box_minus_fragmented_1k", |b| {
        b.iter(|| black_box(fragmented.box_minus(&rho)))
    });
    group.bench_function("diamond_minus_fragmented_1k", |b| {
        b.iter(|| black_box(fragmented.diamond_minus(&rho)))
    });

    let other: IntervalSet = (0..1_000).map(|t| Interval::at(2 * t + 1)).collect();
    group.bench_function("difference_1k_x_1k", |b| {
        b.iter(|| black_box(fragmented.difference(&other)))
    });
    group.bench_function("intersect_1k_x_1k", |b| {
        b.iter(|| black_box(fragmented.intersect(&other)))
    });
    group.bench_function("contains_binary_search_1k", |b| {
        b.iter(|| {
            let mut hits = 0;
            for t in 0..2_000 {
                if fragmented.contains(Rational::integer(t)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_parser(c: &mut Bench) {
    let perp_source = chronolog_perp::program::program_source(
        &chronolog_perp::MarketParams::default(),
        chronolog_perp::program::TimelineMode::DenseSeconds,
    );
    c.bench_function("parse_ethperp_program", |b| {
        b.iter(|| parse_program(black_box(&perp_source)).unwrap())
    });
}

fn bench_small_materialization(c: &mut Bench) {
    // The isOpen/margin recursion over a 1000-step horizon.
    let (program, facts) = parse_source(
        "isOpen(A) :- tranM(A, M).\n\
         isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
         margin(A, M) :- tranM(A, M), not boxminus isOpen(A).\n\
         changeM(A) :- tranM(A, M).\n\
         margin(A, M) :- diamondminus margin(A, M), not changeM(A).\n\
         tranM(acc1, 50.0)@3.\n\
         tranM(acc2, 70.0)@100.\n\
         withdraw(acc2)@600.",
    )
    .unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    c.bench_function("materialize_recursion_1k_steps", |b| {
        b.iter_batched(
            || {
                Reasoner::new(
                    program.clone(),
                    ReasonerConfig::default().with_horizon(0, 1_000),
                )
                .unwrap()
            },
            |r| r.materialize(&db).unwrap(),
        )
    });
}

/// A join-heavy workload: two 600-tuple relations joined on a key drawn
/// from 40 distinct values, plus a second rule re-joining the result. The
/// full-scan path walks 600 tuples per binding; the indexed path probes a
/// ~15-tuple bucket. The workload has >256 bindings per rule, so the
/// `threads4` variant also exercises the binding fan-out inside a rule.
fn bench_join_heavy(c: &mut Bench) {
    let src = "linked(X, Z) :- r(X, K), s(K, Z).\n\
               closed(X, Z) :- linked(X, Z), r(Z, K2), s(K2, X).";
    let program = parse_program(src).unwrap();
    let mut db = Database::new();
    for i in 0..600i64 {
        db.assert_at("r", &[Value::Int(i), Value::Int(i % 40)], i % 8);
        db.assert_at("s", &[Value::Int(i % 40), Value::Int(i)], i % 8);
    }

    let run = |index_joins: bool, threads: usize, db: &Database| {
        let config = ReasonerConfig {
            index_joins,
            ..ReasonerConfig::default()
                .with_horizon(0, 8)
                .with_threads(threads)
        };
        Reasoner::new(program.clone(), config)
            .unwrap()
            .materialize(db)
            .unwrap()
    };

    let mut group = c.group("join_heavy");
    group.sample_size(10);
    group.bench_function("full_scan/threads1", |b| {
        b.iter(|| black_box(run(false, 1, &db)))
    });
    group.bench_function("full_scan/threads4", |b| {
        b.iter(|| black_box(run(false, 4, &db)))
    });
    group.bench_function("indexed/threads1", |b| {
        b.iter(|| black_box(run(true, 1, &db)))
    });
    group.bench_function("indexed/threads4", |b| {
        b.iter(|| black_box(run(true, 4, &db)))
    });
    // Same workload, but one `Reasoner` — and therefore one persistent
    // worker pool — reused across runs. The plain `threads4` variant above
    // builds a fresh `Reasoner` per run, so every run pays the pool spawn;
    // this one pays it once.
    let warm = Reasoner::new(
        program.clone(),
        ReasonerConfig {
            index_joins: true,
            ..ReasonerConfig::default().with_horizon(0, 8).with_threads(4)
        },
    )
    .unwrap();
    group.bench_function("indexed/threads4_warm_pool", |b| {
        b.iter(|| black_box(warm.materialize(&db).unwrap()))
    });
    group.finish();
}

/// Cost-based join reordering on a selective-last body: `sel` holds two
/// tuples per instant but is written after two 600-tuple relations. The
/// planner hoists it to the front, collapsing the binding fan-out before
/// the wide joins; the `no_reorder` ablation executes the textual order,
/// enumerating the full wide1⋈wide2 product before filtering on `sel`.
fn bench_reorder_heavy(c: &mut Bench) {
    let src = "hot(X, Y) :- wide1(X, K), wide2(K, Y), sel(X).\n\
               chain(X, Z) :- hot(X, Y), wide2(Y, Z).";
    let program = parse_program(src).unwrap();
    let mut db = Database::new();
    for i in 0..600i64 {
        db.assert_at("wide1", &[Value::Int(i % 50), Value::Int(i % 40)], i % 8);
        db.assert_at("wide2", &[Value::Int(i % 40), Value::Int(i % 60)], i % 8);
    }
    for t in 0..8i64 {
        db.assert_at("sel", &[Value::Int(7)], t);
        db.assert_at("sel", &[Value::Int(23)], t);
    }

    let run = |cost_based_reorder: bool, db: &Database| {
        let config = ReasonerConfig {
            cost_based_reorder,
            ..ReasonerConfig::default().with_horizon(0, 8)
        };
        Reasoner::new(program.clone(), config)
            .unwrap()
            .materialize(db)
            .unwrap()
    };

    let mut group = c.group("reorder_heavy");
    group.sample_size(10);
    group.bench_function("no_reorder", |b| b.iter(|| black_box(run(false, &db))));
    group.bench_function("cost_based", |b| b.iter(|| black_box(run(true, &db))));
    group.finish();
}

/// A windowed join over a long-lived relation: `load` holds 4000 punctual
/// tuples spread over t∈[0,4000), but each outer binding only needs the
/// ~3-instant slice its pushed-down mask selects. The time-indexed path
/// binary-searches the sorted endpoint array for that slice; the ablated
/// path clips every candidate tuple's interval set against the mask.
fn bench_windowed_join(c: &mut Bench) {
    // `unkeyed`: the inner literal has no bound argument, so the time
    // index is the only selective access path (vs a full clipping scan).
    // `keyed`: the inner literal is also value-bound, so the probe is the
    // composed (value, window) lookup from the most-selective bucket.
    let src = "near(X, L) :- ev(X), diamondminus[0, 2] load(L).\n\
               linked(X, L) :- evk(X, K), diamondminus[0, 2] loadk(K, L).";
    let program = parse_program(src).unwrap();
    let mut db = Database::new();
    for j in 0..4000i64 {
        db.assert_at("load", &[Value::Int(j)], j);
        db.assert_at("loadk", &[Value::Int(j % 40), Value::Int(j)], j);
    }
    for i in 0..50i64 {
        db.assert_at("ev", &[Value::Int(i)], i);
        db.assert_at("evk", &[Value::Int(i), Value::Int(i % 40)], i);
    }

    let run = |time_index: bool, db: &Database| {
        let config = ReasonerConfig {
            time_index,
            ..ReasonerConfig::default().with_horizon(0, 50)
        };
        Reasoner::new(program.clone(), config)
            .unwrap()
            .materialize(db)
            .unwrap()
    };

    let mut group = c.group("windowed_join");
    group.sample_size(10);
    group.bench_function("clipped", |b| b.iter(|| black_box(run(false, &db))));
    group.bench_function("time_indexed", |b| b.iter(|| black_box(run(true, &db))));
    group.finish();
}

/// Span-profiler overhead on the join-heavy workload: the same
/// materialization with no recorder, with a recorder attached (spans
/// written to per-lane buffers), and the export step on its own. The
/// `profiled` variant bounds the per-span cost in context; `disabled`
/// is the baseline that must stay unaffected.
fn bench_profiling_overhead(c: &mut Bench) {
    let src = "linked(X, Z) :- r(X, K), s(K, Z).\n\
               closed(X, Z) :- linked(X, Z), r(Z, K2), s(K2, X).";
    let program = parse_program(src).unwrap();
    let mut db = Database::new();
    for i in 0..600i64 {
        db.assert_at("r", &[Value::Int(i), Value::Int(i % 40)], i % 8);
        db.assert_at("s", &[Value::Int(i % 40), Value::Int(i)], i % 8);
    }

    let run = |profiler: Option<chronolog_obs::SpanRecorder>, db: &Database| {
        let config = ReasonerConfig {
            profiler,
            ..ReasonerConfig::default().with_horizon(0, 8)
        };
        Reasoner::new(program.clone(), config)
            .unwrap()
            .materialize(db)
            .unwrap()
    };

    let mut group = c.group("profiling");
    group.sample_size(10);
    group.bench_function("disabled", |b| b.iter(|| black_box(run(None, &db))));
    group.bench_function("profiled", |b| {
        b.iter(|| {
            let rec = chronolog_obs::SpanRecorder::new();
            black_box(run(Some(rec.clone()), &db));
            black_box(rec.spans_recorded())
        })
    });
    let rec = chronolog_obs::SpanRecorder::new();
    run(Some(rec.clone()), &db);
    group.bench_function("export_chrome_trace", |b| {
        b.iter(|| black_box(rec.to_chrome_trace().to_compact()))
    });
    group.bench_function("export_folded", |b| b.iter(|| black_box(rec.to_folded())));
    group.finish();
}

/// The streaming execution model vs repeated batch runs: one event per
/// tick over the margin recursion. The warm chain advances a single
/// `Session` (boundary-slice seeding, clone-preserved indexes); the cold
/// chain re-materializes the growing database from scratch at every tick.
fn bench_session_stream(c: &mut Bench) {
    let src = "isOpen(A) :- tranM(A, M).\n\
               isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
               changeM(A) :- tranM(A, M).\n\
               margin(A, M) :- tranM(A, M), not boxminus isOpen(A).\n\
               margin(A, M) :- diamondminus margin(A, M), not changeM(A).";
    let program = parse_program(src).unwrap();
    const STEPS: i64 = 40;
    let accounts = ["acc0", "acc1", "acc2"];

    let mut group = c.group("session_stream");
    group.sample_size(10);
    group.bench_function("warm_advance_chain", |b| {
        b.iter(|| {
            let mut s = Reasoner::new(program.clone(), ReasonerConfig::default())
                .unwrap()
                .into_session(&Database::new(), 0)
                .unwrap();
            for t in 1..=STEPS {
                let acc = accounts[(t % 3) as usize];
                s.submit(Fact::at(
                    "tranM",
                    vec![Value::sym(acc), Value::num(t as f64)],
                    t,
                ))
                .unwrap();
                s.advance_to(t).unwrap();
            }
            black_box(s.database().tuple_count())
        })
    });
    group.bench_function("cold_rematerialize_chain", |b| {
        b.iter(|| {
            let mut db = Database::new();
            let mut last = 0;
            for t in 1..=STEPS {
                let acc = accounts[(t % 3) as usize];
                db.assert_at("tranM", &[Value::sym(acc), Value::num(t as f64)], t);
                let m = Reasoner::new(
                    program.clone(),
                    ReasonerConfig::default().with_horizon(0, t),
                )
                .unwrap()
                .materialize(&db)
                .unwrap();
                last = m.database.tuple_count();
            }
            black_box(last)
        })
    });
    group.finish();
}

/// Raw scan throughput of the two relation layouts: one full-scan rule
/// over a 20k-tuple relation, so evaluation time is dominated by walking
/// stored tuples. The columnar layout runs dense `u32` semantic-id
/// compares over flat columns; the row layout unifies against boxed
/// tuples. Alongside wall time, each layout's storage footprint is
/// reported as `bytes_per_tuple` in the JSON report (schema v3), with the
/// `Value` / `Interval` ABI sizes in `environment` for context.
fn bench_columnar_scan(c: &mut Bench) {
    // index_joins off so every lookup is a full scan of `big`; the guard
    // `sel` relation keeps the binding count small, isolating scan cost.
    let src = "hit(X, V) :- sel(X), big(X, V).";
    let program = parse_program(src).unwrap();
    const TUPLES: i64 = 20_000;
    let mut col_db = Database::new();
    for i in 0..TUPLES {
        col_db.assert_at("big", &[Value::Int(i % 500), Value::Int(i)], i % 16);
    }
    for t in 0..16i64 {
        col_db.assert_at("sel", &[Value::Int(7)], t);
        col_db.assert_at("sel", &[Value::Int(333)], t);
    }
    let row_db = col_db.to_mode(StorageMode::Row);

    let run = |row_store: bool, db: &Database| {
        let config = ReasonerConfig {
            index_joins: false,
            time_index: false,
            row_store,
            ..ReasonerConfig::default().with_horizon(0, 16)
        };
        Reasoner::new(program.clone(), config)
            .unwrap()
            .materialize(db)
            .unwrap()
    };

    let mut group = c.group("columnar_scan");
    group.sample_size(10);
    group.bench_function("columnar", |b| b.iter(|| black_box(run(false, &col_db))));
    group.bench_function("row_store", |b| b.iter(|| black_box(run(true, &row_db))));
    group.finish();
    let per_tuple = |db: &Database| db.storage_bytes() as f64 / db.tuple_count().max(1) as f64;
    c.annotate_bytes_per_tuple("columnar_scan/columnar", per_tuple(&col_db));
    c.annotate_bytes_per_tuple("columnar_scan/row_store", per_tuple(&row_db));
}

fn bench_repair(c: &mut Bench) {
    // Out-of-order corrections on a warm session: each iteration is a
    // state-restoring retract + late-resubmit of one mid-history fact, so
    // the session is identical before and after and iterations are
    // comparable. `repair_small_cone` takes the incremental DRed path
    // (overdelete the affected cone, rederive from the boundary);
    // `repair_fallback_cold` forces the cold re-materialization fallback
    // that a budget trip would also take — the gap between the two is the
    // payoff of the incremental path.
    let src = "isOpen(A) :- tranM(A, M).\n\
               isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
               changeM(A) :- tranM(A, M).\n\
               margin(A, M) :- tranM(A, M), not boxminus isOpen(A).\n\
               margin(A, M) :- diamondminus margin(A, M), not changeM(A).";
    let program = parse_program(src).unwrap();
    const STEPS: i64 = 40;
    let accounts = ["acc0", "acc1", "acc2"];
    let build_session = |config: ReasonerConfig| {
        let mut s = Reasoner::new(program.clone(), config)
            .unwrap()
            .into_session(&Database::new(), 0)
            .unwrap();
        for t in 1..=STEPS {
            let acc = accounts[(t % 3) as usize];
            s.submit(Fact::at(
                "tranM",
                vec![Value::sym(acc), Value::num(t as f64)],
                t,
            ))
            .unwrap();
            s.advance_to(t).unwrap();
        }
        s
    };
    // A fact near the watermark: the affected cone is a short suffix of
    // the timeline, the case the incremental path exists for.
    let churn = Fact::at(
        "tranM",
        vec![Value::sym(accounts[35 % 3]), Value::num(35.0)],
        35,
    );

    let mut group = c.group("repair");
    group.sample_size(10);
    let mut warm = build_session(ReasonerConfig::default());
    // One unmeasured cycle up front: it proves the path assertion below
    // even when a --filter skips the timed iterations, and warms the
    // session so the first sample is comparable to the rest.
    warm.retract(churn.clone()).unwrap();
    warm.submit_late(churn.clone()).unwrap();
    group.bench_function("repair_small_cone", |b| {
        b.iter(|| {
            warm.retract(churn.clone()).unwrap();
            let report = warm.submit_late(churn.clone()).unwrap();
            black_box(report.cone_tuples)
        })
    });
    assert!(warm.stats().repairs.incremental > 0);
    let mut cold = build_session(ReasonerConfig::default().with_repair(false));
    cold.retract(churn.clone()).unwrap();
    cold.submit_late(churn.clone()).unwrap();
    group.bench_function("repair_fallback_cold", |b| {
        b.iter(|| {
            cold.retract(churn.clone()).unwrap();
            let report = cold.submit_late(churn.clone()).unwrap();
            black_box(report.cone_tuples)
        })
    });
    assert!(cold.stats().repairs.fallbacks > 0);
    group.finish();
}

/// Goal-driven point queries vs full materialization. The netting corpus
/// is the magic-sets showcase: a bound-counterparty `exposure` query
/// demands a few hundred tuples of a ~7k-tuple model, so the rewrite
/// should win outright. The ETH-PERP funding query lands in cone mode
/// (the funding pipeline leans on negation/aggregation, which cannot be
/// demand-guarded) — there the comparison bounds the cost of degradation
/// instead.
fn bench_point_query(c: &mut Bench) {
    let netting = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/netting.dmtl"),
    )
    .unwrap();
    let (program, facts) = parse_source(&netting).unwrap();
    let mut db = Database::new();
    db.extend_facts(&facts).unwrap();
    let reasoner = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 20)).unwrap();
    let query = chronolog_core::parse_query("exposure(cp0, X)").unwrap();

    let mut group = c.group("point_query");
    group.sample_size(10);
    group.bench_function("netting_magic", |b| {
        b.iter(|| black_box(reasoner.query(&db, &query).unwrap().answers.len()))
    });
    group.bench_function("netting_full", |b| {
        b.iter(|| {
            let m = reasoner.materialize(&db).unwrap();
            black_box(m.database.query(&query.atom, None).len())
        })
    });

    let config = chronolog_market::paper_intervals().remove(1);
    let trace = chronolog_market::generate(&config);
    let params = chronolog_perp::MarketParams::default();
    let mode = chronolog_perp::program::TimelineMode::EventEpochs;
    let perp_program = chronolog_perp::program::build_program(&params, mode).unwrap();
    let encoded = chronolog_perp::encode::encode_trace(&trace, mode);
    let perp_reasoner = Reasoner::new(
        perp_program,
        ReasonerConfig::default().with_horizon(encoded.horizon.0, encoded.horizon.1),
    )
    .unwrap();
    let frs = chronolog_core::parse_query("frs(F)").unwrap();
    group.bench_function("ethperp_frs_magic", |b| {
        b.iter(|| {
            black_box(
                perp_reasoner
                    .query(&encoded.database, &frs)
                    .unwrap()
                    .answers
                    .len(),
            )
        })
    });
    group.bench_function("ethperp_frs_full", |b| {
        b.iter(|| {
            let m = perp_reasoner.materialize(&encoded.database).unwrap();
            black_box(m.database.query(&frs.atom, None).len())
        })
    });
    group.finish();
}

fn main() {
    let mut c = Bench::from_env();
    bench_interval_sets(&mut c);
    bench_parser(&mut c);
    bench_small_materialization(&mut c);
    bench_join_heavy(&mut c);
    bench_profiling_overhead(&mut c);
    bench_reorder_heavy(&mut c);
    bench_windowed_join(&mut c);
    bench_columnar_scan(&mut c);
    bench_session_stream(&mut c);
    bench_repair(&mut c);
    bench_point_query(&mut c);
    c.set_env("value_size_bytes", std::mem::size_of::<Value>() as u64);
    c.set_env(
        "interval_size_bytes",
        std::mem::size_of::<Interval>() as u64,
    );
}
