//! Persistent worker pool: OS threads spawned once per [`Reasoner`]
//! (lazily, on the first multi-threaded dispatch) and reused across
//! fixpoint iterations and `Session::advance_to` calls. This replaces the
//! per-iteration scoped-thread respawn, whose spawn cost the 2 ms adaptive
//! gate could only mitigate, not remove.
//!
//! Determinism: `run` hands out task indices through a shared atomic
//! counter (work stealing for balance) but reassembles results by task
//! index, so the output is identical to a sequential pass regardless of
//! which worker ran what.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// What one `run` call produced.
pub(crate) struct PoolRun<T> {
    /// Per-task results, in task order (independent of worker scheduling).
    pub results: Vec<T>,
    /// Per participating worker slot: `(slot, tasks_run, busy_time)`.
    pub workers: Vec<(usize, usize, Duration)>,
}

/// A fixed-size pool of detached worker threads fed over a channel.
pub(crate) struct WorkerPool {
    /// Hangs up (terminating the workers) when dropped.
    sender: Mutex<Option<Sender<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
    dispatches: AtomicU64,
    /// Pool constructions observed (1 per pool lifetime); folded into run
    /// stats and reset, so a stratum sees only its own share.
    pub respawns: AtomicU64,
    /// Dispatches that reused the already-running workers.
    pub reuses: AtomicU64,
}

impl WorkerPool {
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx: Arc<Mutex<Receiver<Job>>> = Arc::new(Mutex::new(rx));
        let handles = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                // Named threads so profiler lanes and debugger output
                // identify workers (`worker-0` .. `worker-{n-1}`).
                std::thread::Builder::new()
                    .name(format!("worker-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to pull the next job, then run
                        // it unlocked so workers execute in parallel.
                        let job = rx.lock().expect("pool receiver lock poisoned").recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => return, // sender dropped: shut down
                        }
                    })
                    .expect("spawn pool worker thread")
            })
            .collect();
        WorkerPool {
            sender: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            threads,
            dispatches: AtomicU64::new(0),
            respawns: AtomicU64::new(1),
            reuses: AtomicU64::new(0),
        }
    }

    /// Runs `f(0..n)` across the pool and blocks until every task is done.
    ///
    /// At most `threads` workers participate; each pulls task indices from
    /// a shared counter until none remain. Must only be called from outside
    /// the pool (a job dispatching into its own pool would deadlock); the
    /// engine guarantees this by only fanning out from the stratum loop's
    /// thread. Panics in `f` are caught per worker; the first panic's
    /// payload is re-raised here (via `resume_unwind`) after all
    /// participants have finished, so the original message survives.
    pub fn run<T: Send>(&self, n: usize, f: impl Fn(usize) -> T + Sync) -> PoolRun<T> {
        if self.dispatches.fetch_add(1, Ordering::Relaxed) > 0 {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        let participants = self.threads.min(n).max(1);
        let next = AtomicUsize::new(0);
        let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        type WorkerOut<T> = (usize, usize, Duration, Vec<(usize, T)>);
        let collected: Mutex<Vec<WorkerOut<T>>> = Mutex::new(Vec::with_capacity(participants));
        let latch = (Mutex::new(0usize), Condvar::new());

        {
            let sender = self
                .sender
                .lock()
                .expect("pool sender lock poisoned")
                .as_ref()
                .expect("pool sender alive while pool exists")
                .clone();
            for slot in 0..participants {
                let refs = (&f, &next, &panicked, &collected, &latch);
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let (f, next, panicked, collected, latch) = refs;
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let start = Instant::now();
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        (slot, local.len(), start.elapsed(), local)
                    }));
                    match out {
                        Ok(res) => collected
                            .lock()
                            .expect("pool results lock poisoned")
                            .push(res),
                        Err(payload) => {
                            let mut first =
                                panicked.lock().expect("pool panic payload lock poisoned");
                            // Keep only the first payload: concurrent tasks
                            // may all panic, but the earliest failure site is
                            // the one worth surfacing.
                            first.get_or_insert(payload);
                        }
                    }
                    let mut finished = latch.0.lock().expect("pool latch lock poisoned");
                    *finished += 1;
                    latch.1.notify_all();
                });
                // SAFETY: the job borrows `f`, the counters, and the result
                // sink from this stack frame. `run` blocks on the latch
                // below until every dispatched job has signalled completion
                // (the latch bump runs even when `f` panics, via
                // `catch_unwind`), so all borrows end before this frame
                // returns and the lifetime erasure can never dangle.
                let job: Job = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(
                        job,
                    )
                };
                sender.send(job).expect("worker pool threads alive");
            }
        }

        let mut finished = latch.0.lock().expect("pool latch lock poisoned");
        while *finished < participants {
            finished = latch.1.wait(finished).expect("pool latch lock poisoned");
        }
        drop(finished);
        if let Some(payload) = panicked
            .into_inner()
            .expect("pool panic payload lock poisoned")
        {
            std::panic::resume_unwind(payload);
        }

        let mut per_worker = collected.into_inner().expect("pool results lock poisoned");
        per_worker.sort_by_key(|&(slot, _, _, _)| slot);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut workers = Vec::with_capacity(per_worker.len());
        for (slot, tasks, busy, local) in per_worker {
            workers.push((slot, tasks, busy));
            for (i, value) in local {
                slots[i] = Some(value);
            }
        }
        PoolRun {
            results: slots
                .into_iter()
                .map(|v| v.expect("every task index produces exactly one result"))
                .collect(),
            workers,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Ok(mut sender) = self.sender.lock() {
            *sender = None; // hang up: workers exit on RecvError
        }
        if let Ok(mut handles) = self.handles.lock() {
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4);
        let run = pool.run(100, |i| i * 2);
        assert_eq!(run.results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let tasks: usize = run.workers.iter().map(|&(_, t, _)| t).sum();
        assert_eq!(tasks, 100);
    }

    #[test]
    fn pool_reuse_is_counted() {
        let pool = WorkerPool::new(2);
        pool.run(4, |i| i);
        pool.run(4, |i| i);
        pool.run(4, |i| i);
        assert_eq!(pool.respawns.load(Ordering::Relaxed), 1);
        assert_eq!(pool.reuses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn single_task_still_runs() {
        let pool = WorkerPool::new(3);
        let run = pool.run(1, |i| i + 42);
        assert_eq!(run.results, vec![42]);
    }

    #[test]
    fn borrows_from_the_caller_frame_are_safe() {
        let pool = WorkerPool::new(2);
        let data: Vec<usize> = (0..64).collect();
        let run = pool.run(8, |i| data[i * 8]);
        assert_eq!(run.results, vec![0, 8, 16, 24, 32, 40, 48, 56]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let pool = WorkerPool::new(2);
        pool.run(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn worker_panic_payload_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, |i| {
                if i == 1 {
                    panic!("original failure at task {i}");
                }
                i
            });
        }))
        .expect_err("the worker panic must propagate to the caller");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert_eq!(msg, "original failure at task 1");
        // The pool stays usable after a propagated panic.
        let run = pool.run(3, |i| i);
        assert_eq!(run.results, vec![0, 1, 2]);
    }
}
