//! Property-based validation of the interval algebra.
//!
//! Strategy: generate random interval sets with endpoints on the half-integer
//! grid (so open/closed distinctions matter at sample points), then check
//! every operation pointwise against its set-theoretic definition evaluated
//! by brute force over a grid of sample points.
//!
//! Randomness comes from the deterministic in-repo `SmallRng`, one seed per
//! case, so failures reproduce from the printed case number.

use chronolog_obs::SmallRng;
use mtl_temporal::{Interval, IntervalSet, MetricInterval, Rational};

const CASES: u64 = 96;

fn r(num: i64, den: i64) -> Rational {
    Rational::new(num, den)
}

/// Sample points: integers and half-integers in [-2, 42] (in halves).
fn sample_points() -> Vec<Rational> {
    (-4..=84).map(|k| r(k, 2)).collect()
}

/// Random interval with integer endpoints in [0, 40] and random closedness.
fn gen_interval(rng: &mut SmallRng) -> Interval {
    loop {
        let lo = rng.gen_range_i64(0, 40);
        let len = rng.gen_range_i64(0, 6);
        let lc = rng.gen_bool(0.5);
        let hc = rng.gen_bool(0.5);
        if let Some(i) = Interval::new(
            Rational::integer(lo).into(),
            lc,
            Rational::integer(lo + len).into(),
            hc,
        ) {
            return i;
        }
    }
}

fn gen_set(rng: &mut SmallRng) -> IntervalSet {
    let n = rng.gen_range_usize(0, 6);
    IntervalSet::from_intervals((0..n).map(|_| gen_interval(rng)))
}

/// Random metric interval with small non-negative integer bounds.
fn gen_rho(rng: &mut SmallRng) -> MetricInterval {
    loop {
        let lo = rng.gen_range_i64(0, 4);
        let len = rng.gen_range_i64(0, 4);
        let lc = rng.gen_bool(0.5);
        let hc = rng.gen_bool(0.5);
        let i = Interval::new(
            Rational::integer(lo).into(),
            lc,
            Rational::integer(lo + len).into(),
            hc,
        );
        if let Some(i) = i {
            if let Ok(m) = MetricInterval::new(i) {
                return m;
            }
        }
    }
}

fn for_each_case(test: &str, f: impl Fn(&mut SmallRng)) {
    for case in 0..CASES {
        // Distinct streams per test: hash the test name into the seed.
        let tag = test.bytes().fold(0u64, |h, b| {
            h.wrapping_mul(0x100000001b3).wrapping_add(b as u64)
        });
        let mut rng = SmallRng::seed_from_u64(tag ^ (case.wrapping_mul(0x9E3779B9)));
        f(&mut rng);
    }
}

#[test]
fn invariant_holds_after_inserts() {
    for_each_case("invariant", |rng| {
        gen_set(rng).check_invariant();
    });
}

#[test]
fn union_is_pointwise_or() {
    for_each_case("union", |rng| {
        let (a, b) = (gen_set(rng), gen_set(rng));
        let u = a.union(&b);
        u.check_invariant();
        for t in sample_points() {
            assert_eq!(u.contains(t), a.contains(t) || b.contains(t), "at {t}");
        }
    });
}

#[test]
fn intersection_is_pointwise_and() {
    for_each_case("intersection", |rng| {
        let (a, b) = (gen_set(rng), gen_set(rng));
        let x = a.intersect(&b);
        x.check_invariant();
        for t in sample_points() {
            assert_eq!(x.contains(t), a.contains(t) && b.contains(t), "at {t}");
        }
    });
}

#[test]
fn difference_is_pointwise_and_not() {
    for_each_case("difference", |rng| {
        let (a, b) = (gen_set(rng), gen_set(rng));
        let d = a.difference(&b);
        d.check_invariant();
        for t in sample_points() {
            assert_eq!(d.contains(t), a.contains(t) && !b.contains(t), "at {t}");
        }
    });
}

#[test]
fn complement_is_pointwise_not() {
    for_each_case("complement", |rng| {
        let a = gen_set(rng);
        let horizon = Interval::closed_int(-2, 42);
        let c = a.complement_within(&horizon);
        c.check_invariant();
        for t in sample_points() {
            assert_eq!(c.contains(t), !a.contains(t), "at {t}");
        }
    });
}

/// ◇⁻ρ M holds at t iff ∃s: t − s ∈ ρ and M(s). We verify via the grid:
/// witnesses, if any exist, exist on the grid closure (endpoints are
/// grid-aligned and ρ endpoints are integers), but to be safe we check
/// both directions with quarter-step witnesses.
#[test]
fn diamond_minus_pointwise() {
    for_each_case("diamond_minus", |rng| {
        let a = gen_set(rng);
        let rho = gen_rho(rng);
        let out = a.diamond_minus(&rho);
        out.check_invariant();
        let witnesses: Vec<Rational> = (-80..=400).map(|k| r(k, 8)).collect();
        for t in sample_points() {
            let expected = witnesses
                .iter()
                .any(|&s| rho.as_interval().contains(t - s) && a.contains(s));
            assert_eq!(out.contains(t), expected, "◇⁻{rho} at {t}");
        }
    });
}

/// ⊟ρ M holds at t iff ∀s with t − s ∈ ρ: M(s). Brute-force check over
/// sixteenth-step obligation points (sufficient: all endpoints lie on the
/// eighth-grid, so truth is constant between consecutive grid points).
#[test]
fn box_minus_pointwise() {
    for_each_case("box_minus", |rng| {
        let a = gen_set(rng);
        let rho = gen_rho(rng);
        let out = a.box_minus(&rho);
        out.check_invariant();
        let obligations: Vec<Rational> = (-160..=800).map(|k| r(k, 16)).collect();
        for t in sample_points() {
            let expected = obligations
                .iter()
                .filter(|&&s| rho.as_interval().contains(t - s))
                .all(|&s| a.contains(s));
            assert_eq!(out.contains(t), expected, "⊟{rho} at {t}");
        }
    });
}

#[test]
fn future_operators_are_time_mirrors() {
    for_each_case("mirrors", |rng| {
        let a = gen_set(rng);
        let rho = gen_rho(rng);
        // Mirror the set around 0, apply the past operator, mirror back:
        // must equal the future operator.
        let mirrored = IntervalSet::from_intervals(a.iter().map(mirror_interval));
        let dm =
            IntervalSet::from_intervals(mirrored.diamond_minus(&rho).iter().map(mirror_interval));
        assert_eq!(dm, a.diamond_plus(&rho));
        let bm = IntervalSet::from_intervals(mirrored.box_minus(&rho).iter().map(mirror_interval));
        assert_eq!(bm, a.box_plus(&rho));
    });
}

/// Since, checked against its definition with grid witnesses and grid
/// continuity obligations.
#[test]
fn since_pointwise() {
    for_each_case("since", |rng| {
        let m1 = gen_set(rng);
        let m2 = gen_set(rng);
        let rho = gen_rho(rng);
        let out = m1.since(&m2, &rho);
        out.check_invariant();
        let witnesses: Vec<Rational> = (-80..=400).map(|k| r(k, 8)).collect();
        for t in sample_points() {
            let expected = witnesses.iter().any(|&s| {
                s <= t
                    && rho.as_interval().contains(t - s)
                    && m2.contains(s)
                    && continuity_holds(&m1, s, t)
            });
            assert_eq!(out.contains(t), expected, "S_{rho} at {t}");
        }
    });
}

#[test]
fn until_pointwise() {
    for_each_case("until", |rng| {
        let m1 = gen_set(rng);
        let m2 = gen_set(rng);
        let rho = gen_rho(rng);
        let out = m1.until(&m2, &rho);
        out.check_invariant();
        let witnesses: Vec<Rational> = (-80..=400).map(|k| r(k, 8)).collect();
        for t in sample_points() {
            let expected = witnesses.iter().any(|&s| {
                s >= t
                    && rho.as_interval().contains(s - t)
                    && m2.contains(s)
                    && continuity_holds(&m1, t, s)
            });
            assert_eq!(out.contains(t), expected, "U_{rho} at {t}");
        }
    });
}

/// Coalescing must never change set membership: building from the raw
/// interval list and from pre-unioned pieces agree everywhere.
#[test]
fn coalescing_preserves_membership() {
    for_each_case("coalescing", |rng| {
        let n = rng.gen_range_usize(0, 8);
        let intervals: Vec<Interval> = (0..n).map(|_| gen_interval(rng)).collect();
        let set = IntervalSet::from_intervals(intervals.clone());
        for t in sample_points() {
            let raw = intervals.iter().any(|i| i.contains(t));
            assert_eq!(set.contains(t), raw, "at {t}");
        }
    });
}

/// Does `m1` hold on the whole open interval `(a, b)`? Checked on the
/// sixteenth-step grid, which refines every endpoint in play.
fn continuity_holds(m1: &IntervalSet, a: Rational, b: Rational) -> bool {
    if b <= a {
        return true; // empty obligation
    }
    let step = r(1, 16);
    let mut t = a + step;
    while t < b {
        if !m1.contains(t) {
            return false;
        }
        t = t + step;
    }
    true
}

fn mirror_interval(i: &Interval) -> Interval {
    use mtl_temporal::TimeBound;
    let flip = |b: TimeBound| match b {
        TimeBound::Finite(x) => TimeBound::Finite(-x),
        TimeBound::NegInf => TimeBound::PosInf,
        TimeBound::PosInf => TimeBound::NegInf,
    };
    Interval::new(flip(i.hi()), i.hi_closed(), flip(i.lo()), i.lo_closed())
        .expect("mirror of non-empty interval is non-empty")
}
