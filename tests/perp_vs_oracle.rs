//! The whole ETH-PERP program (epoch variant) lives inside the
//! integer-punctual fragment that the brute-force discrete oracle supports,
//! so the optimized engine's output must coincide with the oracle's on
//! every predicate at every epoch — including the float values.

use chronolog_core::naive::naive_materialize;
use chronolog_core::{IntervalSet, Rational, Reasoner, ReasonerConfig};
use chronolog_market::{generate, ScenarioConfig};
use chronolog_perp::encode::encode_trace;
use chronolog_perp::program::{build_program, TimelineMode};
use chronolog_perp::MarketParams;

/// Renders all derived facts on the integer grid, sorted.
fn engine_text(db: &chronolog_core::Database, lo: i64, hi: i64) -> String {
    let mut lines = Vec::new();
    for (pred, tuple, ivs) in db.iter() {
        for t in lo..=hi {
            if IntervalSet::components_contain(ivs, Rational::integer(t)) {
                let args = (0..tuple.len())
                    .map(|i| tuple.value(i).to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                lines.push(format!("{pred}({args})@{t}"));
            }
        }
    }
    lines.sort();
    lines.join("\n")
}

fn check_scenario(config: &ScenarioConfig) {
    let params = MarketParams::default();
    let trace = generate(config);
    let program = build_program(&params, TimelineMode::EventEpochs).unwrap();
    let encoded = encode_trace(&trace, TimelineMode::EventEpochs);
    let (lo, hi) = encoded.horizon;

    let oracle = naive_materialize(&program, &encoded.database, lo, hi)
        .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", config.name));
    let engine = Reasoner::new(program, ReasonerConfig::default().with_horizon(lo, hi))
        .unwrap()
        .materialize(&encoded.database)
        .unwrap();

    let engine_out = engine_text(&engine.database, lo, hi);
    let oracle_out = oracle.to_text();
    assert_eq!(
        engine_out, oracle_out,
        "engine and brute-force oracle disagree on scenario {}",
        config.name
    );
}

#[test]
fn tiny_market_window() {
    check_scenario(&ScenarioConfig::new(
        "oracle-tiny",
        3,
        0,
        8,
        2,
        150.0,
        1400.0,
    ));
}

#[test]
fn small_market_window_with_negative_skew() {
    check_scenario(&ScenarioConfig::new(
        "oracle-small",
        5,
        1_000_000,
        16,
        4,
        -900.0,
        1280.0,
    ));
}

#[test]
fn medium_market_window() {
    check_scenario(&ScenarioConfig::new(
        "oracle-medium",
        9,
        500,
        28,
        8,
        42.0,
        1510.0,
    ));
}

#[test]
fn window_with_no_trades() {
    // Only deposits and withdrawals: funding accrues on the initial skew
    // but no settlements happen.
    check_scenario(&ScenarioConfig::new(
        "oracle-no-trades",
        13,
        0,
        5,
        0,
        2502.85,
        1290.0,
    ));
}

#[test]
fn several_seeds_agree() {
    for seed in [21, 22, 23, 24] {
        check_scenario(&ScenarioConfig::new(
            "oracle-seeded",
            seed,
            0,
            12,
            3,
            -50.0,
            1333.0,
        ));
    }
}
