//! Plan-equivalence property suite: cost-based join reordering is a pure
//! performance transformation. For every program and input, the reordered
//! engine must produce output byte-identical to the `--no-reorder`
//! baseline, the naive (non-semi-naive) fixpoint, the multi-threaded run,
//! and — on the integer-punctual fragment — the brute-force oracle, which
//! executes the same physical plans through its own driver.
//!
//! Value pools are integer-only on purpose: reordering changes which
//! literal first binds a variable, and a pool mixing `3` and `3.0` would
//! make the printed spelling depend on join order rather than semantics.

use chronolog_core::naive::naive_materialize;
use chronolog_core::{
    parse_program, parse_source, Database, IntervalSet, Program, Rational, Reasoner,
    ReasonerConfig, RunStats, Value,
};
use chronolog_obs::SmallRng;

const T_MIN: i64 = 0;
const T_MAX: i64 = 16;

/// Multi-join programs where ordering actually matters: selective atoms
/// placed last in text, join chains, negation, constraints, temporal
/// windows, recursion (so semi-naive delta variants get their own plans),
/// and aggregation. All stay inside the oracle's integer-punctual fragment.
const PROGRAMS: &[&str] = &[
    // 1. Selective atom textually last: the planner should hoist `sel`.
    "hot(X, Y) :- wide1(X, K), wide2(K, Y), sel(X).\n\
     twice(X, Z) :- hot(X, Y), wide2(Y, Z).",
    // 2. Recursion: delta variants of the second rule are planned per
    //    delta literal; negation runs after the joins either way.
    "reach(X, Y) :- edge(X, Y).\n\
     reach(X, Z) :- reach(X, Y), edge(Y, Z).\n\
     blocked(X) :- reach(X, Y), sel(Y), not edge(Y, X).",
    // 3. Constraint scheduling across a reordered join: the assignment
    //    `V = ...` must still run at the first point all inputs are bound.
    "score(X, V) :- wide1(X, K), wide2(K, Y), V = K * 2 + Y, V > 3.\n\
     delta(X, W) :- score(X, V), sel(S), W = V - S.",
    // 4. Temporal windows feeding a cross join with a selective guard.
    "recent(X) :- diamondminus[0, 3] wide1(X, K).\n\
     pair(X, Y) :- recent(X), recent(Y), sel(X).\n\
     fut(X) :- diamondplus[1, 2] sel(X), wide1(X, K).",
    // 5. Punctual-box recursion with a join and negation in the body.
    "live(X) :- wide1(X, K).\n\
     live(X) :- boxminus live(X), edge(X, Y), not sel(Y).",
    // 6. Aggregation feeding a selective join.
    "tot(X, sum(K)) :- wide1(X, K).\n\
     big(X) :- tot(X, S), sel(X), S > 2.",
];

struct Trace {
    wide1: Vec<(i64, i64, i64)>, // (x, k, t)
    wide2: Vec<(i64, i64, i64)>, // (k, y, t)
    edge: Vec<(i64, i64, i64)>,  // (x, y, t)
    sel: Vec<(i64, i64)>,        // (x, t)
}

fn gen_trace(rng: &mut SmallRng) -> Trace {
    let pair = |rng: &mut SmallRng| {
        (
            rng.gen_range_i64(0, 4),
            rng.gen_range_i64(0, 4),
            rng.gen_range_i64(T_MIN, T_MAX),
        )
    };
    Trace {
        wide1: (0..rng.gen_range_usize(2, 8)).map(|_| pair(rng)).collect(),
        wide2: (0..rng.gen_range_usize(2, 8)).map(|_| pair(rng)).collect(),
        edge: (0..rng.gen_range_usize(0, 6)).map(|_| pair(rng)).collect(),
        sel: (0..rng.gen_range_usize(0, 3))
            .map(|_| (rng.gen_range_i64(0, 4), rng.gen_range_i64(T_MIN, T_MAX)))
            .collect(),
    }
}

fn build_db(trace: &Trace) -> Database {
    let mut db = Database::new();
    for (x, k, t) in &trace.wide1 {
        db.assert_at("wide1", &[Value::Int(*x), Value::Int(*k)], *t);
    }
    for (k, y, t) in &trace.wide2 {
        db.assert_at("wide2", &[Value::Int(*k), Value::Int(*y)], *t);
    }
    for (x, y, t) in &trace.edge {
        db.assert_at("edge", &[Value::Int(*x), Value::Int(*y)], *t);
    }
    for (x, t) in &trace.sel {
        db.assert_at("sel", &[Value::Int(*x)], *t);
    }
    db
}

fn materialize_text(
    program: &Program,
    db: &Database,
    tweak: impl FnOnce(&mut ReasonerConfig),
) -> String {
    let mut config = ReasonerConfig::default().with_horizon(T_MIN, T_MAX);
    tweak(&mut config);
    Reasoner::new(program.clone(), config)
        .unwrap()
        .materialize(db)
        .unwrap()
        .database
        .to_facts_text()
}

/// Engine output on the integer grid, comparable with the oracle's text.
fn engine_grid_text(program: &Program, db: &Database) -> String {
    let m = Reasoner::new(
        program.clone(),
        ReasonerConfig::default().with_horizon(T_MIN, T_MAX),
    )
    .unwrap()
    .materialize(db)
    .unwrap();
    let mut lines = Vec::new();
    for (pred, tuple, ivs) in m.database.iter() {
        for t in T_MIN..=T_MAX {
            if IntervalSet::components_contain(ivs, Rational::integer(t)) {
                let args = (0..tuple.len())
                    .map(|i| tuple.value(i).to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                lines.push(format!("{pred}({args})@{t}"));
            }
        }
    }
    lines.sort();
    lines.join("\n")
}

/// One case: the reordered run must agree byte-for-byte with every other
/// driver configuration, and with the oracle.
fn check_case(program_src: &str, trace: &Trace, label: &str) {
    let program = parse_program(program_src).unwrap();
    let db = build_db(trace);
    let reordered = materialize_text(&program, &db, |_| {});
    let baseline = materialize_text(&program, &db, |c| c.cost_based_reorder = false);
    assert_eq!(reordered, baseline, "{label}: reorder changed the output");
    let naive_fixpoint = materialize_text(&program, &db, |c| c.semi_naive = false);
    assert_eq!(
        reordered, naive_fixpoint,
        "{label}: naive fixpoint diverges"
    );
    let threaded = materialize_text(&program, &db, |c| c.threads = 4);
    assert_eq!(reordered, threaded, "{label}: threaded run diverges");
    let row_store = materialize_text(&program, &db, |c| c.row_store = true);
    assert_eq!(reordered, row_store, "{label}: row-store layout diverges");
    let oracle = naive_materialize(&program, &db, T_MIN, T_MAX).unwrap();
    assert_eq!(
        engine_grid_text(&program, &db),
        oracle.to_text(),
        "{label}: oracle diverges"
    );
}

#[test]
fn reordered_plans_are_equivalent_on_random_programs() {
    // 60 seeded cases (>= the 48 the roadmap asks for), spread over every
    // template program.
    for case in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(0x0907DE ^ case);
        let trace = gen_trace(&mut rng);
        let program_idx = (case as usize) % PROGRAMS.len();
        check_case(
            PROGRAMS[program_idx],
            &trace,
            &format!("case {case} program {program_idx}"),
        );
    }
}

#[test]
fn reordered_plans_are_equivalent_on_the_corpus() {
    for name in ["fibonacci", "funding", "margin", "netting", "sla"] {
        let path = format!("{}/../../corpus/{name}.dmtl", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap();
        let (program, facts) = parse_source(&src).unwrap();
        let mut db = Database::new();
        db.extend_facts(&facts).unwrap();
        let texts: Vec<String> = [
            |_c: &mut ReasonerConfig| {},
            |c: &mut ReasonerConfig| c.cost_based_reorder = false,
            |c: &mut ReasonerConfig| c.semi_naive = false,
            |c: &mut ReasonerConfig| c.threads = 4,
            |c: &mut ReasonerConfig| c.row_store = true,
            |c: &mut ReasonerConfig| {
                c.row_store = true;
                c.threads = 4;
            },
        ]
        .into_iter()
        .map(|tweak| {
            let mut config = ReasonerConfig::default().with_horizon(0, 40);
            tweak(&mut config);
            Reasoner::new(program.clone(), config)
                .unwrap()
                .materialize(&db)
                .unwrap()
                .database
                .to_facts_text()
        })
        .collect();
        assert!(
            texts.windows(2).all(|w| w[0] == w[1]),
            "{name}: configurations disagree"
        );
    }
}

/// Adaptive replanning matrix: misestimate-corrected cost estimates are a
/// pure estimation change. Whatever order or access path the corrected
/// planner picks, every program and input must land byte-identical to the
/// `--no-adaptive` baseline, sequential and threaded alike.
#[test]
fn adaptive_replanning_is_equivalent_on_random_programs() {
    for case in 0..60u64 {
        let mut rng = SmallRng::seed_from_u64(0xADA9 ^ (case << 3));
        let trace = gen_trace(&mut rng);
        let program_idx = (case as usize) % PROGRAMS.len();
        let program = parse_program(PROGRAMS[program_idx]).unwrap();
        let db = build_db(&trace);
        let texts: Vec<String> = [(true, 1), (false, 1), (true, 4), (false, 4)]
            .into_iter()
            .map(|(adaptive, threads)| {
                materialize_text(&program, &db, |c| {
                    c.adaptive = adaptive;
                    c.threads = threads;
                })
            })
            .collect();
        assert!(
            texts.windows(2).all(|w| w[0] == w[1]),
            "case {case} program {program_idx}: adaptive matrix disagrees"
        );
    }
}

/// A skewed join inside punctual recursion misestimates every iteration:
/// `fan` holds 64 tuples over 8 distinct keys (est 8 rows per probe), but
/// the recursion only ever probes the heavy key's 57. The sustained error
/// must force an adaptive replan whose corrected estimate at least halves
/// the observed error factor — without moving a single fact in any
/// layout or thread count.
#[test]
fn adaptive_replanning_corrects_a_sustained_misestimate() {
    let src = "run(X) :- seed(X).\n\
               run(X) :- boxminus[1, 1] run(X), fan(X, Y).";
    let program = parse_program(src).unwrap();
    let mut db = Database::new();
    db.assert_at("seed", &[Value::Int(0)], 0);
    let span = chronolog_core::Interval::closed_int(0, 24);
    for i in 0..57 {
        db.assert_over("fan", &[Value::Int(0), Value::Int(100 + i)], span);
    }
    for k in 1..8 {
        db.assert_over("fan", &[Value::Int(k), Value::Int(0)], span);
    }
    let run = |adaptive: bool, threads: usize, row_store: bool| {
        let m = Reasoner::new(
            program.clone(),
            ReasonerConfig {
                adaptive,
                threads,
                row_store,
                ..ReasonerConfig::default().with_horizon(0, 24)
            },
        )
        .unwrap()
        .materialize(&db)
        .unwrap();
        (m.database.to_facts_text(), m.stats)
    };
    let (facts, stats) = run(true, 1, false);
    let (base_facts, base_stats) = run(false, 1, false);
    assert_eq!(facts, base_facts, "adaptivity moved a fact");
    for (adaptive, threads, row_store) in [
        (true, 4, false),
        (false, 4, false),
        (true, 1, true),
        (false, 1, true),
        (true, 4, true),
        (false, 4, true),
    ] {
        let (other, _) = run(adaptive, threads, row_store);
        assert_eq!(
            facts, other,
            "adaptive={adaptive} threads={threads} row_store={row_store} moved a fact"
        );
    }
    assert!(
        stats.replans_triggered > 0,
        "sustained misestimate never forced a replan: {stats:?}"
    );
    assert_eq!(
        base_stats.replans_triggered, 0,
        "adaptivity off must not trigger feedback replans"
    );
    let worst = |s: &RunStats| s.plan_feedback().first().map(|f| f.error_factor).unwrap();
    let baseline_err = worst(&base_stats);
    let adaptive_err = worst(&stats);
    assert!(
        baseline_err >= 4.0,
        "workload is supposed to misestimate hard: x{baseline_err:.1}"
    );
    assert!(
        adaptive_err * 2.0 <= baseline_err,
        "correction did not halve the error: x{adaptive_err:.1} vs x{baseline_err:.1}"
    );
}

#[test]
fn planner_actually_reorders_a_selective_last_program() {
    // One wide-first body where the cost model must hoist the selective
    // atom: proves the equivalence suite exercises real reorders rather
    // than vacuously comparing identical orders.
    let src = "hot(X, Y) :- wide1(X, K), wide2(K, Y), sel(X).";
    let program = parse_program(src).unwrap();
    let mut db = Database::new();
    for i in 0..20 {
        db.assert_at("wide1", &[Value::Int(i % 5), Value::Int(i % 3)], 0);
        db.assert_at("wide2", &[Value::Int(i % 3), Value::Int(i % 7)], 0);
    }
    db.assert_at("sel", &[Value::Int(2)], 0);
    let run = |reorder: bool| {
        let m = Reasoner::new(
            program.clone(),
            ReasonerConfig {
                cost_based_reorder: reorder,
                ..ReasonerConfig::default().with_horizon(0, 4)
            },
        )
        .unwrap()
        .materialize(&db)
        .unwrap();
        (m.database.to_facts_text(), m.stats)
    };
    let (with_reorder, stats) = run(true);
    let (without, baseline_stats) = run(false);
    assert_eq!(with_reorder, without);
    assert!(
        stats.reorders_applied > 0,
        "planner never reordered: {stats:?}"
    );
    assert_eq!(baseline_stats.reorders_applied, 0);
    // The reordered run probes/scans strictly fewer tuples than the
    // textual order on this selective-last shape.
    assert!(
        stats.scanned_tuples + stats.probed_tuples
            < baseline_stats.scanned_tuples + baseline_stats.probed_tuples,
        "reorder saved no work: {} vs {}",
        stats.scanned_tuples + stats.probed_tuples,
        baseline_stats.scanned_tuples + baseline_stats.probed_tuples
    );
}
