//! Property test for the live-session execution model: streaming a fact
//! log through a warm [`Session`] (one `advance_to` per event timestamp)
//! must land on exactly the database a cold one-shot materialization of
//! the same log produces. The session's boundary-slice seeding, the
//! clone-preserved secondary indexes, and the time index are all pure
//! access-path machinery — none of them may leak into the result.
//!
//! Generation mirrors `parallel_equivalence.rs`: deterministic in-repo
//! `SmallRng`, one seed per case, every failure reproducible from the
//! printed case number. Programs are restricted to the session-eligible
//! forward-propagating fragment (past operators, finite windows, no head
//! operators) — which the generator family already satisfies.

use chronolog_core::{Database, Fact, Reasoner, ReasonerConfig, Value};
use chronolog_obs::SmallRng;

const T_MIN: i64 = 0;
const T_MAX: i64 = 16;

/// Random stratified program over EDB e1/1, e2/2 and IDB p0..p3, using
/// only past operators with finite windows (the session fragment).
fn gen_program(rng: &mut SmallRng) -> String {
    let idb = [("p0", 1usize), ("p1", 2usize), ("p2", 1), ("p3", 2)];
    let n = rng.gen_range_usize(2, 7);
    let mut rules = Vec::new();
    for _ in 0..n {
        let head = rng.gen_range_usize(0, idb.len());
        let (head_name, head_arity) = idb[head];
        let head_args = if head_arity == 1 { "X" } else { "X, Y" };
        let mut body = Vec::new();
        body.push(if head_arity == 1 {
            "e2(X, _)".to_string()
        } else {
            "e2(X, Y)".to_string()
        });
        for _ in 0..rng.gen_range_usize(0, 3) {
            let src = rng.gen_range_usize(0, 2 + head + 1);
            let atom = match src {
                0 => "e1(X)".to_string(),
                1 => "e2(X, _)".to_string(),
                k => {
                    let (name, arity) = idb[k - 2];
                    if arity == 1 {
                        format!("{name}(X)")
                    } else {
                        format!("{name}(X, _)")
                    }
                }
            };
            let wlo = rng.gen_range_i64(0, 3);
            let whi = wlo + rng.gen_range_i64(0, 3);
            body.push(match rng.gen_range_usize(0, 4) {
                0 => format!("diamondminus[{wlo}, {whi}] {atom}"),
                1 => format!("boxminus[1, 1] {atom}"),
                _ => atom,
            });
        }
        if head > 0 && rng.gen_bool(0.4) {
            let (name, arity) = idb[rng.gen_range_usize(0, head)];
            body.push(if arity == 1 {
                format!("not {name}(X)")
            } else {
                format!("not {name}(X, _)")
            });
        }
        rules.push(format!("{head_name}({head_args}) :- {}.", body.join(", ")));
    }
    rules.join("\n")
}

/// A random event log: punctual EDB facts with skewed join keys, each
/// tagged with its timestamp so the warm run can replay them in order.
///
/// Unlike `parallel_equivalence.rs`, the pool avoids `Int`/`Num` spellings
/// of the same number (`3` vs `3.0`): which spelling of a semantically
/// duplicated *derived* fact materializes first legitimately depends on
/// delta scheduling, and the warm path runs more delta rounds than the
/// cold one. Spelling-unambiguous keys keep byte equality the right
/// assertion here; the colliding pool is exercised by the access-path
/// tests instead.
fn gen_events(rng: &mut SmallRng) -> Vec<(&'static str, Vec<Value>, i64)> {
    let pool = [
        Value::Int(0),
        Value::Int(1),
        Value::Int(2),
        Value::Int(3),
        Value::num(1.5),
        Value::num(3.5),
        Value::num(2.5),
    ];
    let mut events = Vec::new();
    for _ in 0..rng.gen_range_usize(5, 40) {
        let t = rng.gen_range_i64(T_MIN, T_MAX + 1);
        if rng.gen_bool(0.3) {
            let x = pool[rng.gen_range_usize(0, pool.len())];
            events.push(("e1", vec![x], t));
        } else {
            let x = pool[rng.gen_range_usize(0, pool.len())];
            let y = pool[rng.gen_range_usize(0, pool.len())];
            events.push(("e2", vec![x, y], t));
        }
    }
    events
}

#[test]
fn warm_session_chain_equals_cold_materialization() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0x5E5510 ^ (case << 4));
        let src = gen_program(&mut rng);
        let events = gen_events(&mut rng);
        let program = chronolog_core::parse_program(&src)
            .unwrap_or_else(|e| panic!("case {case}: generated program must parse: {e}\n{src}"));

        // Cold: one batch materialization over the whole log.
        let mut db = Database::new();
        for (pred, args, t) in &events {
            db.assert_at(pred, args, *t);
        }
        let cold = Reasoner::new(
            program.clone(),
            ReasonerConfig::default().with_horizon(T_MIN, T_MAX),
        )
        .unwrap_or_else(|e| panic!("case {case}: program must validate: {e}\n{src}"))
        .materialize(&db)
        .unwrap();

        // Warm: facts at the start instant seed the session, the rest are
        // submitted in timestamp order with one advance per distinct time.
        let mut initial = Database::new();
        for (pred, args, t) in events.iter().filter(|(_, _, t)| *t <= T_MIN) {
            initial.assert_at(pred, args, *t);
        }
        // Both storage layouts drive the same warm chain: the columnar
        // default and the --row-store ablation must each land on the cold
        // output byte-for-byte.
        let mut sessions = [false, true].map(|row_store| {
            let mut session = Reasoner::new(
                program.clone(),
                ReasonerConfig {
                    row_store,
                    ..ReasonerConfig::default()
                },
            )
            .unwrap()
            .into_session(&initial, T_MIN)
            .unwrap_or_else(|e| {
                panic!("case {case}: program must be session-eligible: {e}\n{src}")
            });
            let mut times: Vec<i64> = events
                .iter()
                .map(|(_, _, t)| *t)
                .filter(|&t| t > T_MIN)
                .collect();
            times.sort_unstable();
            times.dedup();
            for &t in &times {
                for (pred, args, et) in events.iter().filter(|(_, _, et)| *et == t) {
                    session
                        .submit(Fact::at(pred, args.clone(), *et))
                        .unwrap_or_else(|e| panic!("case {case}: submit at {t}: {e}"));
                }
                session.advance_to(t).unwrap();
            }
            session.advance_to(T_MAX).unwrap();
            session
        });
        assert_eq!(
            sessions[0].database().to_facts_text(),
            sessions[1].database().to_facts_text(),
            "case {case}: row-store session diverged from columnar\n{src}"
        );
        let session = &mut sessions[0];

        // Bit-identical final state: the facts text is the canonical
        // serialization, so byte equality pins tuples, intervals, and
        // their rendering order.
        assert_eq!(
            session.database().to_facts_text(),
            cold.database.to_facts_text(),
            "case {case}: warm session diverged from cold run\n{src}"
        );

        // Stats invariants shared by both paths: identical final component
        // count (same database), and the join-path accounting identities.
        let warm_stats = session.stats();
        assert_eq!(
            warm_stats.total_components, cold.stats.total_components,
            "case {case}: component counts diverge"
        );
        for (label, stats) in [("warm", warm_stats), ("cold", &cold.stats)] {
            assert!(
                stats.time_index_probes <= stats.index_probes,
                "case {case} ({label}): time-index probes are a subset of index probes"
            );
            assert!(
                stats.index_probes + stats.full_scans > 0,
                "case {case} ({label}): every eval_rel call lands in a counter"
            );
        }
    }
}
