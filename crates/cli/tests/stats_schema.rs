//! Golden test pinning the `--stats-json` report schema.
//!
//! The report is a public, machine-readable interface: downstream tooling
//! (dashboards, the bench harness, CI trend tracking) parses it by field
//! name. This test renders the report's *type signature* — field names and
//! value types, recursively — and compares it against a checked-in
//! fixture. A mismatch means the schema changed: either revert, or bump
//! `REPORT_SCHEMA_VERSION` and regenerate the fixture with the printed
//! signature.

use chronolog_cli::run_cli;
use chronolog_obs::Json;

const FIXTURE: &str = include_str!("fixtures/stats_schema.txt");

const DEMO: &str = "isOpen(A) :- tranM(A, M).\n\
                    isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
                    tranM(acc1, 20.0)@3.\n\
                    withdraw(acc1)@8.";

fn fake_fs(path: &'static str, text: &'static str) -> impl Fn(&str) -> std::io::Result<String> {
    move |p: &str| {
        if p == path {
            Ok(text.to_string())
        } else {
            Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no such test file",
            ))
        }
    }
}

#[test]
fn stats_json_schema_is_stable() {
    let dir = std::env::temp_dir().join("chronolog-schema-test");
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("report.json");
    run_cli(
        &[
            "run".to_string(),
            "demo.dmtl".to_string(),
            "--horizon".to_string(),
            "0..20".to_string(),
            "--stats-json".to_string(),
            out.to_str().unwrap().to_string(),
        ],
        fake_fs("demo.dmtl", DEMO),
    )
    .unwrap();
    let report = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    std::fs::remove_file(&out).ok();

    // The `metrics` section is a live registry snapshot — its keys depend
    // on what else ran in this process, so pin only its presence and type.
    let mut pinned = report.clone();
    if let Some(metrics) = report.get("metrics") {
        pinned.set(
            "metrics",
            if metrics.as_object().is_some() {
                Json::object()
            } else {
                Json::Null
            },
        );
    }
    let signature = pinned.type_signature();
    assert_eq!(
        signature.trim(),
        FIXTURE.trim(),
        "\n--- actual signature (paste into tests/fixtures/stats_schema.txt \
         if the change is intentional) ---\n{signature}\n"
    );
}
