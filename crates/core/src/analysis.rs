//! Static analysis of DatalogMTL programs: safety, the predicate dependency
//! graph (Figure 1 of the paper is this graph for the ETH-PERP program), and
//! stratification of negation and aggregation.

use crate::ast::{Expr, Literal, Program, Rule, Term};
use crate::error::{Error, Result};
use crate::symbol::Symbol;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Kind of a dependency edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Positive body occurrence: `σ(P) ≤ σ(H)`.
    Positive,
    /// Negated body occurrence: `σ(P) < σ(H)`.
    Negative,
    /// Body occurrence feeding an aggregate head: `σ(P) < σ(H)`
    /// (stratified aggregation).
    Aggregated,
}

/// The predicate dependency graph of a program.
#[derive(Debug, Default)]
pub struct DependencyGraph {
    /// All predicates (body or head).
    pub predicates: Vec<Symbol>,
    /// Edges `(from, to, kind)`: `from` occurs in a body whose head is `to`.
    pub edges: Vec<(Symbol, Symbol, EdgeKind)>,
}

impl DependencyGraph {
    /// Builds the dependency graph of a program.
    pub fn build(program: &Program) -> DependencyGraph {
        let mut predicates = HashSet::new();
        let mut edges = HashSet::new();
        for rule in &program.rules {
            let head = rule.head.atom.pred;
            predicates.insert(head);
            let aggregated = rule.head.aggregate.is_some();
            for lit in &rule.body {
                let (atoms, base_kind) = match lit {
                    Literal::Pos(m) => (m.atoms(), EdgeKind::Positive),
                    Literal::Neg(m) => (m.atoms(), EdgeKind::Negative),
                    Literal::Constraint(..) => continue,
                };
                for a in atoms {
                    predicates.insert(a.pred);
                    let kind = if aggregated && base_kind == EdgeKind::Positive {
                        EdgeKind::Aggregated
                    } else {
                        base_kind
                    };
                    edges.insert((a.pred, head, kind));
                }
            }
        }
        let mut predicates: Vec<_> = predicates.into_iter().collect();
        predicates.sort();
        let mut edges: Vec<_> = edges.into_iter().collect();
        edges.sort();
        DependencyGraph { predicates, edges }
    }

    /// Renders the graph in Graphviz DOT format (regenerates Figure 1).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph dependencies {\n  rankdir=BT;\n");
        for p in &self.predicates {
            let _ = writeln!(out, "  \"{p}\";");
        }
        for (from, to, kind) in &self.edges {
            let style = match kind {
                EdgeKind::Positive => "",
                EdgeKind::Negative => " [style=dashed, label=\"¬\"]",
                EdgeKind::Aggregated => " [style=dotted, label=\"agg\"]",
            };
            let _ = writeln!(out, "  \"{from}\" -> \"{to}\"{style};");
        }
        out.push_str("}\n");
        out
    }
}

/// The stratification of a program: a stratum index per predicate and the
/// rules grouped by the stratum of their head.
#[derive(Debug)]
pub struct Stratification {
    /// Stratum of each predicate (EDB predicates sit at 0).
    pub strata: HashMap<Symbol, usize>,
    /// Rule indices (into `program.rules`) per stratum, in ascending order.
    pub rules_by_stratum: Vec<Vec<usize>>,
}

impl Stratification {
    /// Computes a stratification, or fails when negation/aggregation occurs
    /// in a dependency cycle.
    ///
    /// Classic relaxation: `σ(H) ≥ σ(P)` over positive edges and
    /// `σ(H) ≥ σ(P) + 1` over negative/aggregated edges; a value exceeding
    /// the predicate count witnesses a strict cycle.
    pub fn compute(program: &Program) -> Result<Stratification> {
        let graph = DependencyGraph::build(program);
        let n = graph.predicates.len();
        let mut strata: HashMap<Symbol, usize> =
            graph.predicates.iter().map(|p| (*p, 0usize)).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for (from, to, kind) in &graph.edges {
                let need = match kind {
                    EdgeKind::Positive => strata[from],
                    EdgeKind::Negative | EdgeKind::Aggregated => strata[from] + 1,
                };
                let cur = strata[to];
                if need > cur {
                    if need > n {
                        return Err(Error::NotStratifiable(format!(
                            "negation or aggregation in a cycle through predicate {to}"
                        )));
                    }
                    strata.insert(*to, need);
                    changed = true;
                }
            }
        }
        let max = strata.values().copied().max().unwrap_or(0);
        let mut rules_by_stratum = vec![Vec::new(); max + 1];
        for (i, rule) in program.rules.iter().enumerate() {
            rules_by_stratum[strata[&rule.head.atom.pred]].push(i);
        }
        Ok(Stratification {
            strata,
            rules_by_stratum,
        })
    }

    /// Number of strata.
    pub fn count(&self) -> usize {
        self.rules_by_stratum.len()
    }
}

/// Checks every rule of the program for safety and arity consistency.
pub fn check_program(program: &Program) -> Result<()> {
    let mut arities: HashMap<Symbol, usize> = HashMap::new();
    for rule in &program.rules {
        check_rule_safety(rule)?;
        let mut check_arity = |pred: Symbol, arity: usize| -> Result<()> {
            match arities.get(&pred) {
                Some(&a) if a != arity => Err(Error::ArityMismatch(format!(
                    "predicate {pred} used with arity {arity} and {a}"
                ))),
                _ => {
                    arities.insert(pred, arity);
                    Ok(())
                }
            }
        };
        check_arity(rule.head.atom.pred, rule.head.atom.arity())?;
        for lit in &rule.body {
            if let Literal::Pos(m) | Literal::Neg(m) = lit {
                for a in m.atoms() {
                    check_arity(a.pred, a.arity())?;
                }
            }
        }
    }
    Ok(())
}

/// Safety: every head variable and every constraint variable must be bound
/// by positive body atoms (or by a chain of `X = expr` assignments rooted in
/// bound variables); variables under negation must be bound or local to
/// their literal.
fn check_rule_safety(rule: &Rule) -> Result<()> {
    let rule_name = || rule.label.clone().unwrap_or_else(|| rule.to_string());
    let mut bound: HashSet<Symbol> = HashSet::new();
    for lit in &rule.body {
        if let Literal::Pos(m) = lit {
            bound.extend(m.variables());
        }
    }
    // Assignment closure: X = expr (or expr = X) binds X once expr is bound.
    let mut changed = true;
    while changed {
        changed = false;
        for lit in &rule.body {
            if let Literal::Constraint(lhs, crate::ast::CmpOp::Eq, rhs) = lit {
                for (a, b) in [(lhs, rhs), (rhs, lhs)] {
                    if let Expr::Term(Term::Var(v)) = a {
                        if !bound.contains(v) && b.variables().iter().all(|w| bound.contains(w)) {
                            bound.insert(*v);
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    // All constraint variables must now be bound.
    for lit in &rule.body {
        if let Literal::Constraint(lhs, _, rhs) = lit {
            for v in lhs.variables().into_iter().chain(rhs.variables()) {
                if !bound.contains(&v) {
                    return Err(Error::Unsafe(format!(
                        "variable {v} in constraint of rule `{}` is never bound",
                        rule_name()
                    )));
                }
            }
        }
    }
    // Negated literals: unbound variables must be local to a single literal.
    let mut seen_elsewhere: HashMap<Symbol, usize> = HashMap::new();
    for (i, lit) in rule.body.iter().enumerate() {
        if let Literal::Neg(m) = lit {
            for v in m.variables() {
                if !bound.contains(&v) {
                    if let Some(j) = seen_elsewhere.get(&v) {
                        if *j != i {
                            return Err(Error::Unsafe(format!(
                                "unbound variable {v} shared across negated literals in rule `{}`",
                                rule_name()
                            )));
                        }
                    }
                    seen_elsewhere.insert(v, i);
                }
            }
        }
    }
    for v in rule.head.atom.variables() {
        if !bound.contains(&v) {
            return Err(Error::Unsafe(format!(
                "head variable {v} of rule `{}` is never bound",
                rule_name()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn stratifies_negation_chain() {
        let p = parse_program(
            "a(X) :- e(X).\n\
             b(X) :- a(X), not c(X).\n\
             c(X) :- e(X), e(X).\n",
        )
        .unwrap();
        let s = Stratification::compute(&p).unwrap();
        assert!(s.strata[&Symbol::new("c")] < s.strata[&Symbol::new("b")]);
        assert_eq!(s.strata[&Symbol::new("e")], 0);
    }

    #[test]
    fn rejects_negative_cycle() {
        let p = parse_program(
            "a(X) :- e(X), not b(X).\n\
             b(X) :- a(X).\n",
        )
        .unwrap();
        assert!(matches!(
            Stratification::compute(&p),
            Err(Error::NotStratifiable(_))
        ));
    }

    #[test]
    fn positive_recursion_is_fine() {
        let p = parse_program("a(X) :- boxminus a(X).\na(X) :- e(X).").unwrap();
        let s = Stratification::compute(&p).unwrap();
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn aggregation_is_strict_like_negation() {
        let p = parse_program("e(sum(S)) :- m(A, S).\nskew(K) :- e(K).").unwrap();
        let s = Stratification::compute(&p).unwrap();
        assert!(s.strata[&Symbol::new("m")] < s.strata[&Symbol::new("e")]);
    }

    #[test]
    fn rejects_aggregation_in_cycle() {
        let p = parse_program("e(sum(S)) :- e(S).").unwrap();
        assert!(Stratification::compute(&p).is_err());
    }

    #[test]
    fn safety_accepts_assignment_chains() {
        let p = parse_program("h(A, M) :- m(A, X), t(A, Y), Z = X + Y, M = Z * 2.").unwrap();
        check_program(&p).unwrap();
    }

    #[test]
    fn safety_rejects_unbound_head_var() {
        let p = parse_program("h(A, M) :- m(A, X).").unwrap();
        assert!(matches!(check_program(&p), Err(Error::Unsafe(_))));
    }

    #[test]
    fn safety_rejects_unbound_constraint_var() {
        let p = parse_program("h(A) :- m(A), X > 3.").unwrap();
        assert!(matches!(check_program(&p), Err(Error::Unsafe(_))));
    }

    #[test]
    fn safety_allows_local_unbound_under_negation() {
        // `not order(A, _)`: the wildcard is a negated existential.
        let p = parse_program("h(A) :- m(A), not order(A, _).").unwrap();
        check_program(&p).unwrap();
    }

    #[test]
    fn safety_rejects_shared_unbound_negated_var() {
        let p = parse_program("h(A) :- m(A), not p(A, X), not q(A, X).").unwrap();
        assert!(matches!(check_program(&p), Err(Error::Unsafe(_))));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let p = parse_program("h(A) :- m(A, B).\ng(X) :- m(X).").unwrap();
        assert!(matches!(check_program(&p), Err(Error::ArityMismatch(_))));
    }

    #[test]
    fn dependency_graph_dot_contains_all_predicates() {
        let p = parse_program("b(X) :- a(X), not c(X).").unwrap();
        let g = DependencyGraph::build(&p);
        let dot = g.to_dot();
        for name in ["a", "b", "c"] {
            assert!(dot.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn head_vars_bound_by_time_capture_are_safe() {
        let p = parse_program("tdiff(T, T) :- start()@T.").unwrap();
        check_program(&p).unwrap();
    }
}
