//! The `chronolog` command-line interface, as a testable library.
//!
//! ```text
//! chronolog check  <file>...                      validate a program
//! chronolog run    <file>... [options]            materialize and report
//! chronolog graph  <file>...                      dependency graph (DOT)
//! chronolog validate-trace <file>                 check a --profile trace
//!
//! run options:
//!   --horizon LO..HI      reasoning horizon (integers; default unbounded)
//!   --threads N           evaluation worker threads (default 1; output is
//!                         identical for every N)
//!   --query 'p(X, 1)'     print facts matching an atom pattern (repeatable).
//!                         An optional `@t` / `@[lo, hi]` suffix restricts
//!                         the answer to a time window. Queries are
//!                         goal-driven by default: the program is rewritten
//!                         with magic-sets demand guards and only the
//!                         query's dependency cone is materialized
//!   --no-magic            answer queries from a full materialization
//!                         instead of the goal-driven rewrite (ablation;
//!                         byte-identical answers)
//!   --explain-query       print the magic-sets rewrite report for each
//!                         --query (cone, adornments, rewritten rules,
//!                         demand seeds) before the answers
//!   --explain 'p(a)@5'    print the derivation tree of a ground fact
//!   --facts               dump the full materialization as fact text
//!   --stats               print run statistics (totals + per-rule hot list)
//!   --stats-json FILE     write a machine-readable run report (JSON)
//!   --trace FILE          write structured engine events (JSON Lines)
//!   --session             stream the facts through a live session instead
//!                         of one batch materialization (requires --horizon;
//!                         the output must be byte-identical to the batch)
//!   --stream FILE         apply a correction stream to the session after
//!                         the facts are staged (requires --session). One
//!                         command per line: `advance T` moves the
//!                         watermark, `retract <fact>.` removes a base
//!                         fact, a bare `<fact>.` is submitted (late facts
//!                         trigger an incremental repair). `#`/`%` lines
//!                         and blanks are skipped.
//!   --no-repair           disable incremental repair: every out-of-order
//!                         correction falls back to cold re-materialization
//!   --repair-budget N     max tuples the repair cone may touch before
//!                         falling back to cold re-materialization
//!   --no-time-index       disable the sorted-endpoint time index (ablation)
//!   --no-reorder          disable cost-based join reordering (ablation;
//!                         rules run in textual delta-first order)
//!   --no-adaptive         disable adaptive planner feedback (ablation;
//!                         sustained misestimates no longer force replans
//!                         with corrected estimates — identical facts)
//!   --row-store           store relations row-major instead of the default
//!                         columnar layout (ablation; byte-identical output)
//!   --explain-plans       print each rule's compiled physical plan with
//!                         the chosen access paths and estimated vs. actual
//!                         rows per step, plus the top planner misestimates
//!   --profile FILE        write a Chrome trace_event JSON profile (open in
//!                         Perfetto or chrome://tracing; one track per
//!                         evaluation thread)
//!   --profile-folded FILE write folded-stack lines for flamegraph tooling
//! ```
//!
//! Files may mix rules and facts; `-` reads standard input.

#![warn(missing_docs)]

use chronolog_core::{
    parse_query, parse_source, Atom, Database, DependencyGraph, Error, Fact, Literal, MetricAtom,
    Program, Query, Rational, Reasoner, ReasonerConfig, RunStats, Stratification, Term, Value,
};
use chronolog_core::{Interval, IntervalSet, Tuple};
use chronolog_obs::{Json, Registry, Tracer};
use std::fmt::Write as _;

/// Schema version of the `--stats-json` report; bump on breaking changes.
/// v2 added join-path counters to `totals` and the `workers` section.
/// v3 added the time-index counters `time_index_probes`,
/// `interval_clips_avoided`, and `index_rebuilds_avoided` to `totals`.
/// v4 added `probed_tuples` to `totals`, the `planner` section (plan
/// compilation counters plus per-rule plans with estimated vs. actual
/// rows), and the `pool` section (worker-pool reuse counters).
/// v5 added `planner.misestimates` (per-plan actual-vs-estimated feedback,
/// worst first) and `executions` / `actual_rows` to each `planner.plans`
/// entry.
/// v6 added the `repairs` section (out-of-order correction accounting:
/// attempted / incremental / fallbacks / budget_trips / cone_tuples /
/// overdeleted_components).
/// v7 added the `storage` section (relation-storage layout, interner and
/// arena figures, clone traffic).
/// v8 added `planner.replans_triggered` (adaptive-feedback replans), a
/// `corrections` array (learned per-literal correction factors) to each
/// `planner.plans` entry, and `access_path` to each plan step.
/// v9 added the `magic` section (goal-driven query evaluation: mode,
/// degradation flag, cone/rewrite counters, demanded vs. magic tuples).
pub const REPORT_SCHEMA_VERSION: u64 = 9;

/// CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }

    fn failed(msg: impl std::fmt::Display) -> CliError {
        CliError {
            message: msg.to_string(),
            code: 1,
        }
    }
}

impl From<Error> for CliError {
    fn from(e: Error) -> Self {
        CliError::failed(e)
    }
}

/// Runs the CLI on the given arguments (without the program name), with
/// `read_file` abstracted for testing. Returns the text to print.
pub fn run_cli(
    args: &[String],
    read_file: impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let mut it = args.iter();
    let command = it.next().ok_or_else(|| CliError::usage(USAGE))?;
    match command.as_str() {
        "check" => {
            let (program, facts) = load_sources(&mut it.cloned().collect::<Vec<_>>(), &read_file)?;
            cmd_check(&program, &facts)
        }
        "graph" => {
            let (program, _) = load_sources(&mut it.cloned().collect::<Vec<_>>(), &read_file)?;
            Ok(DependencyGraph::build(&program).to_dot())
        }
        "run" => cmd_run(&it.cloned().collect::<Vec<_>>(), &read_file),
        "validate-trace" => cmd_validate_trace(&it.cloned().collect::<Vec<_>>(), &read_file),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    }
}

const USAGE: &str = "usage: chronolog <check|run|graph|validate-trace> <file>... [options]\n\
  run options: --horizon LO..HI  --threads N  --query 'p(X)@[lo,hi]'\n\
               --no-magic  --explain-query  --explain 'p(a)@5'\n\
               --facts  --stats  --stats-json FILE  --trace FILE\n\
               --session  --stream FILE  --no-repair  --repair-budget N\n\
               --no-time-index  --no-reorder  --no-adaptive  --row-store\n\
               --explain-plans\n\
               --profile FILE  --profile-folded FILE";

fn load_sources(
    paths: &mut Vec<String>,
    read_file: &impl Fn(&str) -> std::io::Result<String>,
) -> Result<(Program, Vec<Fact>), CliError> {
    if paths.is_empty() {
        return Err(CliError::usage("no input files"));
    }
    let mut program = Program::new();
    let mut facts = Vec::new();
    for path in paths {
        let text =
            read_file(path).map_err(|e| CliError::failed(format!("cannot read {path}: {e}")))?;
        let (p, f) = parse_source(&text)?;
        program.rules.extend(p.rules);
        facts.extend(f);
    }
    Ok((program, facts))
}

fn cmd_check(program: &Program, facts: &[Fact]) -> Result<String, CliError> {
    chronolog_core::analysis::check_program(program)?;
    let strat = Stratification::compute(program)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ok: {} rules, {} facts, {} strata",
        program.rules.len(),
        facts.len(),
        strat.count()
    );
    let mut by_stratum: Vec<(usize, Vec<String>)> = Vec::new();
    for (pred, stratum) in &strat.strata {
        match by_stratum.iter_mut().find(|(s, _)| s == stratum) {
            Some((_, v)) => v.push(pred.to_string()),
            None => by_stratum.push((*stratum, vec![pred.to_string()])),
        }
    }
    by_stratum.sort();
    for (stratum, mut preds) in by_stratum {
        preds.sort();
        let _ = writeln!(out, "  stratum {stratum}: {}", preds.join(", "));
    }
    Ok(out)
}

/// Validates a `--profile` Chrome trace_event file: the envelope shape,
/// required keys per event phase, and — per lane (`tid`) — that complete
/// events are recorded with monotone end timestamps and that the recorded
/// `depth` of every span is consistent with strict nesting inside its
/// enclosing span. Used by CI to smoke-check profiler output.
fn cmd_validate_trace(
    args: &[String],
    read_file: &impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let [path] = args else {
        return Err(CliError::usage(
            "validate-trace needs exactly one trace file",
        ));
    };
    let text = read_file(path).map_err(|e| CliError::failed(format!("cannot read {path}: {e}")))?;
    let trace =
        Json::parse(&text).map_err(|e| CliError::failed(format!("{path}: invalid JSON: {e}")))?;
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| CliError::failed(format!("{path}: missing traceEvents array")))?;

    // Gather complete ("X") events per lane, preserving file order; "M"
    // metadata events only need a name.
    let mut lanes: std::collections::BTreeMap<u64, Vec<(u64, u64, u64)>> =
        std::collections::BTreeMap::new();
    let mut named_lanes = 0usize;
    for (n, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| CliError::failed(format!("{path}: event {n} missing `{key}`")))
        };
        let num = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| CliError::failed(format!("{path}: event {n}: `{key}` not a number")))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| CliError::failed(format!("{path}: event {n}: `ph` not a string")))?
            .to_string();
        num("pid")?;
        let tid = num("tid")?;
        match ph.as_str() {
            "M" => {
                field("name")?;
                named_lanes += 1;
            }
            "X" => {
                field("name")?;
                let (ts, dur) = (num("ts")?, num("dur")?);
                let depth = ev
                    .get("args")
                    .and_then(|a| a.get("depth"))
                    .and_then(Json::as_u64)
                    .ok_or_else(|| {
                        CliError::failed(format!("{path}: event {n} missing args.depth"))
                    })?;
                lanes.entry(tid).or_default().push((ts, dur, depth));
            }
            other => {
                return Err(CliError::failed(format!(
                    "{path}: event {n}: unexpected phase `{other}`"
                )))
            }
        }
    }

    let mut spans = 0usize;
    for (tid, recs) in &lanes {
        // Spans are appended as they close, so end timestamps must be
        // monotone in file order within a lane.
        for w in recs.windows(2) {
            let (end_a, end_b) = (w[0].0 + w[0].1, w[1].0 + w[1].1);
            if end_a > end_b {
                return Err(CliError::failed(format!(
                    "{path}: lane {tid}: end timestamps not monotone ({end_a} > {end_b})"
                )));
            }
        }
        // Replaying in start order, each span must sit strictly inside the
        // span one level up (timestamps are truncated from one monotonic
        // clock, so containment is exact).
        let mut by_start = recs.clone();
        by_start.sort_by_key(|&(ts, _, depth)| (ts, depth));
        let mut stack: Vec<(u64, u64)> = Vec::new(); // (ts, end)
        for &(ts, dur, depth) in &by_start {
            while stack.len() as u64 > depth {
                stack.pop();
            }
            if (stack.len() as u64) < depth {
                return Err(CliError::failed(format!(
                    "{path}: lane {tid}: span at {ts}us has depth {depth} with no parent"
                )));
            }
            if let Some(&(p_ts, p_end)) = stack.last() {
                if ts < p_ts || ts + dur > p_end {
                    return Err(CliError::failed(format!(
                        "{path}: lane {tid}: span [{ts}, {}]us escapes its parent [{p_ts}, {p_end}]us",
                        ts + dur
                    )));
                }
            }
            stack.push((ts, ts + dur));
            spans += 1;
        }
    }

    Ok(format!(
        "ok: {spans} spans across {} lanes ({named_lanes} named)\n",
        lanes.len()
    ))
}

fn cmd_run(
    args: &[String],
    read_file: &impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let mut paths = Vec::new();
    let mut horizon: Option<(i64, i64)> = None;
    let mut threads: usize = 1;
    let mut queries: Vec<String> = Vec::new();
    let mut explains: Vec<String> = Vec::new();
    let mut dump_facts = false;
    let mut stats = false;
    let mut stats_json: Option<String> = None;
    let mut trace_file: Option<String> = None;
    let mut profile_file: Option<String> = None;
    let mut profile_folded_file: Option<String> = None;
    let mut session_mode = false;
    let mut stream_file: Option<String> = None;
    let mut repair = true;
    let mut repair_budget: Option<u64> = None;
    let mut time_index = true;
    let mut cost_based_reorder = true;
    let mut adaptive = true;
    let mut row_store = false;
    let mut explain_plans = false;
    let mut magic = true;
    let mut explain_query = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats-json" => {
                i += 1;
                stats_json = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--stats-json needs a file path"))?
                        .clone(),
                );
            }
            "--trace" => {
                i += 1;
                trace_file = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--trace needs a file path"))?
                        .clone(),
                );
            }
            "--profile" => {
                i += 1;
                profile_file = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--profile needs a file path"))?
                        .clone(),
                );
            }
            "--profile-folded" => {
                i += 1;
                profile_folded_file = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--profile-folded needs a file path"))?
                        .clone(),
                );
            }
            "--horizon" => {
                i += 1;
                let spec = args
                    .get(i)
                    .ok_or_else(|| CliError::usage("--horizon needs LO..HI"))?;
                let (lo, hi) = spec
                    .split_once("..")
                    .ok_or_else(|| CliError::usage("--horizon format is LO..HI"))?;
                let lo: i64 = lo
                    .parse()
                    .map_err(|_| CliError::usage("bad horizon bound"))?;
                let hi: i64 = hi
                    .parse()
                    .map_err(|_| CliError::usage("bad horizon bound"))?;
                horizon = Some((lo, hi));
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .ok_or_else(|| CliError::usage("--threads needs a worker count"))?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError::usage("--threads must be a positive integer"))?;
            }
            "--query" => {
                i += 1;
                queries.push(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--query needs an atom pattern"))?
                        .clone(),
                );
            }
            "--explain" => {
                i += 1;
                explains.push(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--explain needs 'p(a)@t'"))?
                        .clone(),
                );
            }
            "--stream" => {
                i += 1;
                stream_file = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--stream needs a file path"))?
                        .clone(),
                );
            }
            "--repair-budget" => {
                i += 1;
                repair_budget = Some(
                    args.get(i)
                        .ok_or_else(|| CliError::usage("--repair-budget needs a tuple count"))?
                        .parse::<u64>()
                        .map_err(|_| {
                            CliError::usage("--repair-budget must be a non-negative integer")
                        })?,
                );
            }
            "--facts" => dump_facts = true,
            "--stats" => stats = true,
            "--session" => session_mode = true,
            "--no-repair" => repair = false,
            "--no-time-index" => time_index = false,
            "--no-reorder" => cost_based_reorder = false,
            "--no-adaptive" => adaptive = false,
            "--row-store" => row_store = true,
            "--explain-plans" => explain_plans = true,
            "--no-magic" => magic = false,
            "--explain-query" => explain_query = true,
            other if other.starts_with("--") => {
                return Err(CliError::usage(format!("unknown option {other}")));
            }
            path => paths.push(path.to_string()),
        }
        i += 1;
    }

    let (program, facts) = load_sources(&mut paths, read_file)?;
    if session_mode && !explains.is_empty() {
        return Err(CliError::usage(
            "--explain is unavailable with --session (sessions keep no provenance)",
        ));
    }
    if stream_file.is_some() && !session_mode {
        return Err(CliError::usage("--stream needs --session"));
    }
    let stream_text = match &stream_file {
        Some(path) => Some(
            read_file(path).map_err(|e| CliError::failed(format!("cannot read {path}: {e}")))?,
        ),
        None => None,
    };
    let parsed_queries: Vec<(String, Query)> = queries
        .iter()
        .map(|q| {
            parse_query(q)
                .map(|query| (q.clone(), query))
                .map_err(|e| CliError::usage(format!("bad query `{q}`: {e}")))
        })
        .collect::<Result<_, _>>()?;

    let tracer = trace_file.as_ref().map(|_| Tracer::new());
    let profiler = (profile_file.is_some() || profile_folded_file.is_some())
        .then(chronolog_obs::SpanRecorder::new);
    let mut config = ReasonerConfig {
        provenance: !explains.is_empty(),
        tracer: tracer.clone(),
        profiler: profiler.clone(),
        threads,
        time_index,
        cost_based_reorder,
        adaptive,
        repair,
        row_store,
        ..ReasonerConfig::default()
    };
    if let Some(budget) = repair_budget {
        config = config.with_repair_budget(budget);
    }
    if let Some((lo, hi)) = horizon {
        config = config.with_horizon(lo, hi);
    }
    let reasoner = Reasoner::new(program.clone(), config)?;

    // Rewrite reports are built before the run: in session mode the
    // reasoner is consumed by the session below.
    let mut explain_query_out = String::new();
    if explain_query {
        let mut base = Database::new();
        base.extend_facts(&facts)
            .map_err(|e| CliError::failed(e.to_string()))?;
        for (text, query) in &parsed_queries {
            let _ = writeln!(explain_query_out, "-- explain-query {text} --");
            let report = reasoner.explain_query(&base, query);
            explain_query_out.push_str(&report);
            if !report.ends_with('\n') {
                explain_query_out.push('\n');
            }
        }
    }

    enum Outcome {
        Batch(Box<chronolog_core::Materialization>),
        Session(Box<chronolog_core::Session>),
        /// Goal-driven: no upfront materialization — each `--query` runs
        /// its own demand-restricted sub-program against the base facts.
        Goal(Box<Database>, Box<Reasoner>),
    }
    // Queries are goal-driven unless something else needs the full model
    // (--facts, --explain provenance) or --no-magic asked for the ablation.
    let goal_driven =
        magic && !parsed_queries.is_empty() && explains.is_empty() && !dump_facts && !session_mode;
    let outcome = if session_mode {
        let (lo, hi) =
            horizon.ok_or_else(|| CliError::usage("--session needs --horizon LO..HI"))?;
        Outcome::Session(Box::new(run_session(
            reasoner,
            &facts,
            lo,
            hi,
            stream_text.as_deref(),
        )?))
    } else {
        let mut db = Database::new();
        db.extend_facts(&facts)
            .map_err(|e| CliError::failed(e.to_string()))?;
        if goal_driven {
            Outcome::Goal(Box::new(db), Box::new(reasoner))
        } else {
            Outcome::Batch(Box::new(reasoner.materialize(&db)?))
        }
    };
    let materialized: Option<&Database> = match &outcome {
        Outcome::Batch(m) => Some(&m.database),
        Outcome::Session(s) => Some(s.database()),
        Outcome::Goal(..) => None,
    };

    // Answer the queries before reporting: goal-driven query runs *are*
    // the engine runs whose statistics --stats/--stats-json describe (the
    // last query wins when several are given).
    let mut report_stats: RunStats = match &outcome {
        Outcome::Batch(m) => m.stats.clone(),
        Outcome::Session(s) => s.stats().clone(),
        Outcome::Goal(..) => RunStats::default(),
    };
    let mut query_out = String::new();
    for (text, query) in &parsed_queries {
        let _ = writeln!(query_out, "-- query {text} --");
        let mut lines = match &outcome {
            Outcome::Goal(db, r) => {
                let o = r.query(db, query)?;
                let lines = render_answers(&query.atom, &o.answers);
                report_stats = o.stats;
                lines
            }
            Outcome::Session(s) if magic => {
                let o = s.query(query)?;
                let lines = render_answers(&query.atom, &o.answers);
                report_stats.magic = o.stats.magic;
                lines
            }
            Outcome::Batch(m) => query_database(&m.database, &query.atom, query.window.as_ref()),
            Outcome::Session(s) => query_database(s.database(), &query.atom, query.window.as_ref()),
        };
        lines.sort();
        if lines.is_empty() {
            let _ = writeln!(query_out, "(no matches)");
        }
        for line in lines {
            let _ = writeln!(query_out, "{line}");
        }
    }
    let served_full = !parsed_queries.is_empty()
        && match &outcome {
            Outcome::Goal(..) => false,
            Outcome::Session(_) => !magic,
            Outcome::Batch(_) => true,
        };
    if served_full {
        // Queries answered from the unrestricted model: record what that
        // costs so the two modes compare in stats-json.
        report_stats.magic.mode = "full".to_string();
        report_stats.magic.demanded_tuples = materialized.map_or(0, |db| db.tuple_count() as u64);
    }

    if let (Some(path), Some(tracer)) = (&trace_file, &tracer) {
        std::fs::write(path, tracer.drain_jsonl())
            .map_err(|e| CliError::failed(format!("cannot write {path}: {e}")))?;
    }
    if let (Some(path), Some(p)) = (&profile_file, &profiler) {
        std::fs::write(path, p.to_chrome_trace().to_pretty())
            .map_err(|e| CliError::failed(format!("cannot write {path}: {e}")))?;
    }
    if let (Some(path), Some(p)) = (&profile_folded_file, &profiler) {
        std::fs::write(path, p.to_folded())
            .map_err(|e| CliError::failed(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &stats_json {
        let report = run_report(&report_stats, &paths, horizon);
        std::fs::write(path, report.to_pretty())
            .map_err(|e| CliError::failed(format!("cannot write {path}: {e}")))?;
    }

    let mut out = String::new();
    if dump_facts || (queries.is_empty() && explains.is_empty() && !stats && !explain_plans) {
        let db = materialized.expect("facts dump implies a materialized model");
        let _ = writeln!(out, "{}", db.to_facts_text());
    }
    if explain_plans {
        render_plans(&mut out, &report_stats);
    }
    out.push_str(&explain_query_out);
    out.push_str(&query_out);
    for e in &explains {
        let (atom, t) = parse_explain_spec(e)?;
        let args: Vec<Value> = atom
            .args
            .iter()
            .map(|term| match term {
                Term::Val(v) => Ok(*v),
                Term::Var(_) => Err(CliError::usage("--explain needs a ground fact")),
            })
            .collect::<Result<_, _>>()?;
        let _ = writeln!(out, "-- explain {e} --");
        let Outcome::Batch(m) = &outcome else {
            unreachable!("--explain with --session is rejected above")
        };
        match m.explain(&program, &atom.pred.to_string(), &args, t) {
            Some(tree) => {
                let _ = writeln!(out, "{tree}");
            }
            None => {
                let _ = writeln!(out, "(fact does not hold at {t})");
            }
        }
    }
    if stats {
        render_stats(&mut out, &report_stats);
    }
    Ok(out)
}

/// Streams the parsed facts through a live [`chronolog_core::Session`]:
/// facts at or before the horizon start seed the initial database, the
/// rest are submitted in timestamp order with the watermark advanced past
/// each batch, and a final advance lands on the horizon end. The resulting
/// database must be byte-identical to the batch materialization — CI diffs
/// the two.
///
/// With `--stream`, the correction stream is applied after the staged
/// facts (so it can retract them) and before the final advance; the
/// session then reflects the *surviving* base facts, which is what the
/// repair-vs-cold CI job diffs against a batch run over the same set.
fn run_session(
    reasoner: Reasoner,
    facts: &[Fact],
    lo: i64,
    hi: i64,
    corrections: Option<&str>,
) -> Result<chronolog_core::Session, CliError> {
    let start = Rational::integer(lo);
    let mut initial = Database::new();
    let mut stream: Vec<&Fact> = Vec::new();
    for fact in facts {
        match fact.interval.lo() {
            chronolog_core::TimeBound::Finite(flo) if flo > start => stream.push(fact),
            _ => {
                initial
                    .insert_fact(fact)
                    .map_err(|e| CliError::failed(e.to_string()))?;
            }
        }
    }
    // Stable sort by interval position keeps input order for simultaneous
    // facts, so the stream is deterministic.
    stream.sort_by(|a, b| a.interval.cmp_position(&b.interval));

    let mut session = reasoner.into_session(&initial, lo)?;
    let mut i = 0;
    while i < stream.len() {
        let batch_lo = stream[i].interval.lo();
        let mut target = lo;
        while i < stream.len() && stream[i].interval.lo() == batch_lo {
            let fact = stream[i];
            match fact.interval.hi() {
                chronolog_core::TimeBound::Finite(fhi) => target = target.max(fhi.ceil()),
                other => {
                    return Err(CliError::failed(format!(
                        "--session needs finite fact endpoints (got {other:?} in {fact})"
                    )))
                }
            }
            session.submit(fact.clone())?;
            i += 1;
        }
        session.advance_to(target.min(hi))?;
    }
    if let Some(text) = corrections {
        apply_stream(&mut session, text, hi)?;
    }
    session.advance_to(hi)?;
    Ok(session)
}

/// Applies a `--stream` correction file line by line. Keywords must be
/// followed by whitespace so predicates named `advance…`/`retract…` still
/// parse as plain fact submissions. Every failure names the line.
fn apply_stream(
    session: &mut chronolog_core::Session,
    text: &str,
    hi: i64,
) -> Result<(), CliError> {
    fn keyword<'a>(line: &'a str, word: &str) -> Option<&'a str> {
        line.strip_prefix(word)
            .filter(|rest| rest.starts_with(char::is_whitespace))
            .map(str::trim)
    }
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = idx + 1;
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = keyword(line, "advance") {
            let t: i64 = rest.parse().map_err(|_| {
                CliError::failed(format!(
                    "stream line {n}: `advance` needs an integer target, got `{rest}`"
                ))
            })?;
            if t > hi {
                return Err(CliError::failed(format!(
                    "stream line {n}: advance target {t} is beyond the horizon end {hi}"
                )));
            }
            session
                .advance_to(t)
                .map_err(|e| CliError::failed(format!("stream line {n}: {e}")))?;
        } else if let Some(rest) = keyword(line, "retract") {
            let fact = parse_stream_fact(rest, n)?;
            session
                .retract(fact)
                .map_err(|e| CliError::failed(format!("stream line {n}: {e}")))?;
        } else {
            let fact = parse_stream_fact(line, n)?;
            let future = matches!(
                fact.interval.lo(),
                chronolog_core::TimeBound::Finite(flo) if flo > session.now()
            );
            let submitted = if future {
                session.submit(fact)
            } else {
                session.submit_late(fact).map(|_| ())
            };
            submitted.map_err(|e| CliError::failed(format!("stream line {n}: {e}")))?;
        }
    }
    Ok(())
}

/// Parses exactly one fact from a stream line (the trailing `.` of the
/// fact syntax is required, exactly as in a program file).
fn parse_stream_fact(text: &str, n: usize) -> Result<Fact, CliError> {
    let facts = chronolog_core::parse_facts(text)
        .map_err(|e| CliError::failed(format!("stream line {n}: {e}")))?;
    let mut it = facts.into_iter();
    match (it.next(), it.next()) {
        (Some(fact), None) => Ok(fact),
        (first, _) => Err(CliError::failed(format!(
            "stream line {n}: expected exactly one fact, got {}",
            if first.is_none() { "none" } else { "several" }
        ))),
    }
}

/// Renders the `--explain-plans` report: every compiled rule plan (one per
/// semi-naive variant) in execution order, with the chosen access path and
/// estimated vs. actual rows per step. Contains no wall times, so the
/// output is deterministic and golden-testable.
fn render_plans(out: &mut String, stats: &RunStats) {
    let _ = writeln!(out, "-- plans --");
    let mut plans: Vec<_> = stats.plan_explains.iter().collect();
    plans.sort_by_key(|p| (p.rule, p.delta_literal));
    for p in plans {
        let variant = match p.delta_literal {
            Some(d) => format!("delta literal {d}"),
            None => "full".to_string(),
        };
        let reordered = if p.reordered { ", reordered" } else { "" };
        let _ = writeln!(
            out,
            "plan {} ({variant}{reordered}): est {} rows",
            p.label, p.est_rows
        );
        if !p.corrections.is_empty() {
            let factors: Vec<String> = p
                .corrections
                .iter()
                .map(|(lit, c)| format!("literal {lit} x{c:.2}"))
                .collect();
            let _ = writeln!(out, "  corrections: {}", factors.join(", "));
        }
        for s in &p.steps {
            let _ = writeln!(
                out,
                "  {:<44} {:<16} est {:>6}  actual {:>6}",
                s.desc, s.access, s.est_rows, s.actual_rows
            );
        }
    }
    // Near-perfect estimates are noise in a "worst first" block (and
    // never-executed plans would be pure noise): only genuinely-off,
    // executed plans make the cut.
    let feedback: Vec<_> = stats
        .plan_feedback()
        .into_iter()
        .filter(|f| f.executions > 0 && f.error_factor >= 1.5)
        .collect();
    if !feedback.is_empty() {
        let _ = writeln!(out, "-- misestimates (worst first) --");
        for f in feedback.iter().take(5) {
            let variant = match f.delta_literal {
                Some(d) => format!("delta literal {d}"),
                None => "full".to_string(),
            };
            let _ = writeln!(
                out,
                "plan {} ({variant}): est {} rows, avg actual {:.1} over {} runs (x{:.1} off)",
                f.label, f.est_rows, f.avg_actual_rows, f.executions, f.error_factor
            );
        }
    }
}

/// Renders the `--stats` report: run totals, per-stratum iteration counts,
/// and a per-rule hot list ordered by wall time.
fn render_stats(out: &mut String, stats: &RunStats) {
    let _ = writeln!(
        out,
        "stats: {} derived tuples, {} components, {} rule evaluations, {:?}",
        stats.derived_tuples, stats.total_components, stats.rule_evaluations, stats.elapsed
    );
    let _ = writeln!(
        out,
        "joins: {} index probes ({} tuples skipped), {} full scans ({} tuples walked)",
        stats.index_probes, stats.index_scan_avoided, stats.full_scans, stats.scanned_tuples
    );
    let _ = writeln!(
        out,
        "time index: {} probes ({} interval clips avoided), {} index rebuilds avoided",
        stats.time_index_probes, stats.interval_clips_avoided, stats.index_rebuilds_avoided
    );
    let _ = writeln!(
        out,
        "planner: {} plans built, {} replans ({} adaptive), {} reorders applied, \
         est {} rows vs {} actual",
        stats.plans_built,
        stats.replans,
        stats.replans_triggered,
        stats.reorders_applied,
        stats.planner_estimated_rows,
        stats.planner_actual_rows
    );
    if stats.pool_respawns + stats.pool_reuses > 0 {
        let _ = writeln!(
            out,
            "pool: {} warm dispatches, {} spawns",
            stats.pool_reuses, stats.pool_respawns
        );
    }
    if stats.repairs.attempted > 0 {
        let r = &stats.repairs;
        let _ = writeln!(
            out,
            "repairs: {} attempted ({} incremental, {} cold fallbacks, {} budget trips), \
             {} cone tuples, {} components overdeleted",
            r.attempted,
            r.incremental,
            r.fallbacks,
            r.budget_trips,
            r.cone_tuples,
            r.overdeleted_components
        );
    }
    let s = &stats.storage;
    let _ = writeln!(
        out,
        "storage: {} layout, {} symbols + {} values interned, {} interval bytes, \
         {} value bytes, {} column clones, arena slabs {} freed / {} reused",
        s.mode,
        s.interned_symbols,
        s.interned_values,
        s.interval_bytes,
        s.value_bytes,
        s.column_clones,
        s.arena_slabs_freed,
        s.arena_slabs_reused
    );
    if stats.workers.len() > 1 {
        let _ = writeln!(out, "workers:");
        for w in &stats.workers {
            let _ = writeln!(
                out,
                "  worker {}: {} tasks, {:?} busy",
                w.worker, w.tasks, w.busy
            );
        }
    }
    let _ = writeln!(
        out,
        "strata (iterations per fixpoint): {:?}",
        stats.iterations
    );
    for s in &stats.strata {
        let _ = writeln!(
            out,
            "  stratum {}: {} iterations, {} evals, {} tuples, {} components, {:?}",
            s.stratum,
            s.iterations,
            s.rule_evaluations,
            s.tuples_derived,
            s.components_added,
            s.wall
        );
    }
    let mut hot: Vec<_> = stats
        .rules
        .iter()
        .filter(|r| r.body_evaluations > 0)
        .collect();
    hot.sort_by_key(|r| std::cmp::Reverse(r.wall));
    if !hot.is_empty() {
        let _ = writeln!(out, "rule hot list (by wall time):");
        let _ = writeln!(
            out,
            "  {:<16} {:<12} {:>7} {:>8} {:>8} {:>10} {:>12}",
            "rule", "head", "stratum", "evals", "tuples", "components", "wall"
        );
        for r in hot.iter().take(10) {
            let _ = writeln!(
                out,
                "  {:<16} {:<12} {:>7} {:>8} {:>8} {:>10} {:>12}",
                r.label,
                r.head,
                r.stratum,
                r.body_evaluations,
                r.tuples_derived,
                r.components_added,
                format!("{:?}", r.wall)
            );
        }
    }
}

/// Builds the machine-readable run report written by `--stats-json`: run
/// metadata, the engine's totals/strata/rules sections, and a snapshot of
/// the global metric registry. The shape is pinned by the schema golden
/// test; bump [`REPORT_SCHEMA_VERSION`] on breaking changes.
pub fn run_report(stats: &RunStats, files: &[String], horizon: Option<(i64, i64)>) -> Json {
    let mut report = Json::object();
    report.set("schema_version", REPORT_SCHEMA_VERSION);
    report.set("command", "run");
    report.set(
        "files",
        Json::Arr(files.iter().map(|f| Json::from(f.as_str())).collect()),
    );
    report.set(
        "horizon",
        match horizon {
            Some((lo, hi)) => Json::from(format!("{lo}..{hi}")),
            None => Json::Null,
        },
    );
    let stats_json = stats.to_json();
    report.set(
        "totals",
        stats_json.get("totals").cloned().unwrap_or(Json::Null),
    );
    report.set(
        "strata",
        stats_json.get("strata").cloned().unwrap_or(Json::Null),
    );
    report.set(
        "rules",
        stats_json.get("rules").cloned().unwrap_or(Json::Null),
    );
    report.set(
        "workers",
        stats_json.get("workers").cloned().unwrap_or(Json::Null),
    );
    report.set(
        "planner",
        stats_json.get("planner").cloned().unwrap_or(Json::Null),
    );
    report.set(
        "pool",
        stats_json.get("pool").cloned().unwrap_or(Json::Null),
    );
    report.set(
        "repairs",
        stats_json.get("repairs").cloned().unwrap_or(Json::Null),
    );
    report.set(
        "storage",
        stats_json.get("storage").cloned().unwrap_or(Json::Null),
    );
    report.set(
        "magic",
        stats_json.get("magic").cloned().unwrap_or(Json::Null),
    );
    report.set("metrics", Registry::global().snapshot());
    report
}

/// Parses an atom pattern like `margin(acc1, M)` by disguising it as a
/// rule body.
fn parse_query_atom(q: &str) -> Result<Atom, CliError> {
    let rule = chronolog_core::parse_rule(&format!("query_probe_() :- {q}."))
        .map_err(|e| CliError::usage(format!("bad query `{q}`: {e}")))?;
    match rule.body.first() {
        Some(Literal::Pos(MetricAtom::Rel(atom))) => Ok(atom.clone()),
        _ => Err(CliError::usage(format!(
            "query `{q}` must be a plain atom pattern"
        ))),
    }
}

fn parse_explain_spec(spec: &str) -> Result<(Atom, i64), CliError> {
    let (atom_text, t_text) = spec
        .rsplit_once('@')
        .ok_or_else(|| CliError::usage("--explain format is 'p(a, 1)@t'"))?;
    let t: i64 = t_text
        .trim()
        .parse()
        .map_err(|_| CliError::usage("--explain time must be an integer"))?;
    Ok((parse_query_atom(atom_text)?, t))
}

/// All facts matching an atom pattern, rendered one per line.
fn query_database(db: &Database, pattern: &Atom, window: Option<&Interval>) -> Vec<String> {
    render_answers(pattern, &db.query(pattern, window))
}

/// Renders query answers one line per validity component, in the same
/// format for both the goal-driven and the full-materialization path (CI
/// diffs the two byte for byte).
fn render_answers(pattern: &Atom, answers: &[(Tuple, IntervalSet)]) -> Vec<String> {
    let mut out = Vec::new();
    for (tuple, ivs) in answers {
        let args = tuple
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        for iv in ivs.iter() {
            out.push(format!("{}({args})@{iv}", pattern.pred));
        }
    }
    out
}

/// Quick helper for tests: `t` must be inside the horizon used in `run`.
pub fn holds(db: &Database, pred: &str, args: &[Value], t: i64) -> bool {
    db.holds_at_rational(
        chronolog_core::Symbol::new(pred),
        args,
        Rational::integer(t),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn fake_fs(files: &[(&str, &str)]) -> impl Fn(&str) -> std::io::Result<String> {
        let map: HashMap<String, String> = files
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        move |path: &str| {
            map.get(path).cloned().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "no such test file")
            })
        }
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    const DEMO: &str = "isOpen(A) :- tranM(A, M).\n\
                        isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
                        tranM(acc1, 20.0)@3.\n\
                        withdraw(acc1)@8.";

    #[test]
    fn check_reports_strata() {
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let out = run_cli(&args(&["check", "demo.dmtl"]), fs).unwrap();
        assert!(out.contains("ok: 2 rules, 2 facts"), "{out}");
        assert!(out.contains("stratum"), "{out}");
    }

    #[test]
    fn run_with_query() {
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let out = run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--query",
                "isOpen(A)",
            ]),
            fs,
        )
        .unwrap();
        assert!(out.contains("isOpen(acc1)@[3]"), "{out}");
        assert!(out.contains("isOpen(acc1)@[7]"), "{out}");
        assert!(!out.contains("isOpen(acc1)@[8]"), "{out}");
    }

    #[test]
    fn run_with_explain() {
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let out = run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--explain",
                "isOpen(acc1)@5",
            ]),
            fs,
        )
        .unwrap();
        assert!(out.contains("[by rule"), "{out}");
        assert!(out.contains("tranM(acc1, 20.0)"), "{out}");
        // Negative case.
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let out = run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--explain",
                "isOpen(acc1)@9",
            ]),
            fs,
        )
        .unwrap();
        assert!(out.contains("does not hold"), "{out}");
    }

    #[test]
    fn run_dumps_facts_by_default() {
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let out = run_cli(&args(&["run", "demo.dmtl", "--horizon", "0..20"]), fs).unwrap();
        assert!(out.contains("tranM(acc1, 20.0)@[3]"), "{out}");
        assert!(out.contains("isOpen(acc1)@[5]"), "{out}");
    }

    #[test]
    fn graph_emits_dot() {
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let out = run_cli(&args(&["graph", "demo.dmtl"]), fs).unwrap();
        assert!(out.starts_with("digraph"), "{out}");
        assert!(out.contains("\"tranM\" -> \"isOpen\""), "{out}");
    }

    #[test]
    fn stats_flag() {
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let out = run_cli(
            &args(&["run", "demo.dmtl", "--horizon", "0..20", "--stats"]),
            fs,
        )
        .unwrap();
        assert!(out.contains("derived tuples"), "{out}");
        // Per-stratum iteration counts and the per-rule hot list.
        assert!(out.contains("strata (iterations per fixpoint)"), "{out}");
        assert!(out.contains("stratum 0:"), "{out}");
        assert!(out.contains("rule hot list"), "{out}");
        assert!(out.contains("isOpen"), "{out}");
    }

    #[test]
    fn stats_json_writes_a_report() {
        let dir = std::env::temp_dir().join("chronolog-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--stats-json",
                path.to_str().unwrap(),
            ]),
            fs,
        )
        .unwrap();
        let report = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            report.get("schema_version").and_then(Json::as_u64),
            Some(REPORT_SCHEMA_VERSION)
        );
        let totals = report.get("totals").unwrap();
        let rules = report.get("rules").and_then(Json::as_array).unwrap();
        let strata = report.get("strata").and_then(Json::as_array).unwrap();
        // Per-rule and per-stratum counts sum to the run totals.
        let sum = |items: &[Json], field: &str| -> u64 {
            items
                .iter()
                .map(|r| r.get(field).and_then(Json::as_u64).unwrap())
                .sum()
        };
        assert_eq!(
            sum(rules, "body_evaluations"),
            totals
                .get("rule_evaluations")
                .and_then(Json::as_u64)
                .unwrap()
        );
        assert_eq!(
            sum(rules, "tuples_derived"),
            totals.get("derived_tuples").and_then(Json::as_u64).unwrap()
        );
        assert_eq!(
            sum(strata, "tuples_derived"),
            totals.get("derived_tuples").and_then(Json::as_u64).unwrap()
        );
        // v4: the planner section ties out against its own plan list, and
        // the pool section exists (all-zero for a sequential run).
        let planner = report.get("planner").unwrap();
        let plans = planner.get("plans").and_then(Json::as_array).unwrap();
        assert!(planner.get("plans_built").and_then(Json::as_u64).unwrap() >= plans.len() as u64);
        assert!(!plans.is_empty(), "every evaluated rule has a plan");
        let pool = report.get("pool").unwrap();
        assert_eq!(pool.get("respawns").and_then(Json::as_u64), Some(0));
        assert_eq!(pool.get("reuses").and_then(Json::as_u64), Some(0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_writes_jsonl_events() {
        let dir = std::env::temp_dir().join("chronolog-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--trace",
                path.to_str().unwrap(),
            ]),
            fs,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.trim().is_empty());
        let mut names = Vec::new();
        for line in text.lines() {
            let ev = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL `{line}`: {e}"));
            names.push(ev.get("ev").and_then(Json::as_str).unwrap().to_string());
        }
        assert!(
            names.contains(&"materialize_start".to_string()),
            "{names:?}"
        );
        assert!(names.contains(&"stratum".to_string()), "{names:?}");
        assert!(names.contains(&"materialize_end".to_string()), "{names:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn new_flags_report_usage_errors() {
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let err = run_cli(&args(&["run", "demo.dmtl", "--stats-json"]), fs).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--stats-json"), "{}", err.message);
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let err = run_cli(&args(&["run", "demo.dmtl", "--trace"]), fs).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--trace"), "{}", err.message);
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let err = run_cli(&args(&["run", "demo.dmtl", "--profile"]), fs).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--profile"), "{}", err.message);
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let err = run_cli(&args(&["run", "demo.dmtl", "--profile-folded"]), fs).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--profile-folded"), "{}", err.message);
        let fs = fake_fs(&[("demo.dmtl", DEMO)]);
        let err = run_cli(&args(&["run", "demo.dmtl", "--trance", "x"]), fs).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown option"), "{}", err.message);
    }

    #[test]
    fn threads_flag_usage_errors() {
        for bad in [
            &["run", "demo.dmtl", "--threads"][..],
            &["run", "demo.dmtl", "--threads", "0"],
            &["run", "demo.dmtl", "--threads", "many"],
        ] {
            let fs = fake_fs(&[("demo.dmtl", DEMO)]);
            let err = run_cli(&args(bad), fs).unwrap_err();
            assert_eq!(err.code, 2, "{bad:?}");
            assert!(err.message.contains("--threads"), "{}", err.message);
        }
    }

    #[test]
    fn threaded_runs_are_byte_identical_to_sequential() {
        // A join-heavy recursive scenario with several rules per stratum so
        // the worker pool actually fans out; output and derivation counts
        // must not depend on the thread count.
        let scenario = "reach(X, Y) :- edge(X, Y).\n\
                        reach(X, Z) :- reach(X, Y), edge(Y, Z).\n\
                        hot(X) :- reach(X, Y), load(Y, L), L > 5.\n\
                        cool(X) :- reach(X, Y), not hot(Y).\n\
                        edge(a, b)@[0, 10]. edge(b, c)@[0, 10]. edge(c, d)@[2, 8].\n\
                        edge(d, a)@[4, 6]. edge(b, d)@[1, 3].\n\
                        load(c, 7)@[0, 10]. load(d, 3)@[0, 10].";
        let dir = std::env::temp_dir().join("chronolog-cli-threads-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut outputs = Vec::new();
        let mut reports = Vec::new();
        for threads in ["1", "4"] {
            let path = dir.join(format!("report-{threads}.json"));
            let fs = fake_fs(&[("g.dmtl", scenario)]);
            let out = run_cli(
                &args(&[
                    "run",
                    "g.dmtl",
                    "--horizon",
                    "0..10",
                    "--threads",
                    threads,
                    "--stats-json",
                    path.to_str().unwrap(),
                ]),
                fs,
            )
            .unwrap();
            outputs.push(out);
            reports.push(Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap());
            std::fs::remove_file(&path).ok();
        }
        // Derived facts are byte-identical across thread counts.
        assert_eq!(outputs[0], outputs[1]);
        // So are all derivation counts, per rule and in total.
        for field in ["derived_tuples", "rule_evaluations", "derived_components"] {
            assert_eq!(
                reports[0].get("totals").unwrap().get(field).unwrap(),
                reports[1].get("totals").unwrap().get(field).unwrap(),
                "{field}"
            );
        }
        let rule_counts = |r: &Json| -> Vec<(u64, u64)> {
            r.get("rules")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|rule| {
                    (
                        rule.get("derivations").and_then(Json::as_u64).unwrap(),
                        rule.get("tuples_derived").and_then(Json::as_u64).unwrap(),
                    )
                })
                .collect()
        };
        assert_eq!(rule_counts(&reports[0]), rule_counts(&reports[1]));
        // The threaded run reports one worker slot per requested thread.
        let workers = |r: &Json| r.get("workers").and_then(Json::as_array).unwrap().len();
        assert_eq!(workers(&reports[0]), 1);
        assert_eq!(workers(&reports[1]), 4);
    }

    const STREAMABLE: &str = "isOpen(A) :- tranM(A, M).\n\
                              isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
                              rate(base, 0.5).\n\
                              tranM(acc1, 20.0)@3.\n\
                              tranM(acc2, 5.0)@5.\n\
                              withdraw(acc1)@8.";

    #[test]
    fn session_mode_matches_batch_byte_for_byte() {
        let batch = run_cli(
            &args(&["run", "demo.dmtl", "--horizon", "0..20", "--facts"]),
            fake_fs(&[("demo.dmtl", STREAMABLE)]),
        )
        .unwrap();
        let streamed = run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--facts",
                "--session",
            ]),
            fake_fs(&[("demo.dmtl", STREAMABLE)]),
        )
        .unwrap();
        assert_eq!(batch, streamed);
        assert!(batch.contains("isOpen(acc1)@[7]"), "{batch}");
        assert!(!batch.contains("isOpen(acc1)@[8]"), "{batch}");
    }

    #[test]
    fn stream_applies_retractions_and_late_facts() {
        // Retract acc1's opening transaction and deliver acc3's late: the
        // session must equal a batch run over the corrected fact set.
        let stream = "# corrections arriving out of order\n\
                      advance 10\n\
                      retract tranM(acc1, 20.0)@3.\n\
                      tranM(acc3, 7.5)@4.\n\
                      \n\
                      % trailing comment\n";
        let corrected = "isOpen(A) :- tranM(A, M).\n\
                         isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
                         rate(base, 0.5).\n\
                         tranM(acc2, 5.0)@5.\n\
                         tranM(acc3, 7.5)@4.\n\
                         withdraw(acc1)@8.";
        let streamed = run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--facts",
                "--session",
                "--stream",
                "fix.stream",
            ]),
            fake_fs(&[("demo.dmtl", STREAMABLE), ("fix.stream", stream)]),
        )
        .unwrap();
        let batch = run_cli(
            &args(&["run", "demo.dmtl", "--horizon", "0..20", "--facts"]),
            fake_fs(&[("demo.dmtl", corrected)]),
        )
        .unwrap();
        assert_eq!(streamed, batch);
        assert!(!streamed.contains("isOpen(acc1)"), "{streamed}");
        assert!(streamed.contains("isOpen(acc3)@[4"), "{streamed}");
    }

    #[test]
    fn stream_line_errors_are_named() {
        let run_stream = |stream: &str| {
            run_cli(
                &args(&[
                    "run",
                    "demo.dmtl",
                    "--horizon",
                    "0..20",
                    "--session",
                    "--stream",
                    "fix.stream",
                ]),
                fake_fs(&[("demo.dmtl", STREAMABLE), ("fix.stream", stream)]),
            )
        };
        // Malformed retract line: the parse error names the line.
        let err = run_stream("retract tranM(acc1@3.\n").unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.starts_with("stream line 1:"), "{}", err.message);
        // Retracting a fact that was never submitted is the typed
        // UnknownFact error, not a panic.
        let err = run_stream("advance 10\nretract tranM(ghost, 1.0)@3.\n").unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.starts_with("stream line 2:"), "{}", err.message);
        assert!(err.message.contains("unknown fact"), "{}", err.message);
        assert!(err.message.contains("ghost"), "{}", err.message);
        // A late fact straddling the watermark is rejected with advice.
        let err = run_stream("advance 10\ntranM(acc9, 1.0)@[6, 12].\n").unwrap_err();
        assert!(
            err.message.contains("beyond the watermark"),
            "{}",
            err.message
        );
        // Advancing backwards and past the horizon are both named.
        let err = run_stream("advance 10\nadvance 9\n").unwrap_err();
        assert!(
            err.message.contains("cannot advance backwards"),
            "{}",
            err.message
        );
        let err = run_stream("advance 99\n").unwrap_err();
        assert!(
            err.message.contains("beyond the horizon"),
            "{}",
            err.message
        );
        // Keyword without its argument.
        let err = run_stream("advance soon\n").unwrap_err();
        assert!(err.message.contains("integer target"), "{}", err.message);
    }

    #[test]
    fn stream_retract_after_advance_repairs_history() {
        // Retract *after* the watermark has passed the fact: the repair
        // path must rewrite already-final history.
        let stream = "advance 15\nretract withdraw(acc1)@8.\n";
        let streamed = run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--facts",
                "--session",
                "--stream",
                "fix.stream",
            ]),
            fake_fs(&[("demo.dmtl", STREAMABLE), ("fix.stream", stream)]),
        )
        .unwrap();
        // Without the withdrawal the account stays open to the horizon
        // (components are punctual: the recursion steps instant by instant).
        assert!(streamed.contains("isOpen(acc1)@[9]"), "{streamed}");
        assert!(streamed.contains("isOpen(acc1)@[20]"), "{streamed}");
    }

    #[test]
    fn stream_fuzz_never_panics_and_errors_stay_typed() {
        // Seeded garbage + valid lines in random interleavings: every
        // outcome is Ok or a typed CliError naming the stream line.
        let mut rng = chronolog_obs::SmallRng::seed_from_u64(0x57AB1E);
        let pieces = [
            "advance 5",
            "advance 12",
            "advance -3",
            "advance",
            "advance soon",
            "retract tranM(acc1, 20.0)@3.",
            "retract tranM(acc1, 20.0)@3.", // double retract: UnknownFact
            "retract nonsense",
            "retract",
            "tranM(acc3, 7.5)@4.",
            "tranM(acc4, 1.0)@[2, 18].", // straddles most watermarks
            "withdraw(acc2)@6.",
            "p(X :- q(X).",
            "@@@",
            "# comment",
            "",
        ];
        for case in 0..32 {
            let n = rng.gen_range_usize(1, 10);
            let stream: String = (0..n)
                .map(|_| pieces[rng.gen_range_usize(0, pieces.len())])
                .collect::<Vec<_>>()
                .join("\n");
            let result = run_cli(
                &args(&[
                    "run",
                    "demo.dmtl",
                    "--horizon",
                    "0..20",
                    "--session",
                    "--stream",
                    "fix.stream",
                ]),
                fake_fs(&[("demo.dmtl", STREAMABLE), ("fix.stream", &stream)]),
            );
            if let Err(e) = result {
                assert_eq!(e.code, 1, "case {case}: {stream:?} -> {}", e.message);
                assert!(
                    e.message.starts_with("stream line "),
                    "case {case}: {stream:?} -> {}",
                    e.message
                );
            }
        }
    }

    #[test]
    fn stats_json_v6_reports_repairs_and_budget_trips() {
        let dir = std::env::temp_dir().join("chronolog-cli-repairs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let stream = "advance 10\nretract tranM(acc1, 20.0)@3.\n";
        let report_for = |extra: &[&str], name: &str| {
            let path = dir.join(name);
            let mut a = vec![
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--session",
                "--stream",
                "fix.stream",
                "--stats-json",
                path.to_str().unwrap(),
            ];
            a.extend_from_slice(extra);
            run_cli(
                &args(&a),
                fake_fs(&[("demo.dmtl", STREAMABLE), ("fix.stream", stream)]),
            )
            .unwrap();
            let report = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
            std::fs::remove_file(&path).ok();
            report
        };
        let get = |r: &Json, field: &str| {
            r.get("repairs")
                .and_then(|s| s.get(field))
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("missing repairs.{field}"))
        };
        // Incremental path by default.
        let report = report_for(&[], "repair.json");
        assert_eq!(
            report.get("schema_version").and_then(Json::as_u64),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(get(&report, "attempted"), 1);
        assert_eq!(get(&report, "incremental"), 1);
        assert_eq!(get(&report, "budget_trips"), 0);
        assert!(get(&report, "cone_tuples") > 0);
        // A zero budget trips on the first cone tuple and falls back.
        let report = report_for(&["--repair-budget", "0"], "budget.json");
        assert_eq!(get(&report, "attempted"), 1);
        assert_eq!(get(&report, "incremental"), 0);
        assert_eq!(get(&report, "fallbacks"), 1);
        assert_eq!(get(&report, "budget_trips"), 1);
        // --no-repair forces the fallback without a budget trip.
        let report = report_for(&["--no-repair"], "norepair.json");
        assert_eq!(get(&report, "attempted"), 1);
        assert_eq!(get(&report, "fallbacks"), 1);
        assert_eq!(get(&report, "budget_trips"), 0);
    }

    #[test]
    fn stream_results_match_with_and_without_repair() {
        let stream = "advance 10\n\
                      retract tranM(acc1, 20.0)@3.\n\
                      tranM(acc3, 7.5)@4.\n\
                      advance 15\n\
                      retract withdraw(acc1)@8.\n";
        let run_with = |extra: &[&str]| {
            let mut a = vec![
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--facts",
                "--session",
                "--stream",
                "fix.stream",
            ];
            a.extend_from_slice(extra);
            run_cli(
                &args(&a),
                fake_fs(&[("demo.dmtl", STREAMABLE), ("fix.stream", stream)]),
            )
            .unwrap()
        };
        let repaired = run_with(&[]);
        let cold = run_with(&["--no-repair"]);
        let tripped = run_with(&["--repair-budget", "0"]);
        assert_eq!(repaired, cold);
        assert_eq!(repaired, tripped);
    }

    #[test]
    fn stream_usage_errors() {
        let err = run_cli(
            &args(&["run", "demo.dmtl", "--horizon", "0..20", "--stream", "f"]),
            fake_fs(&[("demo.dmtl", STREAMABLE)]),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--session"), "{}", err.message);
        let err = run_cli(
            &args(&["run", "demo.dmtl", "--repair-budget", "lots"]),
            fake_fs(&[("demo.dmtl", STREAMABLE)]),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--repair-budget"), "{}", err.message);
    }

    #[test]
    fn session_mode_usage_errors() {
        let err = run_cli(
            &args(&["run", "demo.dmtl", "--session"]),
            fake_fs(&[("demo.dmtl", STREAMABLE)]),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--horizon"), "{}", err.message);
        let err = run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--session",
                "--explain",
                "isOpen(acc1)@5",
            ]),
            fake_fs(&[("demo.dmtl", STREAMABLE)]),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--explain"), "{}", err.message);
    }

    #[test]
    fn disabling_reordering_changes_nothing_but_counters() {
        // Multi-join bodies with one selective atom: the planner reorders,
        // the ablated run keeps textual order, and the derived facts must
        // be byte-identical either way.
        let scenario = "hot(X, Y) :- wide(X, K), fan(K, Y), sel(X).\n\
                        chain(X, Z) :- hot(X, Y), fan(Y, Z).\n\
                        wide(a, k1)@[0, 9]. wide(b, k1)@[0, 9]. wide(c, k2)@[0, 9].\n\
                        wide(d, k2)@[0, 9]. wide(e, k3)@[0, 9].\n\
                        fan(k1, u)@[0, 9]. fan(k1, v)@[0, 9]. fan(k2, u)@[0, 9].\n\
                        fan(k3, w)@[0, 9]. fan(u, t)@[0, 9].\n\
                        sel(c)@[0, 9].";
        let reordered = run_cli(
            &args(&["run", "g.dmtl", "--horizon", "0..9", "--facts"]),
            fake_fs(&[("g.dmtl", scenario)]),
        )
        .unwrap();
        let ablated = run_cli(
            &args(&[
                "run",
                "g.dmtl",
                "--horizon",
                "0..9",
                "--facts",
                "--no-reorder",
            ]),
            fake_fs(&[("g.dmtl", scenario)]),
        )
        .unwrap();
        assert_eq!(reordered, ablated);
        assert!(reordered.contains("hot(c, u)"), "{reordered}");
    }

    #[test]
    fn explain_plans_output_is_stable() {
        // Golden: the plan listing carries no wall times, so the exact
        // bytes are deterministic for a fixed program and input.
        let scenario = "h(X) :- e(X), ghost(X).\n\
                        d(X) :- e(X).\n\
                        e(a)@0. e(b)@0.";
        let run = |extra: &[&str]| {
            let mut a = vec!["run", "g.dmtl", "--horizon", "0..2", "--explain-plans"];
            a.extend_from_slice(extra);
            run_cli(&args(&a), fake_fs(&[("g.dmtl", scenario)])).unwrap()
        };
        let out = run(&[]);
        assert!(out.starts_with("-- plans --\n"), "{out}");
        // The planner hoists the empty `ghost` ahead of `e` in rule 0.
        // Both plans estimate within the noise threshold, so the
        // misestimate block is suppressed entirely.
        assert_eq!(
            out,
            "-- plans --\n\
             plan r0 (full, reordered): est 0 rows\n  \
             join ghost(X)                                scan             est      0  actual      0\n  \
             join e(X)                                    scan             est      1  actual      0\n\
             plan r1 (full): est 2 rows\n  \
             join e(X)                                    scan             est      2  actual      2\n"
        );
        // Ablated: textual order, nothing reordered.
        let ablated = run(&["--no-reorder"]);
        assert!(!ablated.contains("reordered"), "{ablated}");
        assert!(ablated.contains("plan r0 (full): est 0 rows"), "{ablated}");
    }

    #[test]
    fn disabling_the_time_index_changes_nothing_but_counters() {
        let indexed = run_cli(
            &args(&["run", "demo.dmtl", "--horizon", "0..20", "--facts"]),
            fake_fs(&[("demo.dmtl", STREAMABLE)]),
        )
        .unwrap();
        let ablated = run_cli(
            &args(&[
                "run",
                "demo.dmtl",
                "--horizon",
                "0..20",
                "--facts",
                "--no-time-index",
            ]),
            fake_fs(&[("demo.dmtl", STREAMABLE)]),
        )
        .unwrap();
        assert_eq!(indexed, ablated);
    }

    #[test]
    fn errors_are_reported_with_codes() {
        let fs = fake_fs(&[("bad.dmtl", "p(X :- q(X).")]);
        let err = run_cli(&args(&["run", "bad.dmtl"]), fs).unwrap_err();
        assert_eq!(err.code, 1);
        let fs = fake_fs(&[]);
        let err = run_cli(&args(&["run", "missing.dmtl"]), fs).unwrap_err();
        assert!(err.message.contains("cannot read"), "{}", err.message);
        let fs = fake_fs(&[]);
        let err = run_cli(&args(&["bogus"]), fs).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn multiple_files_merge() {
        let fs = fake_fs(&[
            ("rules.dmtl", "h(A) :- p(A), q(A)."),
            ("facts.dmtl", "p(x)@[0, 5].\nq(x)@[3, 9]."),
        ]);
        let out = run_cli(
            &args(&[
                "run",
                "rules.dmtl",
                "facts.dmtl",
                "--horizon",
                "0..10",
                "--query",
                "h(X)",
            ]),
            fs,
        )
        .unwrap();
        assert!(out.contains("h(x)@[3,5]"), "{out}");
    }

    #[test]
    fn query_with_constants_filters() {
        let fs = fake_fs(&[("f.dmtl", "p(x, 1)@0.\np(x, 2)@1.\np(y, 1)@2.")]);
        let out = run_cli(&args(&["run", "f.dmtl", "--query", "p(x, N)"]), fs).unwrap();
        assert!(out.contains("p(x, 1)@[0]"), "{out}");
        assert!(out.contains("p(x, 2)@[1]"), "{out}");
        assert!(!out.contains("p(y, 1)"), "{out}");
    }

    /// A recursive scenario with a bound query: the goal-driven default
    /// and the --no-magic ablation must print byte-identical answers, in
    /// batch and in session mode.
    const REACH: &str = "reach(X, Y) :- edge(X, Y).\n\
                         reach(X, Z) :- reach(X, Y), edge(Y, Z).\n\
                         edge(a, b)@[0, 10]. edge(b, c)@[0, 10]. edge(c, d)@[0, 8].\n\
                         edge(z, a)@[0, 6].";

    #[test]
    fn magic_and_no_magic_answers_are_byte_identical() {
        let run = |extra: &[&str]| {
            let mut a = vec![
                "run",
                "g.dmtl",
                "--horizon",
                "0..10",
                "--query",
                "reach(a, T)",
            ];
            a.extend_from_slice(extra);
            run_cli(&args(&a), fake_fs(&[("g.dmtl", REACH)])).unwrap()
        };
        let magic = run(&[]);
        assert_eq!(magic, run(&["--no-magic"]));
        assert_eq!(magic, run(&["--session"]));
        assert_eq!(magic, run(&["--session", "--no-magic"]));
        assert_eq!(magic, run(&["--threads", "4"]));
        assert!(magic.contains("reach(a, d)@[0,8]"), "{magic}");
        assert!(!magic.contains("reach(z"), "{magic}");
    }

    #[test]
    fn windowed_queries_clip_answers_in_both_modes() {
        let run = |extra: &[&str]| {
            let mut a = vec![
                "run",
                "g.dmtl",
                "--horizon",
                "0..10",
                "--query",
                "reach(a, T)@[3, 5]",
            ];
            a.extend_from_slice(extra);
            run_cli(&args(&a), fake_fs(&[("g.dmtl", REACH)])).unwrap()
        };
        let magic = run(&[]);
        assert_eq!(magic, run(&["--no-magic"]));
        assert!(magic.contains("reach(a, d)@[3,5]"), "{magic}");
        assert!(!magic.contains("@[2"), "{magic}");
    }

    #[test]
    fn explain_query_prints_the_rewrite_report() {
        let out = run_cli(
            &args(&[
                "run",
                "g.dmtl",
                "--horizon",
                "0..10",
                "--query",
                "reach(a, T)",
                "--explain-query",
            ]),
            fake_fs(&[("g.dmtl", REACH)]),
        )
        .unwrap();
        assert!(out.contains("-- explain-query reach(a, T) --"), "{out}");
        assert!(out.contains("mode: magic"), "{out}");
        assert!(out.contains("adornments:"), "{out}");
        assert!(out.contains("reach: bf -> magic_reach_bf"), "{out}");
        // The report precedes the answers, which are still printed.
        assert!(out.contains("-- query reach(a, T) --"), "{out}");
        assert!(out.contains("reach(a, b)@[0,10]"), "{out}");
    }

    #[test]
    fn query_parsing_edge_cases() {
        // Inverted window: a usage error naming the window.
        let err = run_cli(
            &args(&["run", "g.dmtl", "--query", "reach(a, T)@[5, 2]"]),
            fake_fs(&[("g.dmtl", REACH)]),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("lo > hi"), "{}", err.message);
        // Garbage atom: a usage error naming the query.
        let err = run_cli(
            &args(&["run", "g.dmtl", "--query", "reach(a"]),
            fake_fs(&[("g.dmtl", REACH)]),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("bad query"), "{}", err.message);
        // Unknown predicate: no matches, identically in both modes.
        let run = |extra: &[&str]| {
            let mut a = vec!["run", "g.dmtl", "--horizon", "0..10", "--query", "ghost(X)"];
            a.extend_from_slice(extra);
            run_cli(&args(&a), fake_fs(&[("g.dmtl", REACH)])).unwrap()
        };
        let magic = run(&[]);
        assert_eq!(magic, run(&["--no-magic"]));
        assert!(magic.contains("(no matches)"), "{magic}");
        // All-variable query (nothing bound): still goal-driven, still
        // byte-identical to the full model.
        let run = |extra: &[&str]| {
            let mut a = vec![
                "run",
                "g.dmtl",
                "--horizon",
                "0..10",
                "--query",
                "reach(X, Y)",
            ];
            a.extend_from_slice(extra);
            run_cli(&args(&a), fake_fs(&[("g.dmtl", REACH)])).unwrap()
        };
        assert_eq!(run(&[]), run(&["--no-magic"]));
    }

    #[test]
    fn negation_in_the_cone_keeps_negated_predicates_unguarded() {
        // `cool` depends on negated `hot`: `hot` (and everything below it)
        // must stay unguarded so the negation sees the complete relation,
        // while `cool` itself still takes a demand guard — answers equal
        // to the full model either way.
        let scenario = "hot(X) :- load(X, L), L > 5.\n\
                        cool(X) :- node(X), not hot(X).\n\
                        node(a)@[0, 9]. node(b)@[0, 9].\n\
                        load(a, 7)@[0, 9]. load(b, 3)@[0, 9].";
        let run = |query: &str, extra: &[&str]| {
            let mut a = vec!["run", "g.dmtl", "--horizon", "0..9", "--query", query];
            a.extend_from_slice(extra);
            run_cli(&args(&a), fake_fs(&[("g.dmtl", scenario)])).unwrap()
        };
        assert_eq!(run("cool(a)", &[]), run("cool(a)", &["--no-magic"]));
        assert_eq!(run("cool(b)", &[]), run("cool(b)", &["--no-magic"]));
        assert!(run("cool(b)", &[]).contains("cool(b)@[0,9]"));
        let report = run("cool(a)", &["--explain-query"]);
        assert!(report.contains("mode: magic"), "{report}");
        assert!(
            report.contains("unguardable (negation/aggregation): hot, load"),
            "{report}"
        );
        assert!(report.contains("hot(X) :- load(X, L), L > 5."), "{report}");
    }

    #[test]
    fn aggregate_queries_degrade_to_cone_mode_with_equal_answers() {
        // An aggregate head cannot take a demand guard (the guard would
        // change the aggregated multiset), so the whole cone is
        // unguardable and the query runs cone-restricted — but the
        // `other` rule outside the cone is still skipped.
        let scenario = "total(sum(M)) :- tran(A, M).\n\
                        other(X) :- noise(X).\n\
                        tran(acc1, 5.0)@[0, 9]. tran(acc2, 2.0)@[0, 9].\n\
                        noise(n)@[0, 9].";
        let run = |extra: &[&str]| {
            let mut a = vec!["run", "g.dmtl", "--horizon", "0..9", "--query", "total(T)"];
            a.extend_from_slice(extra);
            run_cli(&args(&a), fake_fs(&[("g.dmtl", scenario)])).unwrap()
        };
        let cone = run(&[]);
        assert_eq!(cone, run(&["--no-magic"]));
        assert!(cone.contains("total(7"), "{cone}");
        let report = run(&["--explain-query"]);
        assert!(report.contains("mode: cone"), "{report}");
        assert!(!report.contains("other(X)"), "{report}");
    }

    #[test]
    fn stats_json_v9_reports_demand_restriction() {
        let dir = std::env::temp_dir().join("chronolog-cli-magic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let report_for = |extra: &[&str], name: &str| {
            let path = dir.join(name);
            let mut a = vec![
                "run",
                "g.dmtl",
                "--horizon",
                "0..10",
                "--query",
                "reach(a, T)",
                "--stats-json",
                path.to_str().unwrap(),
            ];
            a.extend_from_slice(extra);
            run_cli(&args(&a), fake_fs(&[("g.dmtl", REACH)])).unwrap();
            let report = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
            std::fs::remove_file(&path).ok();
            report
        };
        let get = |r: &Json, field: &str| {
            r.get("magic")
                .and_then(|m| m.get(field))
                .cloned()
                .unwrap_or_else(|| panic!("missing magic.{field}"))
        };
        let goal = report_for(&[], "magic.json");
        assert_eq!(
            goal.get("schema_version").and_then(Json::as_u64),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(get(&goal, "mode").as_str(), Some("magic"));
        assert_eq!(get(&goal, "enabled").as_bool(), Some(true));
        assert_eq!(get(&goal, "degraded").as_bool(), Some(false));
        let demanded = get(&goal, "demanded_tuples").as_u64().unwrap();
        let full = report_for(&["--no-magic"], "full.json");
        assert_eq!(get(&full, "mode").as_str(), Some("full"));
        assert_eq!(get(&full, "enabled").as_bool(), Some(false));
        let full_tuples = get(&full, "demanded_tuples").as_u64().unwrap();
        // The bound query must not pay for the z-rooted reachability.
        assert!(
            demanded < full_tuples,
            "demanded {demanded} vs full {full_tuples}"
        );
    }
}
