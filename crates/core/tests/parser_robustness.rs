//! The parser must never panic: arbitrary byte soup, token soup, and
//! mutations of valid programs all either parse or return `Error::Parse`.
//!
//! Fuzz inputs are drawn from the deterministic in-repo `SmallRng`, one
//! seed per case, so failures reproduce from the printed seed.

use chronolog_core::parse_source;
use chronolog_obs::SmallRng;

#[test]
fn arbitrary_strings_never_panic() {
    for case in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0x5EED ^ case);
        let len = rng.gen_range_usize(0, 64);
        let s: String = (0..len)
            .map(|_| {
                // Mix of printable ASCII, multi-byte UTF-8, and controls.
                match rng.gen_range_usize(0, 10) {
                    0 => '\u{00e9}',
                    1 => '\u{2208}',
                    2 => '\n',
                    3 => '\t',
                    _ => (rng.gen_range_usize(0x20, 0x7f) as u8) as char,
                }
            })
            .collect();
        let _ = parse_source(&s);
    }
}

#[test]
fn token_soup_never_panics() {
    const TOKENS: [&str; 22] = [
        "p",
        "X",
        "(",
        ")",
        "[",
        "]",
        ",",
        ".",
        ":-",
        "@",
        "not",
        "boxminus",
        "diamondminus",
        "since",
        "sum",
        "=",
        "+",
        "-",
        "1",
        "2.5",
        "inf",
        "_",
    ];
    for case in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0x7053E7 ^ (case << 4));
        let n = rng.gen_range_usize(0, 24);
        let src = (0..n)
            .map(|_| *rng.choose(&TOKENS).unwrap())
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse_source(&src);
    }
}

/// Deleting a random chunk from a valid program must not panic.
#[test]
fn truncated_valid_programs_never_panic() {
    let valid = "margin(A, M) :- diamondminus margin(A, X), tranM(A, Y), M = X + Y.\n\
                 event(sum(S)) :- modPos(A, S).\n\
                 h(T) :- p(A)@T, since[0, 5](q(A), r(A)).\n\
                 price(1362.5)@[100, 200].";
    let bytes = valid.as_bytes();
    for case in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(0x7121C ^ (case << 2));
        let start = rng.gen_range_usize(0, 300).min(bytes.len());
        let len = rng.gen_range_usize(0, 80);
        let end = (start + len).min(bytes.len());
        let mut mutated = Vec::new();
        mutated.extend_from_slice(&bytes[..start]);
        mutated.extend_from_slice(&bytes[end..]);
        if let Ok(s) = String::from_utf8(mutated) {
            let _ = parse_source(&s);
        }
    }
}

#[test]
fn error_messages_carry_positions() {
    for bad in [
        "p(X) :- q(X",
        "p(X) q(X).",
        "p(X) :- boxminus[1, -2] q(X).",
        "p(X) :- .",
        "@5.",
        "p('unterminated).",
    ] {
        match parse_source(bad) {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("parse error at") || msg.contains("error"),
                    "uninformative error for `{bad}`: {msg}"
                );
            }
            Ok(_) => panic!("`{bad}` should not parse"),
        }
    }
}
