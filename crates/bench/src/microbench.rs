//! Minimal self-contained micro-benchmark harness.
//!
//! Covers the small Criterion subset the benches in `benches/` use —
//! groups, `bench_function`, `iter`, `iter_batched`, per-group sample
//! sizes — with zero external dependencies. Each benchmark is calibrated
//! so one sample takes a few milliseconds, then timed over `sample_size`
//! samples; min/median/mean per iteration are printed as the run goes.
//!
//! Pass `--json PATH` after `--` to also write the collected results as a
//! schema-versioned JSON report (see [`BENCH_SCHEMA_VERSION`]); the file
//! is written when the harness is dropped at the end of `main`. Results
//! accumulate across groups, so one report covers the whole bench binary.
//!
//! Wall-clock numbers from this harness are indicative, not
//! statistically rigorous: there is no outlier rejection and no
//! regression tracking. They are good enough for the relative
//! comparisons the repro tables make (semi-naive vs naive, dense vs
//! epoch timelines, engine vs oracle).

use chronolog_obs::Json;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Schema version of the `--json` report. v1: `{schema_version, command,
/// benches: [{name, median_ns, min_ns, mean_ns, iters, samples}]}`.
/// v2 added the `environment` section (`cpus` — the parallelism available
/// to the run, so multi-core baselines are labeled as such).
/// v3 added memory-footprint reporting: caller-supplied `environment`
/// fields (see [`Bench::set_env`]; the engine benches record the ABI
/// sizes of `Value` and `Interval` there) and an optional per-bench
/// `bytes_per_tuple` field (see [`Bench::annotate_bytes_per_tuple`]) for
/// benches that measure storage footprint alongside wall time.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// One finished benchmark's timing summary (per-iteration durations).
struct BenchResult {
    name: String,
    min: Duration,
    median: Duration,
    mean: Duration,
    iters: u64,
    samples: usize,
    /// Storage bytes per stored tuple, for benches that also measure a
    /// memory footprint (`None` keeps the field out of the report).
    bytes_per_tuple: Option<f64>,
}

/// Top-level harness; hand out groups or run stand-alone benchmarks.
pub struct Bench {
    filter: Option<String>,
    json_path: Option<String>,
    results: Vec<BenchResult>,
    env: Vec<(String, u64)>,
}

impl Bench {
    /// Builds a harness from the command line: an optional substring
    /// filter (`cargo bench --bench engine_micro -- parse` runs only
    /// benchmarks whose full name contains "parse") and an optional
    /// `--json PATH` for the machine-readable report.
    pub fn from_env() -> Bench {
        let mut filter = None;
        let mut json_path = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--json" {
                json_path = args.next();
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Bench {
            filter,
            json_path,
            results: Vec::new(),
            env: Vec::new(),
        }
    }

    /// Records an extra `environment` field in the JSON report (schema
    /// v3): machine- or build-level facts that contextualize the numbers,
    /// e.g. struct sizes behind a `bytes_per_tuple` figure.
    pub fn set_env(&mut self, key: &str, value: u64) {
        if let Some(e) = self.env.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            self.env.push((key.to_string(), value));
        }
    }

    /// Attaches a measured storage footprint (bytes per stored tuple) to
    /// the named benchmark's report entry. A no-op when the benchmark was
    /// filtered out of this run.
    pub fn annotate_bytes_per_tuple(&mut self, name: &str, bytes_per_tuple: f64) {
        if let Some(r) = self.results.iter_mut().find(|r| r.name == name) {
            r.bytes_per_tuple = Some(bytes_per_tuple);
        }
    }

    /// Starts a named group; benchmark names are prefixed `group/name`.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            prefix: name.to_string(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark with the default sample size.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.run_one(name, 20, f);
    }

    fn run_one(&mut self, name: &str, samples: usize, f: impl FnMut(&mut Bencher)) {
        if let Some(filt) = &self.filter {
            if !name.contains(filt.as_str()) {
                return;
            }
        }
        if let Some(result) = run_one(name, samples, f) {
            self.results.push(result);
        }
    }

    /// Renders the collected results as the schema-versioned JSON report.
    pub fn report_json(&self) -> Json {
        let mut report = Json::object();
        report.set("schema_version", BENCH_SCHEMA_VERSION);
        report.set(
            "command",
            std::env::args().next().unwrap_or_default().as_str(),
        );
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1);
        let mut environment = Json::object();
        environment.set("cpus", cpus);
        for (k, v) in &self.env {
            environment.set(k, *v);
        }
        report.set("environment", environment);
        report.set(
            "benches",
            Json::Arr(
                self.results
                    .iter()
                    .map(|r| {
                        let mut j = Json::from_pairs([
                            ("name", Json::from(r.name.as_str())),
                            ("median_ns", Json::from(r.median.as_nanos() as u64)),
                            ("min_ns", Json::from(r.min.as_nanos() as u64)),
                            ("mean_ns", Json::from(r.mean.as_nanos() as u64)),
                            ("iters", Json::from(r.iters)),
                            ("samples", Json::from(r.samples as u64)),
                        ]);
                        if let Some(bpt) = r.bytes_per_tuple {
                            j.set("bytes_per_tuple", bpt);
                        }
                        j
                    })
                    .collect(),
            ),
        );
        report
    }
}

impl Drop for Bench {
    fn drop(&mut self) {
        if let Some(path) = &self.json_path {
            match std::fs::write(path, self.report_json().to_pretty()) {
                Ok(()) => println!("wrote {} results to {path}", self.results.len()),
                Err(e) => eprintln!("cannot write bench report {path}: {e}"),
            }
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct Group<'a> {
    bench: &'a mut Bench,
    prefix: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets how many timed samples each benchmark in this group takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        let samples = self.sample_size;
        self.bench.run_one(&full, samples, f);
    }

    /// Ends the group. (Groups report as they go; this is a no-op kept for
    /// call-site symmetry.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated iteration count.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only; `setup` runs outside the timed region each
    /// iteration (for routines that consume their input).
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) -> Option<BenchResult> {
    // Warmup doubles as calibration: size each sample to take ~5ms so
    // Instant resolution noise stays below a percent.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed / iters as u32);
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{name:<45} min {:>12}  median {:>12}  mean {:>12}  ({iters} iters x {samples} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
    Some(BenchResult {
        name: name.to_string(),
        min,
        median,
        mean,
        iters,
        samples,
        bytes_per_tuple: None,
    })
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare(filter: Option<&str>) -> Bench {
        Bench {
            filter: filter.map(str::to_string),
            json_path: None,
            results: Vec::new(),
            env: Vec::new(),
        }
    }

    #[test]
    fn calibrates_and_runs() {
        let mut b = bare(None);
        let mut group = b.group("t");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran += 1;
        });
        group.finish();
        assert!(ran >= 3, "warmup + samples should all run, got {ran}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = bare(Some("other"));
        let mut ran = false;
        b.bench_function("this_one", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn json_report_carries_all_results() {
        let mut b = bare(None);
        let mut group = b.group("g");
        group.sample_size(2);
        group.bench_function("one", |b| b.iter(|| 1 + 1));
        group.bench_function("two", |b| b.iter(|| 2 + 2));
        group.finish();
        let report = b.report_json();
        assert_eq!(
            report.get("schema_version").and_then(Json::as_u64),
            Some(BENCH_SCHEMA_VERSION)
        );
        let benches = report.get("benches").and_then(Json::as_array).unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].get("name").and_then(Json::as_str), Some("g/one"));
        assert!(benches[0].get("median_ns").and_then(Json::as_u64).is_some());
        let cpus = report
            .get("environment")
            .and_then(|e| e.get("cpus"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(cpus >= 1, "runner parallelism must be recorded");
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
