//! 18-decimal fixed-point arithmetic — the arithmetic of the on-chain world.
//!
//! The real ETH-PERP runs in Solidity, where every amount is an integer
//! scaled by 10^18 and multiplication/division truncate. The paper's
//! validation compares Vadalog's floating-point results against the
//! Subgraph's fixed-point values and reports differences of order 1e-12
//! (Figures 4 and 5). To reproduce that *shape*, our reference engine can
//! run on this [`Fixed18`] backend: an `i128` of 18-decimal units with
//! truncating 256-bit intermediate products, exactly like the EVM's
//! `mulDiv` idiom.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// One unit = 10^-18. `Fixed18(10^18)` is 1.0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed18(i128);

/// 10^18 as `i128`.
pub const SCALE: i128 = 1_000_000_000_000_000_000;

#[allow(clippy::should_implement_trait)] // truncating semantics deserve named methods
impl Fixed18 {
    /// Zero.
    pub const ZERO: Fixed18 = Fixed18(0);
    /// One.
    pub const ONE: Fixed18 = Fixed18(SCALE);

    /// From raw 18-decimal units.
    pub const fn from_raw(raw: i128) -> Fixed18 {
        Fixed18(raw)
    }

    /// The raw 18-decimal units.
    pub const fn raw(self) -> i128 {
        self.0
    }

    /// From an integer.
    pub const fn from_int(n: i64) -> Fixed18 {
        Fixed18(n as i128 * SCALE)
    }

    /// From a float (the oracle feeds prices as decimals; this mirrors the
    /// scaling a node performs when submitting on-chain).
    pub fn from_f64(v: f64) -> Fixed18 {
        // Round to nearest unit, like a well-behaved oracle adapter.
        Fixed18((v * SCALE as f64).round() as i128)
    }

    /// To a float (what the Subgraph exposes to analytics consumers).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Truncating fixed-point multiply: `(a * b) / 10^18` with a 256-bit
    /// intermediate (the EVM `mulDiv` idiom).
    pub fn mul(self, other: Fixed18) -> Fixed18 {
        Fixed18(mul_div(self.0, other.0, SCALE))
    }

    /// Truncating fixed-point divide: `(a * 10^18) / b`.
    pub fn div(self, other: Fixed18) -> Fixed18 {
        assert!(other.0 != 0, "Fixed18 division by zero");
        Fixed18(mul_div(self.0, SCALE, other.0))
    }

    /// Absolute value.
    pub fn abs(self) -> Fixed18 {
        Fixed18(self.0.abs())
    }

    /// Clamps into `[lo, hi]` (the `clamp` of Figure 2).
    pub fn clamp(self, lo: Fixed18, hi: Fixed18) -> Fixed18 {
        Fixed18(self.0.clamp(lo.0, hi.0))
    }

    /// Sign: -1, 0 or 1.
    pub fn signum(self) -> i32 {
        match self.0.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        }
    }

    /// `true` iff exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// `(a * b) / d` with truncation toward zero and a 256-bit intermediate.
fn mul_div(a: i128, b: i128, d: i128) -> i128 {
    debug_assert!(d != 0);
    let negative = (a < 0) != (b < 0);
    let negative = negative != (d < 0);
    let (hi, lo) = mul_u128(a.unsigned_abs(), b.unsigned_abs());
    let q = div_u256_u128((hi, lo), d.unsigned_abs());
    let q = i128::try_from(q).expect("Fixed18 overflow in mul_div");
    if negative {
        -q
    } else {
        q
    }
}

/// Full 128x128 -> 256-bit unsigned multiply via 64-bit limbs.
fn mul_u128(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = u64::MAX as u128;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);

    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;

    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

/// 256-bit / 128-bit unsigned division (truncating), by binary long
/// division. Panics if the quotient does not fit in 128 bits.
fn div_u256_u128((mut rem_hi, mut rem_lo): (u128, u128), d: u128) -> u128 {
    assert!(d != 0);
    if rem_hi == 0 {
        return rem_lo / d;
    }
    assert!(rem_hi < d, "quotient overflow in 256/128 division");
    let mut q: u128 = 0;
    for _ in 0..128 {
        // (rem_hi, rem_lo) <<= 1
        let carry = rem_lo >> 127;
        rem_lo <<= 1;
        rem_hi = (rem_hi << 1) | carry;
        q <<= 1;
        if rem_hi >= d {
            rem_hi -= d;
            q |= 1;
        }
    }
    q
}

impl Add for Fixed18 {
    type Output = Fixed18;
    fn add(self, rhs: Fixed18) -> Fixed18 {
        Fixed18(self.0 + rhs.0)
    }
}

impl Sub for Fixed18 {
    type Output = Fixed18;
    fn sub(self, rhs: Fixed18) -> Fixed18 {
        Fixed18(self.0 - rhs.0)
    }
}

impl Neg for Fixed18 {
    type Output = Fixed18;
    fn neg(self) -> Fixed18 {
        Fixed18(-self.0)
    }
}

impl fmt::Debug for Fixed18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl fmt::Display for Fixed18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let two = Fixed18::from_int(2);
        let three = Fixed18::from_int(3);
        assert_eq!(two.mul(three), Fixed18::from_int(6));
        assert_eq!(Fixed18::from_int(7).div(two).to_f64(), 3.5);
        assert_eq!((two + three).to_f64(), 5.0);
        assert_eq!((two - three).to_f64(), -1.0);
        assert_eq!((-two).to_f64(), -2.0);
    }

    #[test]
    fn mul_handles_large_market_magnitudes() {
        // skew 2500 * price 1500 = 3.75e6: intermediates exceed i128 in raw
        // units (2.5e21 * 1.5e21 = 3.75e42).
        let skew = Fixed18::from_f64(2502.85);
        let price = Fixed18::from_f64(1500.0);
        let v = skew.mul(price);
        assert!((v.to_f64() - 2502.85 * 1500.0).abs() < 1e-9);
        // Even the skew-scale constant (3e8) products work.
        let scale = Fixed18::from_f64(300_000_000.0);
        let r = skew.mul(price).div(scale);
        assert!((r.to_f64() - (2502.85 * 1500.0 / 3e8)).abs() < 1e-12);
    }

    #[test]
    fn truncation_matches_evm_semantics() {
        // 1 / 3 truncates at the 18th decimal.
        let third = Fixed18::ONE.div(Fixed18::from_int(3));
        assert_eq!(third.raw(), 333_333_333_333_333_333);
        // (1/3) * 3 = 0.999999999999999999, not 1.
        assert_eq!(
            third.mul(Fixed18::from_int(3)).raw(),
            999_999_999_999_999_999
        );
        // Negative truncation is toward zero (Solidity sdiv).
        let neg_third = (-Fixed18::ONE).div(Fixed18::from_int(3));
        assert_eq!(neg_third.raw(), -333_333_333_333_333_333);
    }

    #[test]
    fn clamp_and_abs() {
        let v = Fixed18::from_f64(2.5);
        assert_eq!(v.clamp(-Fixed18::ONE, Fixed18::ONE), Fixed18::ONE);
        assert_eq!((-v).clamp(-Fixed18::ONE, Fixed18::ONE), -Fixed18::ONE);
        assert_eq!((-v).abs(), v);
        assert_eq!(
            Fixed18::from_f64(0.5)
                .clamp(-Fixed18::ONE, Fixed18::ONE)
                .to_f64(),
            0.5
        );
    }

    #[test]
    fn f64_roundtrip_is_close() {
        for v in [0.0, 1.0, -2.5, 1362.125, -2445.98, 3.4e9] {
            let f = Fixed18::from_f64(v);
            assert!((f.to_f64() - v).abs() <= v.abs() * 1e-15 + 1e-15, "{v}");
        }
    }

    #[test]
    fn mul_u128_limbs() {
        // (2^64)^2 = 2^128: hi = 1, lo = 0.
        let (hi, lo) = mul_u128(1u128 << 64, 1u128 << 64);
        assert_eq!((hi, lo), (1, 0));
        let (hi, lo) = mul_u128(u128::MAX, 1);
        assert_eq!((hi, lo), (0, u128::MAX));
        // (2^127)(2) = 2^128.
        let (hi, lo) = mul_u128(1u128 << 127, 2);
        assert_eq!((hi, lo), (1, 0));
    }

    #[test]
    fn div_u256() {
        assert_eq!(div_u256_u128((0, 100), 7), 14);
        // 2^128 / 2 = 2^127.
        assert_eq!(div_u256_u128((1, 0), 2), 1u128 << 127);
        // (2^128 + 5) / 4 = 2^126 + 1 (remainder 1).
        assert_eq!(div_u256_u128((1, 5), 4), (1u128 << 126) + 1);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Fixed18::ONE.div(Fixed18::ZERO);
    }
}
