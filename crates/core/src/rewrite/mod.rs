//! Magic-sets demand transformation for goal-driven query evaluation.
//!
//! A point query (`pred(args...)@[window]`) rarely needs the whole least
//! model: it depends only on the rules in its dependency cone, and within
//! that cone only on the tuples (and time windows) reachable from the
//! query's constants. This module compiles a [`Query`] into a rewritten
//! program that makes the engine materialize exactly that demanded slice:
//!
//! * **Cone extraction** — reverse reachability over the
//!   [`DependencyGraph`](crate::analysis::DependencyGraph) keeps only the
//!   rules the query can possibly depend on.
//! * **Adornment** — each guardable predicate gets one global binding
//!   pattern: the set of argument positions every demand site can supply
//!   (a shrinking meet-fixpoint seeded from the query's constants).
//! * **Guards and magic rules** — every guardable rule is prefixed with a
//!   demand guard over a fresh `magic_*` predicate, and each positive body
//!   occurrence of a guardable predicate spawns a magic rule that passes
//!   bindings sideways. Crucially, both guards and magic rules are
//!   *ordinary DatalogMTL rules*: head-operator chains are mirrored into
//!   diamond guards (`⊟ρ` head ↔ `◇⁻ρ` guard) and body-operator paths
//!   become magic head operators, so demanded time windows propagate
//!   through the same interval algebra the engine already implements —
//!   sideways information passing with time-window intersection falls out
//!   of ordinary fixpoint evaluation, and horizon clipping bounds the
//!   demand spread exactly as it bounds derivations.
//! * **Seeds** — one magic fact carrying the query's constants over the
//!   query window (or the whole horizon).
//!
//! Negation and aggregation are handled by an *unguardable set*: any
//! predicate read under negation or aggregation must stay complete, so its
//! rules (and, transitively downward, everything they read) run unguarded.
//! The rewritten program therefore computes the full model for the tainted
//! region and the demanded slice elsewhere — always sound, and byte-
//! identical to full materialization within the queried window (pinned by
//! the `magic_equivalence` suite).

mod adorn;
mod magic;

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::analysis::DependencyGraph;
use crate::ast::{Atom, Fact, Literal, Program, Rule, Term};
use crate::error::{Error, Result};
use crate::parser::parse_rule;
use crate::symbol::Symbol;
use crate::value::Value;
use mtl_temporal::{Interval, Rational, TimeBound};

/// A point query: an atom pattern (constants restrict, variables
/// enumerate) plus an optional time window the answer is clipped to.
#[derive(Clone, Debug)]
pub struct Query {
    /// The pattern; `exposure(cp0, X)` asks for every `X` (with validity
    /// intervals) such that `exposure(cp0, X)` holds.
    pub atom: Atom,
    /// Optional window: answers are clipped to it, and the magic seed
    /// demands only this slice of the timeline.
    pub window: Option<Interval>,
}

impl Query {
    /// A whole-timeline query over `atom`.
    pub fn new(atom: Atom) -> Query {
        Query { atom, window: None }
    }

    /// Restricts the query to `window`.
    pub fn over(atom: Atom, window: Interval) -> Query {
        Query {
            atom,
            window: Some(window),
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.atom)?;
        if let Some(w) = &self.window {
            write!(f, "@{w}")?;
        }
        Ok(())
    }
}

/// Parses a query of the form `pred(args...)`, `pred(args...)@t`, or
/// `pred(args...)@[lo,hi]`. Bounds are rationals (`3`, `3/2`, `2.5`);
/// an inverted window (`@[5,3]`) is [`Error::EmptyWindow`].
pub fn parse_query(text: &str) -> Result<Query> {
    let text = text.trim();
    if let Some((atom_part, window_part)) = text.rsplit_once('@') {
        if let Some(window) = parse_window(window_part.trim())? {
            return Ok(Query {
                atom: parse_query_atom(atom_part.trim())?,
                window: Some(window),
            });
        }
    }
    Ok(Query {
        atom: parse_query_atom(text)?,
        window: None,
    })
}

/// Parses the window suffix of a query. `Ok(None)` means "not a window"
/// (so the `@` belongs to the atom, e.g. a time-capture variable);
/// malformed or empty bracketed windows are errors.
fn parse_window(s: &str) -> Result<Option<Interval>> {
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| Error::Eval(format!("query window `{s}` is missing `]`")))?;
        let (lo, hi) = body
            .split_once(',')
            .ok_or_else(|| Error::Eval(format!("query window `{s}` needs `[lo,hi]`")))?;
        let lo: Rational = lo
            .trim()
            .parse()
            .map_err(|_| Error::Eval(format!("bad query window bound `{}`", lo.trim())))?;
        let hi: Rational = hi
            .trim()
            .parse()
            .map_err(|_| Error::Eval(format!("bad query window bound `{}`", hi.trim())))?;
        let window = Interval::new(TimeBound::Finite(lo), true, TimeBound::Finite(hi), true)
            .ok_or_else(|| Error::EmptyWindow(format!("query window [{lo},{hi}] has lo > hi")))?;
        return Ok(Some(window));
    }
    match s.parse::<Rational>() {
        Ok(t) => Ok(Some(Interval::point(t))),
        Err(_) => Ok(None),
    }
}

/// Parses the atom pattern by disguising it as a rule body.
fn parse_query_atom(text: &str) -> Result<Atom> {
    let rule = parse_rule(&format!("query_probe_() :- {text}."))
        .map_err(|_| Error::Eval(format!("bad query `{text}`: expected pred(args...)")))?;
    match rule.body.as_slice() {
        [Literal::Pos(crate::ast::MetricAtom::Rel(atom))] => Ok(atom.clone()),
        _ => Err(Error::Eval(format!(
            "bad query `{text}`: expected a plain pred(args...) pattern"
        ))),
    }
}

/// Counters describing one rewrite (surfaced as the `magic` section of
/// stats-json and by `--explain-query`).
#[derive(Clone, Debug, Default)]
pub struct MagicCounters {
    /// Predicates in the query's dependency cone.
    pub cone_preds: usize,
    /// Rules in the cone (the rewritten program before magic additions).
    pub cone_rules: usize,
    /// Rules in the source program.
    pub program_rules: usize,
    /// Cone rules that received a demand guard.
    pub guarded_rules: usize,
    /// Magic (demand-propagation) rules generated.
    pub magic_rules: usize,
    /// Magic seed facts.
    pub seeds: usize,
}

/// The output of the demand transformation: a rewritten program plus the
/// seed facts and bookkeeping the engine and CLI need.
#[derive(Clone, Debug)]
pub struct MagicRewrite {
    /// Guarded cone rules plus magic rules — evaluate this with the seeds.
    pub program: Program,
    /// The cone rules untouched — the degradation fallback when the
    /// guarded program fails validation (magic can break stratification
    /// in corner cases) or blows the iteration budget.
    pub cone_program: Program,
    /// Magic seed facts (window still unclipped; the engine intersects
    /// with its horizon).
    pub seeds: Vec<Fact>,
    /// Every magic predicate introduced — excluded from answer and
    /// demanded-tuple accounting, and floored by the planner's
    /// cardinality estimates.
    pub magic_preds: HashSet<Symbol>,
    /// Rewrite counters.
    pub counters: MagicCounters,
    /// Cone predicates, sorted by name (for explain output).
    cone_sorted: Vec<String>,
    /// Unguardable predicates, sorted by name.
    unguarded_sorted: Vec<String>,
    /// `pred -> (mask, magic name)` for every guarded IDB predicate.
    adornment_table: BTreeMap<String, (String, String)>,
}

impl MagicRewrite {
    /// `true` when the rewrite actually produced demand guards (otherwise
    /// evaluating `program` is plain cone-restricted materialization).
    pub fn is_guarded(&self) -> bool {
        self.counters.guarded_rules > 0
    }

    /// A deterministic human-readable report of what the rewrite did —
    /// the body of the CLI's `--explain-query` view.
    pub fn explain(&self, query: &Query) -> String {
        let mut out = String::new();
        out.push_str(&format!("query: {query}\n"));
        let mode = if self.is_guarded() { "magic" } else { "cone" };
        out.push_str(&format!(
            "mode: {mode} ({} of {} rules guarded, {} magic rules, {} seeds)\n",
            self.counters.guarded_rules,
            self.counters.cone_rules,
            self.counters.magic_rules,
            self.counters.seeds,
        ));
        out.push_str(&format!(
            "cone: {} predicates, {} of {} rules: {}\n",
            self.counters.cone_preds,
            self.counters.cone_rules,
            self.counters.program_rules,
            self.cone_sorted.join(", "),
        ));
        out.push_str(&format!(
            "unguardable (negation/aggregation): {}\n",
            if self.unguarded_sorted.is_empty() {
                "(none)".to_string()
            } else {
                self.unguarded_sorted.join(", ")
            }
        ));
        if !self.adornment_table.is_empty() {
            out.push_str("adornments:\n");
            for (pred, (mask, name)) in &self.adornment_table {
                let mask = if mask.is_empty() { "(nullary)" } else { mask };
                out.push_str(&format!("  {pred}: {mask} -> {name}\n"));
            }
        }
        out.push_str("rewritten program:\n");
        for rule in &self.program.rules {
            out.push_str(&format!("  {rule}\n"));
        }
        if !self.seeds.is_empty() {
            out.push_str("seeds:\n");
            for seed in &self.seeds {
                let args = seed
                    .args
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("  {}({args})@{}\n", seed.pred, seed.interval));
            }
        }
        out
    }
}

/// Compiles `query` against `program` into a demand-transformed program.
///
/// `reserved` lists predicate names the rewrite must not collide with
/// beyond the program's own (typically the input database's predicates).
/// The rewrite itself is total; validation of the guarded program (it can
/// lose stratifiability in corner cases) is the caller's job, with
/// [`MagicRewrite::cone_program`] as the fallback.
pub fn rewrite(program: &Program, query: &Query, reserved: &[Symbol]) -> MagicRewrite {
    let graph = DependencyGraph::build(program);
    let qpred = query.atom.pred;

    // Reverse reachability: everything the query predicate can read from.
    let mut cone: BTreeSet<Symbol> = BTreeSet::new();
    cone.insert(qpred);
    let mut changed = true;
    while changed {
        changed = false;
        for (from, to, _) in &graph.edges {
            if cone.contains(to) && cone.insert(*from) {
                changed = true;
            }
        }
    }
    let cone_rules: Vec<usize> = (0..program.rules.len())
        .filter(|&i| cone.contains(&program.rules[i].head.atom.pred))
        .collect();

    let unguarded = adorn::unguardable(program, &cone_rules);

    // Guardable IDB predicates: in the cone, not tainted, and defined by
    // at least one rule (demand for pure-EDB predicates is pointless: the
    // facts are already sitting in the database).
    let mut idb: BTreeSet<Symbol> = BTreeSet::new();
    for &ri in &cone_rules {
        idb.insert(program.rules[ri].head.atom.pred);
    }
    let guardable: BTreeSet<Symbol> = idb
        .iter()
        .copied()
        .filter(|p| !unguarded.contains(p))
        .collect();

    let adornments = adorn::adornments(program, &cone_rules, &guardable, &unguarded, query);

    // Allocate collision-free magic predicate names.
    let mut taken: BTreeSet<String> = BTreeSet::new();
    for rule in &program.rules {
        taken.insert(rule.head.atom.pred.as_str());
        for lit in &rule.body {
            if let Literal::Pos(m) | Literal::Neg(m) = lit {
                for a in m.atoms() {
                    taken.insert(a.pred.as_str());
                }
            }
        }
    }
    for p in reserved {
        taken.insert(p.as_str());
    }
    let mut magic_names: BTreeMap<Symbol, Symbol> = BTreeMap::new();
    let mut magic_preds = HashSet::new();
    for &p in &guardable {
        let arity = program.rules[cone_rules
            .iter()
            .copied()
            .find(|&ri| program.rules[ri].head.atom.pred == p)
            .expect("guardable predicate has a cone rule")]
        .head
        .atom
        .arity();
        let mask: String = (0..arity)
            .map(|j| {
                if adornments[&p].contains(&j) {
                    'b'
                } else {
                    'f'
                }
            })
            .collect();
        let mut name = if mask.is_empty() {
            format!("magic_{p}")
        } else {
            format!("magic_{p}_{mask}")
        };
        while taken.contains(&name) {
            name.push('_');
        }
        taken.insert(name.clone());
        let sym = Symbol::new(&name);
        magic_names.insert(p, sym);
        magic_preds.insert(sym);
    }

    // Rewrite: cone rules (guarded where possible) followed by the magic
    // demand-propagation rules.
    let mut rules: Vec<Rule> = Vec::new();
    let mut magic_rule_list: Vec<Rule> = Vec::new();
    let mut seen_magic: BTreeSet<String> = BTreeSet::new();
    let mut guarded_count = 0usize;
    for &ri in &cone_rules {
        let rule = &program.rules[ri];
        if !guardable.contains(&rule.head.atom.pred) {
            rules.push(rule.clone());
            continue;
        }
        guarded_count += 1;
        let guard = magic::guard_literal(rule, &adornments, &magic_names);
        rules.push(magic::guard_rule(rule, guard.clone()));
        magic::magic_rules(
            rule,
            &guard,
            &adornments,
            &magic_names,
            &guardable,
            &mut seen_magic,
            &mut magic_rule_list,
        );
    }
    let magic_rule_count = magic_rule_list.len();
    rules.extend(magic_rule_list);

    let seeds = magic::seed_facts(query, &adornments, &magic_names);

    let counters = MagicCounters {
        cone_preds: cone.len(),
        cone_rules: cone_rules.len(),
        program_rules: program.rules.len(),
        guarded_rules: guarded_count,
        magic_rules: magic_rule_count,
        seeds: seeds.len(),
    };

    let cone_program = Program {
        rules: cone_rules
            .iter()
            .map(|&ri| program.rules[ri].clone())
            .collect(),
    };

    let mut cone_sorted: Vec<String> = cone.iter().map(|p| p.as_str()).collect();
    cone_sorted.sort();
    let mut unguarded_sorted: Vec<String> = unguarded
        .iter()
        .filter(|p| cone.contains(p))
        .map(|p| p.as_str())
        .collect();
    unguarded_sorted.sort();
    let adornment_table = guardable
        .iter()
        .map(|p| {
            let magic_name = magic_names[p].as_str();
            let positions = &adornments[p];
            let arity = program
                .rules
                .iter()
                .find(|r| r.head.atom.pred == *p)
                .map_or(0, |r| r.head.atom.arity());
            let mask: String = (0..arity)
                .map(|j| if positions.contains(&j) { 'b' } else { 'f' })
                .collect();
            (p.as_str(), (mask, magic_name))
        })
        .collect();

    MagicRewrite {
        program: Program { rules },
        cone_program,
        seeds,
        magic_preds,
        counters,
        cone_sorted,
        unguarded_sorted,
        adornment_table,
    }
}

/// The query constants at adorned positions, for seeds and tests.
pub(crate) fn constant_positions(atom: &Atom) -> BTreeSet<usize> {
    atom.args
        .iter()
        .enumerate()
        .filter_map(|(j, t)| match t {
            Term::Val(_) => Some(j),
            Term::Var(_) => None,
        })
        .collect()
}

/// Projects ground arguments of `atom` onto `positions` (which must all
/// be constant positions).
pub(crate) fn project_constants(atom: &Atom, positions: &BTreeSet<usize>) -> Option<Vec<Value>> {
    positions
        .iter()
        .map(|&j| match atom.args.get(j) {
            Some(Term::Val(v)) => Some(*v),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn parses_bare_query() {
        let q = parse_query("exposure(cp0, X)").unwrap();
        assert_eq!(q.atom.pred.as_str(), "exposure");
        assert_eq!(q.atom.arity(), 2);
        assert!(q.window.is_none());
    }

    #[test]
    fn parses_windowed_query() {
        let q = parse_query("pnl(acc1)@[0, 10]").unwrap();
        let w = q.window.unwrap();
        assert_eq!(w, Interval::closed_int(0, 10));
    }

    #[test]
    fn parses_point_query() {
        let q = parse_query("pnl(acc1)@5").unwrap();
        assert_eq!(q.window.unwrap(), Interval::at(5));
    }

    #[test]
    fn inverted_window_is_empty_window_error() {
        assert!(matches!(
            parse_query("p(a)@[5,3]"),
            Err(Error::EmptyWindow(_))
        ));
    }

    #[test]
    fn garbage_query_is_an_error() {
        assert!(parse_query("p(a) :- q(b)").is_err());
        assert!(parse_query("not p(a)").is_err());
    }

    #[test]
    fn netting_cone_guards_exposure_only() {
        let program = parse_program(
            "exposure(X, Y) :- trade(X, Y).\n\
             exposure(X, Z) :- exposure(X, Y), trade(Y, Z).\n\
             nettable(X, Z) :- exposure(X, Y), exposure(Y, Z).\n",
        )
        .unwrap();
        let query = parse_query("exposure(cp0, X)").unwrap();
        let rw = rewrite(&program, &query, &[]);
        assert_eq!(rw.counters.cone_preds, 2); // exposure, trade
        assert_eq!(rw.counters.cone_rules, 2); // nettable rule dropped
        assert_eq!(rw.counters.guarded_rules, 2);
        assert_eq!(rw.counters.seeds, 1);
        assert!(rw.is_guarded());
        // The recursive rule passes the bound first argument sideways:
        // magic_exposure_bf(X) :- magic_exposure_bf(X) is a tautology and
        // must have been dropped; the base rule generates nothing (trade
        // is EDB). So only the guard rewiring remains.
        assert_eq!(rw.counters.magic_rules, 0);
        let seed = &rw.seeds[0];
        assert_eq!(seed.args, vec![Value::sym("cp0")]);
    }

    #[test]
    fn negation_taints_the_cone_downward() {
        let program = parse_program(
            "a(X) :- b(X), not c(X).\n\
             c(X) :- d(X).\n\
             d(X) :- e(X).\n",
        )
        .unwrap();
        let query = parse_query("a(k)").unwrap();
        let rw = rewrite(&program, &query, &[]);
        // c is negated, so c, d (and transitively e) are unguardable;
        // only a's rule takes a guard.
        assert_eq!(rw.counters.guarded_rules, 1);
        assert_eq!(rw.unguarded_sorted, vec!["c", "d", "e"]);
    }

    #[test]
    fn magic_names_avoid_collisions() {
        let program = parse_program(
            "magic_p_b(X) :- q(X).\n\
             p(X) :- magic_p_b(X), r(X).\n",
        )
        .unwrap();
        let query = parse_query("p(a)").unwrap();
        let rw = rewrite(&program, &query, &[]);
        assert!(rw.magic_preds.iter().all(|m| m.as_str() != "magic_p_b"));
    }
}
