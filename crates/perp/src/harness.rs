//! The validation harness of §4: runs the DatalogMTL program over a trace,
//! runs the reference engines, and compares the funding rate sequence
//! (Figure 4) and per-trade results (Figure 5).

use crate::encode::encode_trace;
use crate::extract::{extract_run, ExtractError};
use crate::fixed::Fixed18;
use crate::params::MarketParams;
use crate::program::{build_program, TimelineMode};
use crate::reference::ReferenceEngine;
use crate::types::{MarketRun, Trace};
use chronolog_core::{Reasoner, ReasonerConfig, RunStats};

/// Harness failure.
#[derive(Debug)]
pub enum HarnessError {
    /// Invalid input trace.
    Trace(String),
    /// Reasoning failure.
    Reasoner(chronolog_core::Error),
    /// Missing/ambiguous derived values.
    Extract(ExtractError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Trace(m) => write!(f, "invalid trace: {m}"),
            HarnessError::Reasoner(e) => write!(f, "{e}"),
            HarnessError::Extract(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<chronolog_core::Error> for HarnessError {
    fn from(e: chronolog_core::Error) -> Self {
        HarnessError::Reasoner(e)
    }
}

impl From<ExtractError> for HarnessError {
    fn from(e: ExtractError) -> Self {
        HarnessError::Extract(e)
    }
}

/// The DatalogMTL execution of a trace.
pub struct DatalogRun {
    /// Observable outputs.
    pub run: MarketRun,
    /// Engine statistics (runtime, iterations, derived facts).
    pub stats: RunStats,
}

/// Executes the ETH-PERP DatalogMTL program over a trace.
pub fn run_datalog(
    trace: &Trace,
    params: &MarketParams,
    mode: TimelineMode,
) -> Result<DatalogRun, HarnessError> {
    run_datalog_with(trace, params, mode, true)
}

/// Like [`run_datalog`] with an explicit semi-naive switch (ablation).
pub fn run_datalog_with(
    trace: &Trace,
    params: &MarketParams,
    mode: TimelineMode,
    semi_naive: bool,
) -> Result<DatalogRun, HarnessError> {
    run_datalog_configured(trace, params, mode, true, semi_naive, 1, None)
}

/// Like [`run_datalog`] with an explicit evaluation thread count.
pub fn run_datalog_threaded(
    trace: &Trace,
    params: &MarketParams,
    mode: TimelineMode,
    threads: usize,
) -> Result<DatalogRun, HarnessError> {
    run_datalog_configured(trace, params, mode, true, true, threads, None)
}

/// Like [`run_datalog`] with cost-based join reordering toggled
/// (the `--no-reorder` ablation).
pub fn run_datalog_reordered(
    trace: &Trace,
    params: &MarketParams,
    mode: TimelineMode,
    cost_based_reorder: bool,
) -> Result<DatalogRun, HarnessError> {
    run_datalog_configured(trace, params, mode, cost_based_reorder, true, 1, None)
}

/// Like [`run_datalog`] with a span profiler attached: the recorder
/// collects the engine's materialization spans for Chrome-trace or
/// flamegraph export.
pub fn run_datalog_profiled(
    trace: &Trace,
    params: &MarketParams,
    mode: TimelineMode,
    profiler: chronolog_obs::SpanRecorder,
) -> Result<DatalogRun, HarnessError> {
    run_datalog_configured(trace, params, mode, true, true, 1, Some(profiler))
}

#[allow(clippy::fn_params_excessive_bools)]
fn run_datalog_configured(
    trace: &Trace,
    params: &MarketParams,
    mode: TimelineMode,
    cost_based_reorder: bool,
    semi_naive: bool,
    threads: usize,
    profiler: Option<chronolog_obs::SpanRecorder>,
) -> Result<DatalogRun, HarnessError> {
    trace.validate().map_err(HarnessError::Trace)?;
    let program = build_program(params, mode)?;
    let encoded = encode_trace(trace, mode);
    let config = ReasonerConfig {
        cost_based_reorder,
        semi_naive,
        profiler,
        ..ReasonerConfig::default()
            .with_horizon(encoded.horizon.0, encoded.horizon.1)
            .with_threads(threads)
    };
    let reasoner = Reasoner::new(program, config)?;
    let m = reasoner.materialize(&encoded.database)?;
    let run = extract_run(&m.database, trace, &encoded)?;
    let registry = chronolog_obs::Registry::global();
    registry.counter("perp.runs").inc();
    registry
        .counter("perp.events")
        .add(trace.events.len() as u64);
    registry.counter("perp.trades").add(run.trades.len() as u64);
    registry
        .histogram("perp.run_latency_us")
        .record(m.stats.elapsed.as_micros() as u64);
    Ok(DatalogRun {
        run,
        stats: m.stats,
    })
}

/// One row of the Figure-4 table: the FRS after an event, from the
/// "Subgraph" (fixed-point reference) and from the DatalogMTL run.
#[derive(Clone, Copy, Debug)]
pub struct FrsRow {
    /// Event timestamp.
    pub time: i64,
    /// Fixed-point (on-chain) value.
    pub subgraph: f64,
    /// DatalogMTL value.
    pub datalog: f64,
}

impl FrsRow {
    /// The difference column of Figure 4.
    pub fn diff(&self) -> f64 {
        self.datalog - self.subgraph
    }
}

/// Mean/standard deviation of per-trade errors — one column of Figure 5.
#[derive(Clone, Copy, Debug, Default)]
pub struct ErrorStats {
    /// Mean error.
    pub mean: f64,
    /// Standard deviation of the errors.
    pub std_dev: f64,
    /// Largest absolute error.
    pub max_abs: f64,
    /// Number of trades.
    pub count: usize,
}

impl ErrorStats {
    /// Computes the statistics of an error sample.
    pub fn of(errors: &[f64]) -> ErrorStats {
        if errors.is_empty() {
            return ErrorStats::default();
        }
        let n = errors.len() as f64;
        let mean = errors.iter().sum::<f64>() / n;
        let var = errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n;
        ErrorStats {
            mean,
            std_dev: var.sqrt(),
            max_abs: errors.iter().fold(0.0, |m, e| m.max(e.abs())),
            count: errors.len(),
        }
    }
}

/// The full §4 validation of one interval: Figure 4 rows plus Figure 5
/// statistics.
pub struct ValidationReport {
    /// FRS comparison rows (Figure 4).
    pub frs_rows: Vec<FrsRow>,
    /// Returns-error statistics (Figure 5 column 1).
    pub returns: ErrorStats,
    /// Fee-error statistics (Figure 5 column 2).
    pub fee: ErrorStats,
    /// Funding-error statistics (Figure 5 column 3).
    pub funding: ErrorStats,
    /// The DatalogMTL run.
    pub datalog: MarketRun,
    /// The fixed-point reference run (the "Subgraph" values).
    pub subgraph: MarketRun,
    /// Engine statistics of the DatalogMTL run.
    pub stats: RunStats,
}

impl ValidationReport {
    /// Largest absolute FRS difference across all events.
    pub fn max_frs_diff(&self) -> f64 {
        self.frs_rows.iter().fold(0.0, |m, r| m.max(r.diff().abs()))
    }
}

/// Runs the full validation of §4 on one trace: DatalogMTL vs the
/// fixed-point reference.
pub fn validate(
    trace: &Trace,
    params: &MarketParams,
    mode: TimelineMode,
) -> Result<ValidationReport, HarnessError> {
    let datalog = run_datalog(trace, params, mode)?;
    let subgraph = ReferenceEngine::<Fixed18>::run_trace(*params, trace);
    let report = build_report(datalog, subgraph);
    let registry = chronolog_obs::Registry::global();
    registry.counter("perp.validations").inc();
    registry
        .counter("perp.settlements")
        .add(report.datalog.trades.len() as u64);
    Ok(report)
}

fn build_report(datalog: DatalogRun, subgraph: MarketRun) -> ValidationReport {
    assert_eq!(
        datalog.run.frs.len(),
        subgraph.frs.len(),
        "both engines see every event"
    );
    let frs_rows = datalog
        .run
        .frs
        .iter()
        .zip(&subgraph.frs)
        .map(|(&(t, d), &(t2, s))| {
            debug_assert_eq!(t, t2);
            FrsRow {
                time: t,
                subgraph: s,
                datalog: d,
            }
        })
        .collect();
    assert_eq!(datalog.run.trades.len(), subgraph.trades.len());
    let errors = |f: fn(&crate::types::TradeSettlement) -> f64| -> Vec<f64> {
        datalog
            .run
            .trades
            .iter()
            .zip(&subgraph.trades)
            .map(|(a, b)| f(a) - f(b))
            .collect()
    };
    ValidationReport {
        returns: ErrorStats::of(&errors(|t| t.pnl)),
        fee: ErrorStats::of(&errors(|t| t.fee)),
        funding: ErrorStats::of(&errors(|t| t.funding)),
        frs_rows,
        datalog: datalog.run,
        subgraph,
        stats: datalog.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AccountId, Event, Method};

    fn ev(t: i64, acc: u32, m: Method, price: f64) -> Event {
        Event {
            time: t,
            account: AccountId(acc),
            method: m,
            price,
        }
    }

    /// A small but complete scenario: two traders, deposits, long and short
    /// positions, a midway modification, closes, and a withdrawal.
    fn small_trace() -> Trace {
        Trace {
            start_time: 1_664_000_000,
            end_time: 1_664_000_600,
            initial_skew: -2445.98,
            initial_price: 1362.5,
            events: vec![
                ev(
                    1_664_000_010,
                    1,
                    Method::TransferMargin { amount: 5_000.0 },
                    1362.5,
                ),
                ev(
                    1_664_000_025,
                    1,
                    Method::ModifyPosition { size: 1.5 },
                    1363.0,
                ),
                ev(
                    1_664_000_080,
                    2,
                    Method::TransferMargin { amount: 9_000.0 },
                    1364.0,
                ),
                ev(
                    1_664_000_120,
                    2,
                    Method::ModifyPosition { size: -2.25 },
                    1361.0,
                ),
                ev(
                    1_664_000_200,
                    1,
                    Method::ModifyPosition { size: 0.75 },
                    1360.0,
                ),
                ev(1_664_000_320, 1, Method::ClosePosition, 1359.5),
                ev(1_664_000_400, 2, Method::ClosePosition, 1365.25),
                ev(1_664_000_450, 1, Method::Withdraw, 1365.0),
            ],
        }
    }

    #[test]
    fn datalog_matches_f64_reference_exactly() {
        let trace = small_trace();
        let params = MarketParams::default();
        let datalog = run_datalog(&trace, &params, TimelineMode::EventEpochs).unwrap();
        let float_ref = ReferenceEngine::<f64>::run_trace(params, &trace);
        assert_eq!(datalog.run.frs.len(), float_ref.frs.len());
        for ((t1, a), (t2, b)) in datalog.run.frs.iter().zip(&float_ref.frs) {
            assert_eq!(t1, t2);
            assert_eq!(a, b, "FRS differs at t={t1}: {a} vs {b}");
        }
        assert_eq!(datalog.run.trades.len(), float_ref.trades.len());
        for (a, b) in datalog.run.trades.iter().zip(&float_ref.trades) {
            assert_eq!(a.account, b.account);
            assert_eq!(a.pnl, b.pnl, "pnl");
            assert_eq!(a.fee, b.fee, "fee");
            assert_eq!(a.funding, b.funding, "funding");
        }
        assert_eq!(datalog.run.final_skew, float_ref.final_skew);
    }

    #[test]
    fn dense_and_epoch_modes_agree_exactly() {
        let trace = Trace {
            // Shrunk window so the dense run stays fast in the test suite.
            start_time: 0,
            end_time: 700,
            initial_skew: 1302.88,
            initial_price: 1320.0,
            events: vec![
                ev(10, 1, Method::TransferMargin { amount: 5_000.0 }, 1320.0),
                ev(35, 1, Method::ModifyPosition { size: -0.8 }, 1321.5),
                ev(300, 2, Method::TransferMargin { amount: 2_000.0 }, 1318.0),
                ev(420, 2, Method::ModifyPosition { size: 1.2 }, 1319.0),
                ev(550, 1, Method::ClosePosition, 1322.25),
                ev(620, 2, Method::ClosePosition, 1317.75),
            ],
        };
        let params = MarketParams::default();
        let dense = run_datalog(&trace, &params, TimelineMode::DenseSeconds).unwrap();
        let epoch = run_datalog(&trace, &params, TimelineMode::EventEpochs).unwrap();
        assert_eq!(dense.run.frs, epoch.run.frs);
        assert_eq!(dense.run.trades, epoch.run.trades);
        assert_eq!(dense.run.final_skew, epoch.run.final_skew);
    }

    #[test]
    fn validation_report_shows_dust_vs_subgraph() {
        let trace = small_trace();
        let report = validate(&trace, &MarketParams::default(), TimelineMode::EventEpochs).unwrap();
        assert_eq!(report.frs_rows.len(), 8);
        assert_eq!(report.returns.count, 2);
        // The float/fixed divergence exists but is dust (the paper's 1e-12
        // "perfect accuracy" claim).
        assert!(report.max_frs_diff() < 1e-9, "{}", report.max_frs_diff());
        assert!(report.returns.max_abs < 1e-6);
        assert!(report.fee.max_abs < 1e-6);
        assert!(report.funding.max_abs < 1e-6);
    }

    #[test]
    fn seminaive_ablation_is_equivalent() {
        let trace = small_trace();
        let params = MarketParams::default();
        let a = run_datalog_with(&trace, &params, TimelineMode::EventEpochs, true).unwrap();
        let b = run_datalog_with(&trace, &params, TimelineMode::EventEpochs, false).unwrap();
        assert_eq!(a.run.frs, b.run.frs);
        assert_eq!(a.run.trades, b.run.trades);
    }

    #[test]
    fn profiled_run_is_equivalent_and_records_spans() {
        let trace = small_trace();
        let params = MarketParams::default();
        let plain = run_datalog(&trace, &params, TimelineMode::EventEpochs).unwrap();
        let recorder = chronolog_obs::SpanRecorder::new();
        let profiled =
            run_datalog_profiled(&trace, &params, TimelineMode::EventEpochs, recorder.clone())
                .unwrap();
        assert_eq!(plain.run.frs, profiled.run.frs);
        assert_eq!(plain.run.trades, profiled.run.trades);
        assert_eq!(plain.run.final_skew, profiled.run.final_skew);
        assert!(recorder.spans_recorded() > 0, "no spans recorded");
        assert_eq!(recorder.dropped(), 0);
        assert!(
            !recorder.to_folded().trim().is_empty(),
            "folded export empty"
        );
    }

    #[test]
    fn invalid_trace_is_rejected() {
        let mut trace = small_trace();
        trace.events.swap(0, 1);
        assert!(matches!(
            run_datalog(&trace, &MarketParams::default(), TimelineMode::EventEpochs),
            Err(HarnessError::Trace(_))
        ));
    }
}
