//! Global value interning for columnar relation storage.
//!
//! Columnar relations store every constant as a dense `u32` **vid** (value
//! id) so argument columns are flat `Vec<u32>`s. Two ids matter per value:
//!
//! * **vid** — structural identity. `Int(3)` and `Num(3.0)` get *different*
//!   vids because they render differently (`3` vs `3.0`) and output must stay
//!   byte-identical to the row store.
//! * **sid** — semantic class. `Int(3)` and `Num(3.0)` share a sid because
//!   `Value::semantic_eq` coerces Int/Num through `f64`, exactly like the
//!   secondary-index buckets (`IndexKey::of`). Join unification compares
//!   sids (one `u32` compare) and only decodes vids on success.
//!
//! The sid bucketing keys numerics on `f64::to_bits`, which is sound as a
//! proxy for `semantic_eq` on every reachable value: `OrdF64` normalizes
//! `-0.0` to `0.0` at construction and rejects NaN, and `Int` cannot produce
//! a negative zero, so bit-equality of the coerced `f64` coincides with
//! semantic equality.
//!
//! Like [`crate::symbol`], the table is process-global: programs reuse the
//! same constants across databases, sessions, and snapshots, and global ids
//! are what make `Relation::clone` a plain column memcpy.

use crate::error::{Error, Result};
use crate::hash::FxHashMap;
use crate::symbol::Symbol;
use crate::value::Value;
use std::sync::{OnceLock, RwLock, RwLockReadGuard};

/// Column padding sentinel for positions past a tuple's arity. Never a
/// valid vid: the interner refuses to allocate it.
pub(crate) const NONE_VID: u32 = u32::MAX;

/// Semantic-class key, mirroring `IndexKey` in `database.rs`: numerics
/// bucket on the coerced `f64` bit pattern, everything else structurally.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum SemKey {
    Num(u64),
    Sym(Symbol),
    Bool(bool),
}

impl SemKey {
    fn of(v: &Value) -> SemKey {
        match v.as_f64() {
            Some(f) => SemKey::Num(f.to_bits()),
            None => match v {
                Value::Sym(s) => SemKey::Sym(*s),
                Value::Bool(b) => SemKey::Bool(*b),
                Value::Int(_) | Value::Num(_) => unreachable!("numeric handled via as_f64"),
            },
        }
    }
}

/// The vid/sid tables. Public only through the module-level functions and
/// the read guard handed to hot loops.
pub(crate) struct ValueInterner {
    vids: FxHashMap<Value, u32>,
    sems: FxHashMap<SemKey, u32>,
    /// vid → (value, sid). The sid of a class is the vid of its first
    /// interned member, so sids need no second table.
    table: Vec<(Value, u32)>,
    /// Maximum table size; `NONE_VID` for the global instance, small for
    /// overflow tests.
    cap: u32,
}

impl ValueInterner {
    pub(crate) fn with_capacity_limit(cap: u32) -> ValueInterner {
        ValueInterner {
            vids: FxHashMap::default(),
            sems: FxHashMap::default(),
            table: Vec::new(),
            // `cap` is a u32 so it can never exceed `NONE_VID` (u32::MAX);
            // the sentinel stays unmintable because `intern` errors at `cap`
            // *before* handing out the id equal to it.
            cap,
        }
    }

    /// Interns a value, returning its vid. Fails with a typed
    /// [`Error::InternerOverflow`] once the id space is exhausted instead
    /// of panicking mid-materialization.
    pub(crate) fn intern(&mut self, v: Value) -> Result<u32> {
        if let Some(&vid) = self.vids.get(&v) {
            return Ok(vid);
        }
        let vid = self.table.len() as u64;
        if vid >= self.cap as u64 {
            return Err(Error::InternerOverflow(format!(
                "value interner exhausted its {} distinct-constant id space interning {v}",
                self.cap
            )));
        }
        let vid = vid as u32;
        let sid = *self.sems.entry(SemKey::of(&v)).or_insert(vid);
        self.table.push((v, sid));
        self.vids.insert(v, vid);
        Ok(vid)
    }

    /// Structural lookup without interning.
    pub(crate) fn vid_of(&self, v: &Value) -> Option<u32> {
        self.vids.get(v).copied()
    }

    /// Semantic-class id of a value, if any member of its class has been
    /// interned. `None` means no stored tuple can semantically match `v`.
    pub(crate) fn sid_of(&self, v: &Value) -> Option<u32> {
        self.sems.get(&SemKey::of(v)).copied()
    }

    /// The value a vid stands for.
    #[inline]
    pub(crate) fn decode(&self, vid: u32) -> Value {
        self.table[vid as usize].0
    }

    /// The semantic-class id of a vid.
    #[inline]
    pub(crate) fn sid(&self, vid: u32) -> u32 {
        self.table[vid as usize].1
    }

    pub(crate) fn len(&self) -> usize {
        self.table.len()
    }
}

fn global() -> &'static RwLock<ValueInterner> {
    static INTERNER: OnceLock<RwLock<ValueInterner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(ValueInterner::with_capacity_limit(NONE_VID)))
}

/// Read access for hot loops: take the guard once per `eval_rel` call and
/// resolve vids/sids through it. Interning (a write lock) only happens on
/// the single-threaded merge path, never concurrently with evaluation, so
/// readers don't contend with writers in practice.
pub(crate) fn read() -> RwLockReadGuard<'static, ValueInterner> {
    global().read().expect("value interner poisoned")
}

/// Interns through the global table (read fast path, write on miss).
pub(crate) fn intern(v: Value) -> Result<u32> {
    if let Some(vid) = read().vid_of(&v) {
        return Ok(vid);
    }
    global().write().expect("value interner poisoned").intern(v)
}

/// Number of distinct values interned so far (stats-json `storage`).
pub(crate) fn interned_value_count() -> usize {
    read().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_is_structural_sid_is_semantic() {
        let i3 = intern(Value::Int(3)).unwrap();
        let n3 = intern(Value::num(3.0)).unwrap();
        let again = intern(Value::Int(3)).unwrap();
        assert_eq!(i3, again, "re-interning is idempotent");
        assert_ne!(i3, n3, "Int(3) and Num(3.0) render differently");
        let g = read();
        assert_eq!(g.sid(i3), g.sid(n3), "but share a semantic class");
        assert_eq!(g.decode(i3), Value::Int(3));
        assert_eq!(g.decode(n3), Value::num(3.0));
    }

    #[test]
    fn negative_zero_buckets_with_zero() {
        let z = intern(Value::num(0.0)).unwrap();
        let nz = intern(Value::num(-0.0)).unwrap();
        let iz = intern(Value::Int(0)).unwrap();
        // OrdF64 normalizes -0.0 at construction, so the vids collapse too.
        assert_eq!(z, nz);
        let g = read();
        assert_eq!(g.sid(z), g.sid(iz));
    }

    #[test]
    #[should_panic(expected = "NaN cannot be a DatalogMTL value")]
    fn nan_never_reaches_the_interner() {
        // The interner buckets floats by `f64::to_bits`, where every NaN
        // payload would be its own id and `semantic_eq` (IEEE `==`) would
        // never match it — so NaN is rejected upstream, at value
        // construction, before any interning can happen.
        let _ = intern(Value::num(f64::NAN));
    }

    #[test]
    fn to_bits_bucketing_matches_semantic_eq() {
        // The hash bucket key is the normalized bit pattern: values that
        // `semantic_eq` as floats must collapse to one semantic class even
        // when their source spelling differs, and genuinely different
        // floats never share one.
        let a = intern(Value::num(2.5)).unwrap();
        let b = intern(Value::num(2.5)).unwrap();
        let c = intern(Value::num(2.5000000000000004)).unwrap();
        assert_eq!(a, b, "identical bit patterns share a vid");
        assert_ne!(a, c, "one-ulp-apart floats stay distinct");
        let g = read();
        assert_ne!(g.sid(a), g.sid(c));
    }

    #[test]
    fn sid_of_misses_mean_no_match() {
        let mut local = ValueInterner::with_capacity_limit(16);
        local.intern(Value::Int(1)).unwrap();
        assert_eq!(local.sid_of(&Value::num(1.0)), local.vid_of(&Value::Int(1)));
        assert_eq!(local.sid_of(&Value::Int(999)), None);
    }

    #[test]
    fn overflow_is_a_typed_error_not_a_panic() {
        let mut local = ValueInterner::with_capacity_limit(2);
        local.intern(Value::Int(1)).unwrap();
        local.intern(Value::Int(2)).unwrap();
        // Re-interning existing values still works at capacity.
        assert!(local.intern(Value::Int(1)).is_ok());
        let err = local.intern(Value::Int(3)).unwrap_err();
        assert!(
            matches!(err, Error::InternerOverflow(_)),
            "expected InternerOverflow, got {err:?}"
        );
        assert!(err.to_string().contains("interner"));
    }
}
