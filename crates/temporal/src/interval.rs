//! Intervals over the rational timeline, with all four open/closed bound
//! combinations, and the endpoint arithmetic behind the MTL operators.
//!
//! DatalogMTL facts are annotated with intervals `⟨t1, t2⟩` where each side is
//! independently open or closed and endpoints range over ℚ ∪ {−∞, +∞}. The
//! operator transforms (`◇⁻ρ` as Minkowski sum, `⊟ρ` as erosion, and their
//! future mirrors) are implemented here on single intervals; the coalesced
//! multi-interval versions live in [`crate::IntervalSet`].

use crate::Rational;
use std::cmp::Ordering;
use std::fmt;

/// Endpoint arithmetic overflowed the rational timeline: a shifted endpoint
/// no longer fits an `i64` numerator/denominator after reduction.
///
/// Returned by the `checked_*` operator transforms so callers (the reasoner,
/// a live session) can reject a pathological program instead of aborting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimeOverflow;

impl fmt::Display for TimeOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "temporal endpoint arithmetic overflowed the rational timeline"
        )
    }
}

impl std::error::Error for TimeOverflow {}

/// One endpoint of an interval: a finite rational or ±∞.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimeBound {
    /// Negative infinity (always an open endpoint).
    NegInf,
    /// A finite rational time point.
    Finite(Rational),
    /// Positive infinity (always an open endpoint).
    PosInf,
}

impl TimeBound {
    /// The finite value, if any.
    pub fn finite(self) -> Option<Rational> {
        match self {
            TimeBound::Finite(r) => Some(r),
            _ => None,
        }
    }

    /// `true` iff the bound is finite.
    pub fn is_finite(self) -> bool {
        matches!(self, TimeBound::Finite(_))
    }

    /// Endpoint addition for operator shifts; `None` if the finite sum
    /// overflows the rational timeline. `NegInf + PosInf` is the only
    /// undefined combination and cannot arise from valid operator transforms.
    pub fn checked_add(self, other: TimeBound) -> Option<TimeBound> {
        use TimeBound::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.checked_add(b).map(Finite),
            (NegInf, PosInf) | (PosInf, NegInf) => {
                unreachable!("indeterminate -inf + +inf in interval arithmetic")
            }
            (NegInf, _) | (_, NegInf) => Some(NegInf),
            (PosInf, _) | (_, PosInf) => Some(PosInf),
        }
    }

    /// Endpoint subtraction; `None` on overflow. `NegInf - NegInf` and
    /// `PosInf - PosInf` are the undefined combinations.
    pub fn checked_sub(self, other: TimeBound) -> Option<TimeBound> {
        use TimeBound::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.checked_sub(b).map(Finite),
            (NegInf, NegInf) | (PosInf, PosInf) => {
                unreachable!("indeterminate inf - inf in interval arithmetic")
            }
            (NegInf, _) | (_, PosInf) => Some(NegInf),
            (PosInf, _) | (_, NegInf) => Some(PosInf),
        }
    }
}

impl PartialOrd for TimeBound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeBound {
    fn cmp(&self, other: &Self) -> Ordering {
        use TimeBound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => Ordering::Equal,
            (NegInf, _) | (_, PosInf) => Ordering::Less,
            (_, NegInf) | (PosInf, _) => Ordering::Greater,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

impl From<Rational> for TimeBound {
    fn from(r: Rational) -> Self {
        TimeBound::Finite(r)
    }
}

impl From<i64> for TimeBound {
    fn from(n: i64) -> Self {
        TimeBound::Finite(Rational::integer(n))
    }
}

impl fmt::Display for TimeBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeBound::NegInf => write!(f, "-inf"),
            TimeBound::PosInf => write!(f, "+inf"),
            TimeBound::Finite(r) => write!(f, "{r}"),
        }
    }
}

/// A non-empty interval `⟨lo, hi⟩` over ℚ ∪ {±∞}.
///
/// Invariants (enforced by every constructor):
/// * the interval is non-empty (`lo < hi`, or `lo == hi` with both endpoints
///   closed and finite);
/// * infinite endpoints are open.
///
/// ```
/// use mtl_temporal::{Interval, Rational};
/// let i = Interval::closed(Rational::integer(1), Rational::integer(5));
/// assert!(i.contains(Rational::integer(5)));
/// let j = Interval::half_open_right(Rational::integer(5), Rational::integer(9));
/// assert_eq!(i.intersect(&j), Some(Interval::point(Rational::integer(5))));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: TimeBound,
    hi: TimeBound,
    lo_closed: bool,
    hi_closed: bool,
}

impl Interval {
    /// The whole timeline `(-inf, +inf)`.
    pub const ALL: Interval = Interval {
        lo: TimeBound::NegInf,
        hi: TimeBound::PosInf,
        lo_closed: false,
        hi_closed: false,
    };

    /// General constructor; returns `None` if the described set is empty.
    pub fn new(lo: TimeBound, lo_closed: bool, hi: TimeBound, hi_closed: bool) -> Option<Interval> {
        let lo_closed = lo_closed && lo.is_finite();
        let hi_closed = hi_closed && hi.is_finite();
        match lo.cmp(&hi) {
            Ordering::Greater => None,
            Ordering::Equal => {
                if lo_closed && hi_closed {
                    Some(Interval {
                        lo,
                        hi,
                        lo_closed,
                        hi_closed,
                    })
                } else {
                    // Includes the degenerate infinite cases (-inf,-inf).
                    None
                }
            }
            Ordering::Less => Some(Interval {
                lo,
                hi,
                lo_closed,
                hi_closed,
            }),
        }
    }

    /// Closed interval `[lo, hi]`. Panics if `lo > hi`.
    pub fn closed(lo: Rational, hi: Rational) -> Interval {
        Interval::new(lo.into(), true, hi.into(), true).expect("empty closed interval")
    }

    /// Open interval `(lo, hi)`. Panics if empty.
    pub fn open(lo: Rational, hi: Rational) -> Interval {
        Interval::new(lo.into(), false, hi.into(), false).expect("empty open interval")
    }

    /// `[lo, hi)`. Panics if empty.
    pub fn half_open_right(lo: Rational, hi: Rational) -> Interval {
        Interval::new(lo.into(), true, hi.into(), false).expect("empty interval")
    }

    /// `(lo, hi]`. Panics if empty.
    pub fn half_open_left(lo: Rational, hi: Rational) -> Interval {
        Interval::new(lo.into(), false, hi.into(), true).expect("empty interval")
    }

    /// The punctual interval `[t, t]`.
    pub fn point(t: Rational) -> Interval {
        Interval {
            lo: t.into(),
            hi: t.into(),
            lo_closed: true,
            hi_closed: true,
        }
    }

    /// Convenience: closed interval over integers.
    pub fn closed_int(lo: i64, hi: i64) -> Interval {
        Interval::closed(Rational::integer(lo), Rational::integer(hi))
    }

    /// Convenience: `[t, t]` at an integer time point.
    pub fn at(t: i64) -> Interval {
        Interval::point(Rational::integer(t))
    }

    /// `[lo, +inf)`.
    pub fn from_instant(lo: Rational) -> Interval {
        Interval {
            lo: lo.into(),
            hi: TimeBound::PosInf,
            lo_closed: true,
            hi_closed: false,
        }
    }

    /// `(-inf, hi]`.
    pub fn up_to(hi: Rational) -> Interval {
        Interval {
            lo: TimeBound::NegInf,
            hi: hi.into(),
            lo_closed: false,
            hi_closed: true,
        }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> TimeBound {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> TimeBound {
        self.hi
    }

    /// Is the lower endpoint included?
    pub fn lo_closed(&self) -> bool {
        self.lo_closed
    }

    /// Is the upper endpoint included?
    pub fn hi_closed(&self) -> bool {
        self.hi_closed
    }

    /// `true` iff the interval is a single point `[t, t]`.
    pub fn is_punctual(&self) -> bool {
        self.lo == self.hi
    }

    /// The single time point of a punctual interval.
    pub fn punctual_value(&self) -> Option<Rational> {
        if self.is_punctual() {
            self.lo.finite()
        } else {
            None
        }
    }

    /// Membership test for a finite time point.
    pub fn contains(&self, t: Rational) -> bool {
        let t = TimeBound::Finite(t);
        let above = match self.lo.cmp(&t) {
            Ordering::Less => true,
            Ordering::Equal => self.lo_closed,
            Ordering::Greater => false,
        };
        let below = match t.cmp(&self.hi) {
            Ordering::Less => true,
            Ordering::Equal => self.hi_closed,
            Ordering::Greater => false,
        };
        above && below
    }

    /// `true` iff `other` is a subset of `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        let lo_ok = match self.lo.cmp(&other.lo) {
            Ordering::Less => true,
            Ordering::Equal => self.lo_closed || !other.lo_closed,
            Ordering::Greater => false,
        };
        let hi_ok = match other.hi.cmp(&self.hi) {
            Ordering::Less => true,
            Ordering::Equal => self.hi_closed || !other.hi_closed,
            Ordering::Greater => false,
        };
        lo_ok && hi_ok
    }

    /// Set intersection; `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let (lo, lo_closed) = match self.lo.cmp(&other.lo) {
            Ordering::Less => (other.lo, other.lo_closed),
            Ordering::Greater => (self.lo, self.lo_closed),
            Ordering::Equal => (self.lo, self.lo_closed && other.lo_closed),
        };
        let (hi, hi_closed) = match self.hi.cmp(&other.hi) {
            Ordering::Less => (self.hi, self.hi_closed),
            Ordering::Greater => (other.hi, other.hi_closed),
            Ordering::Equal => (self.hi, self.hi_closed && other.hi_closed),
        };
        Interval::new(lo, lo_closed, hi, hi_closed)
    }

    /// `true` iff the two intervals overlap or touch without a gap, i.e.
    /// their union is a single interval.
    pub fn connected(&self, other: &Interval) -> bool {
        // Gap between self.hi and other.lo?
        let no_gap_right = match self.hi.cmp(&other.lo) {
            Ordering::Greater => true,
            Ordering::Equal => self.hi_closed || other.lo_closed,
            Ordering::Less => false,
        };
        let no_gap_left = match other.hi.cmp(&self.lo) {
            Ordering::Greater => true,
            Ordering::Equal => other.hi_closed || self.lo_closed,
            Ordering::Less => false,
        };
        no_gap_right && no_gap_left
    }

    /// Union of two connected intervals; `None` when there is a gap.
    pub fn union_if_connected(&self, other: &Interval) -> Option<Interval> {
        if !self.connected(other) {
            return None;
        }
        let (lo, lo_closed) = match self.lo.cmp(&other.lo) {
            Ordering::Less => (self.lo, self.lo_closed),
            Ordering::Greater => (other.lo, other.lo_closed),
            Ordering::Equal => (self.lo, self.lo_closed || other.lo_closed),
        };
        let (hi, hi_closed) = match self.hi.cmp(&other.hi) {
            Ordering::Greater => (self.hi, self.hi_closed),
            Ordering::Less => (other.hi, other.hi_closed),
            Ordering::Equal => (self.hi, self.hi_closed || other.hi_closed),
        };
        Interval::new(lo, lo_closed, hi, hi_closed)
    }

    /// `true` iff every point of `self` precedes every point of `other`.
    pub fn entirely_before(&self, other: &Interval) -> bool {
        match self.hi.cmp(&other.lo) {
            Ordering::Less => true,
            Ordering::Equal => !(self.hi_closed && other.lo_closed),
            Ordering::Greater => false,
        }
    }

    /// Total order by (lo, lo_closed, hi, hi_closed) for sorted interval sets.
    pub fn cmp_position(&self, other: &Interval) -> Ordering {
        self.lo
            .cmp(&other.lo)
            // closed lower bound starts earlier than open at same point
            .then_with(|| other.lo_closed.cmp(&self.lo_closed))
            .then_with(|| self.hi.cmp(&other.hi))
            .then_with(|| self.hi_closed.cmp(&other.hi_closed))
    }

    /// Both endpoints as rationals, if the interval is bounded. Used by the
    /// engine's per-relation time index, which keys tuples by component
    /// endpoints (closedness is handled by the exact clip afterwards).
    pub fn finite_endpoints(&self) -> Option<(Rational, Rational)> {
        match (self.lo, self.hi) {
            (TimeBound::Finite(a), TimeBound::Finite(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Length of the interval (`None` if unbounded).
    pub fn length(&self) -> Option<Rational> {
        match (self.lo, self.hi) {
            (TimeBound::Finite(a), TimeBound::Finite(b)) => Some(b - a),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // MTL operator transforms. `rho` is a metric interval: non-negative
    // bounds, validated by `MetricInterval`.
    // ------------------------------------------------------------------

    /// `◇⁻ρ`: the Minkowski sum `self ⊕ ρ`. `◇⁻ρ M` holds at `t` iff `M`
    /// holds at some `s` with `t − s ∈ ρ`, i.e. `t ∈ ι ⊕ ρ`.
    ///
    /// Errs when a shifted endpoint overflows the rational timeline.
    pub fn checked_diamond_minus(&self, rho: &MetricInterval) -> Result<Interval, TimeOverflow> {
        let rho = rho.as_interval();
        let lo = self.lo.checked_add(rho.lo).ok_or(TimeOverflow)?;
        let hi = self.hi.checked_add(rho.hi).ok_or(TimeOverflow)?;
        Ok(Interval::new(
            lo,
            self.lo_closed && rho.lo_closed,
            hi,
            self.hi_closed && rho.hi_closed,
        )
        .expect("Minkowski sum of non-empty intervals is non-empty"))
    }

    /// Panicking shorthand for [`Interval::checked_diamond_minus`].
    pub fn diamond_minus(&self, rho: &MetricInterval) -> Interval {
        self.checked_diamond_minus(rho)
            .expect("temporal endpoint overflow in diamond_minus")
    }

    /// `⊟ρ`: erosion. `⊟ρ M` holds at `t` iff `M` holds at *all* `s` with
    /// `t − s ∈ ρ`; on a single interval this is
    /// `⟨lo + ρ⁺, hi + ρ⁻⟩` with closedness
    /// `lo_closed ∨ ¬ρ.hi_closed` / `hi_closed ∨ ¬ρ.lo_closed`.
    /// Returns `None` when the interval is too short to fit the window.
    ///
    /// NOTE: on a *union* of intervals erosion is only exact after
    /// adjacency-coalescing; see [`crate::IntervalSet::box_minus`].
    ///
    /// `Ok(None)` means the interval is too short for the window;
    /// `Err` means a shifted endpoint overflowed the timeline.
    pub fn checked_box_minus(
        &self,
        rho: &MetricInterval,
    ) -> Result<Option<Interval>, TimeOverflow> {
        let rho = rho.as_interval();
        // Window of obligation for candidate t: [t - rho.hi, t - rho.lo]
        // (endpoint closedness inherited from rho, reversed). It must be a
        // subset of self.
        if !rho.hi.is_finite() && self.lo != TimeBound::NegInf {
            return Ok(None);
        }
        // Infinite self.lo: any window lower end fits.
        let (lo, lo_closed) = if self.lo == TimeBound::NegInf {
            (TimeBound::NegInf, false)
        } else {
            (
                self.lo.checked_add(rho.hi).ok_or(TimeOverflow)?,
                self.lo_closed || !rho.hi_closed,
            )
        };
        let hi = self.hi.checked_add(rho.lo).ok_or(TimeOverflow)?;
        let hi_closed = self.hi_closed || !rho.lo_closed;
        Ok(Interval::new(lo, lo_closed, hi, hi_closed))
    }

    /// Panicking shorthand for [`Interval::checked_box_minus`].
    pub fn box_minus(&self, rho: &MetricInterval) -> Option<Interval> {
        self.checked_box_minus(rho)
            .expect("temporal endpoint overflow in box_minus")
    }

    /// `◇⁺ρ` (future diamond): `t` such that `M` holds at some `s` with
    /// `s − t ∈ ρ`, i.e. `t ∈ ι ⊖ ρ` pointwise: `⟨lo − ρ⁺, hi − ρ⁻⟩`.
    ///
    /// Errs when a shifted endpoint overflows the rational timeline.
    pub fn checked_diamond_plus(&self, rho: &MetricInterval) -> Result<Interval, TimeOverflow> {
        let rho = rho.as_interval();
        let (lo, lo_closed) = if !rho.hi.is_finite() {
            (TimeBound::NegInf, false)
        } else {
            (
                self.lo.checked_sub(rho.hi).ok_or(TimeOverflow)?,
                self.lo_closed && rho.hi_closed,
            )
        };
        let hi = self.hi.checked_sub(rho.lo).ok_or(TimeOverflow)?;
        Ok(
            Interval::new(lo, lo_closed, hi, self.hi_closed && rho.lo_closed)
                .expect("diamond_plus of non-empty interval is non-empty"),
        )
    }

    /// Panicking shorthand for [`Interval::checked_diamond_plus`].
    pub fn diamond_plus(&self, rho: &MetricInterval) -> Interval {
        self.checked_diamond_plus(rho)
            .expect("temporal endpoint overflow in diamond_plus")
    }

    /// `⊞ρ` (future box): `t` such that `M` holds at *all* `s` with
    /// `s − t ∈ ρ`. Mirror of [`Interval::box_minus`].
    ///
    /// `Ok(None)` means the interval is too short for the window;
    /// `Err` means a shifted endpoint overflowed the timeline.
    pub fn checked_box_plus(&self, rho: &MetricInterval) -> Result<Option<Interval>, TimeOverflow> {
        let rho = rho.as_interval();
        if !rho.hi.is_finite() && self.hi != TimeBound::PosInf {
            return Ok(None);
        }
        let lo = self.lo.checked_sub(rho.lo).ok_or(TimeOverflow)?;
        let lo_closed = self.lo_closed || !rho.lo_closed;
        let (hi, hi_closed) = if self.hi == TimeBound::PosInf {
            (TimeBound::PosInf, false)
        } else {
            (
                self.hi.checked_sub(rho.hi).ok_or(TimeOverflow)?,
                self.hi_closed || !rho.hi_closed,
            )
        };
        Ok(Interval::new(lo, lo_closed, hi, hi_closed))
    }

    /// Panicking shorthand for [`Interval::checked_box_plus`].
    pub fn box_plus(&self, rho: &MetricInterval) -> Option<Interval> {
        self.checked_box_plus(rho)
            .expect("temporal endpoint overflow in box_plus")
    }

    /// Clips the interval to a bounded horizon; `None` if disjoint.
    pub fn clip(&self, horizon: &Interval) -> Option<Interval> {
        self.intersect(horizon)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_punctual() {
            if let Some(t) = self.punctual_value() {
                return write!(f, "[{t}]");
            }
        }
        write!(
            f,
            "{}{},{}{}",
            if self.lo_closed { '[' } else { '(' },
            self.lo,
            self.hi,
            if self.hi_closed { ']' } else { ')' },
        )
    }
}

/// A metric interval `ρ` indexing an MTL operator: a non-empty interval with
/// non-negative lower bound (per the DatalogMTL grammar, operator intervals
/// have non-negative bounds).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricInterval(Interval);

impl MetricInterval {
    /// The punctual default `[1,1]` used throughout the ETH-PERP program.
    pub fn one() -> MetricInterval {
        MetricInterval(Interval::at(1))
    }

    /// The punctual interval `[0,0]` (identity shift).
    pub fn zero() -> MetricInterval {
        MetricInterval(Interval::at(0))
    }

    /// Validating constructor: requires a non-negative lower bound.
    pub fn new(interval: Interval) -> Result<MetricInterval, String> {
        match interval.lo() {
            TimeBound::NegInf => Err(format!("metric interval {interval} has negative bound")),
            TimeBound::Finite(r) if r < Rational::ZERO => {
                Err(format!("metric interval {interval} has negative bound"))
            }
            _ => Ok(MetricInterval(interval)),
        }
    }

    /// `[lo, hi]` over rationals. Panics if invalid.
    pub fn closed(lo: Rational, hi: Rational) -> MetricInterval {
        MetricInterval::new(Interval::closed(lo, hi)).expect("invalid metric interval")
    }

    /// `[lo, hi]` over integers. Panics if invalid.
    pub fn closed_int(lo: i64, hi: i64) -> MetricInterval {
        MetricInterval::new(Interval::closed_int(lo, hi)).expect("invalid metric interval")
    }

    /// The punctual metric interval `[c, c]`.
    pub fn punctual(c: Rational) -> MetricInterval {
        MetricInterval::new(Interval::point(c)).expect("invalid metric interval")
    }

    /// The underlying interval.
    pub fn as_interval(&self) -> &Interval {
        &self.0
    }

    /// `true` iff `ρ` is a single point `[c, c]`.
    pub fn is_punctual(&self) -> bool {
        self.0.is_punctual()
    }
}

impl fmt::Debug for MetricInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::Display for MetricInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::integer(n)
    }

    #[test]
    fn constructors_reject_empty() {
        assert!(Interval::new(r(5).into(), true, r(3).into(), true).is_none());
        assert!(Interval::new(r(5).into(), true, r(5).into(), false).is_none());
        assert!(Interval::new(r(5).into(), false, r(5).into(), true).is_none());
        assert!(Interval::new(r(5).into(), true, r(5).into(), true).is_some());
        assert!(Interval::new(TimeBound::NegInf, false, TimeBound::NegInf, false).is_none());
    }

    #[test]
    fn infinite_endpoints_are_forced_open() {
        let i = Interval::new(TimeBound::NegInf, true, r(0).into(), true).unwrap();
        assert!(!i.lo_closed());
    }

    #[test]
    fn contains_respects_closedness() {
        let i = Interval::half_open_right(r(1), r(3));
        assert!(i.contains(r(1)));
        assert!(i.contains(r(2)));
        assert!(!i.contains(r(3)));
        assert!(!i.contains(r(0)));
        assert!(Interval::ALL.contains(r(-1_000_000)));
    }

    #[test]
    fn intersect_matches_set_semantics() {
        let a = Interval::closed(r(0), r(5));
        let b = Interval::open(r(5), r(9));
        assert_eq!(a.intersect(&b), None); // [0,5] ∩ (5,9) = ∅
        let c = Interval::half_open_left(r(3), r(7));
        assert_eq!(a.intersect(&c), Some(Interval::half_open_left(r(3), r(5))));
    }

    #[test]
    fn connected_detects_touching_intervals() {
        let a = Interval::half_open_right(r(0), r(1)); // [0,1)
        let b = Interval::closed(r(1), r(2));
        assert!(a.connected(&b)); // [0,1) ∪ [1,2] = [0,2]
        assert_eq!(a.union_if_connected(&b), Some(Interval::closed(r(0), r(2))));
        let c = Interval::open(r(1), r(2)); // (1,2): gap at {1}
        assert!(!a.connected(&c));
        assert_eq!(a.union_if_connected(&c), None);
    }

    #[test]
    fn diamond_minus_is_minkowski_sum() {
        let i = Interval::closed(r(10), r(20));
        let rho = MetricInterval::closed_int(1, 3);
        assert_eq!(i.diamond_minus(&rho), Interval::closed(r(11), r(23)));
        // punctual [1,1] is a pure shift
        assert_eq!(
            Interval::at(7).diamond_minus(&MetricInterval::one()),
            Interval::at(8)
        );
        // open bounds stay open where contributed
        let j = Interval::open(r(0), r(4));
        assert_eq!(j.diamond_minus(&rho), Interval::open(r(1), r(7)));
    }

    #[test]
    fn box_minus_erodes() {
        let i = Interval::closed(r(10), r(20));
        let rho = MetricInterval::closed_int(0, 3);
        // window [t-3, t] must fit inside [10,20] -> t in [13,20]
        assert_eq!(i.box_minus(&rho), Some(Interval::closed(r(13), r(20))));
        // too small to fit the window
        let small = Interval::closed(r(0), r(2));
        assert_eq!(small.box_minus(&rho), None);
        // punctual rho = shift
        assert_eq!(
            Interval::at(7).box_minus(&MetricInterval::one()),
            Some(Interval::at(8))
        );
    }

    #[test]
    fn box_minus_open_window_boundary() {
        // rho = (0, 2]: window for t is [t-2, t). With M on [0, 4):
        // need [t-2, t) ⊆ [0,4): t-2 >= 0 and t <= 4 (t=4 ok since window open at t).
        let m = Interval::half_open_right(r(0), r(4));
        let rho = MetricInterval::new(Interval::half_open_left(r(0), r(2))).unwrap();
        let out = m.box_minus(&rho).unwrap();
        assert_eq!(out, Interval::closed(r(2), r(4)));
    }

    #[test]
    fn future_operators_mirror_past_ones() {
        let i = Interval::closed(r(10), r(20));
        let rho = MetricInterval::closed_int(1, 3);
        assert_eq!(i.diamond_plus(&rho), Interval::closed(r(7), r(19)));
        assert_eq!(i.box_plus(&rho), Some(Interval::closed(r(9), r(17))));
    }

    #[test]
    fn unbounded_rho_cases() {
        let rho = MetricInterval::new(
            Interval::new(r(0).into(), true, TimeBound::PosInf, false).unwrap(),
        )
        .unwrap();
        let i = Interval::closed(r(0), r(5));
        // diamond over [0,inf): holds from lo forever
        let dm = i.diamond_minus(&rho);
        assert_eq!(dm.lo(), TimeBound::Finite(r(0)));
        assert_eq!(dm.hi(), TimeBound::PosInf);
        // box over [0,inf) requires unbounded past
        assert_eq!(i.box_minus(&rho), None);
        let past = Interval::up_to(r(5));
        assert_eq!(past.box_minus(&rho), Some(Interval::up_to(r(5))));
    }

    #[test]
    fn metric_interval_validation() {
        assert!(MetricInterval::new(Interval::closed(r(-1), r(2))).is_err());
        assert!(MetricInterval::new(Interval::closed(r(0), r(2))).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Interval::at(3).to_string(), "[3]");
        assert_eq!(Interval::half_open_right(r(1), r(2)).to_string(), "[1,2)");
        assert_eq!(Interval::ALL.to_string(), "(-inf,+inf)");
    }

    #[test]
    fn contains_interval_subset_checks() {
        let outer = Interval::half_open_right(r(0), r(10));
        assert!(outer.contains_interval(&Interval::closed(r(0), r(9))));
        assert!(!outer.contains_interval(&Interval::closed(r(0), r(10))));
        assert!(outer.contains_interval(&Interval::open(r(0), r(10))));
    }

    #[test]
    fn checked_transforms_surface_overflow() {
        // 2*huge exceeds i64::MAX and -2*huge is below i64::MIN.
        let huge = Rational::integer(i64::MAX / 2 + 2);
        let rho = MetricInterval::punctual(huge);
        // Shifting towards the future past i64::MAX...
        assert_eq!(
            Interval::point(huge).checked_diamond_minus(&rho),
            Err(TimeOverflow)
        );
        assert_eq!(
            Interval::point(huge).checked_box_minus(&rho),
            Err(TimeOverflow)
        );
        // ...and towards the past below i64::MIN.
        let lo = Interval::point(-huge);
        assert_eq!(lo.checked_diamond_plus(&rho), Err(TimeOverflow));
        assert_eq!(lo.checked_box_plus(&rho), Err(TimeOverflow));
        // In-range shifts still succeed.
        let i = Interval::closed(r(0), r(5));
        let rho = MetricInterval::closed_int(1, 2);
        assert_eq!(i.checked_diamond_minus(&rho), Ok(i.diamond_minus(&rho)));
        assert_eq!(i.checked_box_minus(&rho), Ok(i.box_minus(&rho)));
    }

    #[test]
    fn entirely_before_ordering() {
        let a = Interval::half_open_right(r(0), r(1));
        let b = Interval::closed(r(1), r(2));
        assert!(a.entirely_before(&b)); // [0,1) before [1,2]
        let c = Interval::closed(r(0), r(1));
        assert!(!c.entirely_before(&b)); // share point 1
    }
}
