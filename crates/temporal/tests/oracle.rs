//! Exhaustive small-case oracle tests for `IntervalSet` coalescing.
//!
//! The engine's correctness leans hard on the `IntervalSet` invariant
//! (sorted, pairwise non-connected components) and on `insert` /
//! `intersect_interval` agreeing with plain set semantics at every point —
//! including the edge cases the ETH-PERP windows exercise: touching
//! half-open endpoints (`[a,b)` then `[b,c]`), punctual `[t,t]` intervals,
//! and point gaps. These tests enumerate every interval over a small
//! endpoint grid and compare membership against a naive rational-sampling
//! oracle at half-step resolution, so any coalescing divergence shows up
//! as a concrete point disagreement.

use mtl_temporal::{Interval, IntervalSet, Rational};

/// Every valid interval with endpoints on the integer grid `0..=3`,
/// covering all four closedness combinations plus punctual points.
fn grid_intervals() -> Vec<Interval> {
    let mut out = Vec::new();
    for lo in 0..=3i64 {
        let l = Rational::integer(lo);
        out.push(Interval::point(l));
        for hi in lo + 1..=3 {
            let h = Rational::integer(hi);
            out.push(Interval::closed(l, h));
            out.push(Interval::open(l, h));
            out.push(Interval::half_open_right(l, h));
            out.push(Interval::half_open_left(l, h));
        }
    }
    out
}

/// Sample points at half-step resolution spanning past both grid ends.
/// Half steps sit strictly between any two distinct grid endpoints, so
/// they distinguish open from closed bounds and detect swallowed gaps.
fn sample_points() -> Vec<Rational> {
    (-2..=8).map(|k| Rational::new(k, 2)).collect()
}

fn assert_pointwise_eq(
    set: &IntervalSet,
    oracle: impl Fn(Rational) -> bool,
    context: &dyn std::fmt::Display,
) {
    set.check_invariant();
    for t in sample_points() {
        assert_eq!(
            set.contains(t),
            oracle(t),
            "divergence at t={t} for {context}: set is {set}"
        );
    }
}

#[test]
fn insert_matches_sampling_oracle_for_all_triples() {
    let grid = grid_intervals();
    for a in &grid {
        for b in &grid {
            for c in &grid {
                let set = IntervalSet::from_intervals([*a, *b, *c]);
                let oracle = |t| a.contains(t) || b.contains(t) || c.contains(t);
                assert_pointwise_eq(&set, oracle, &format!("insert {a}, {b}, {c}"));
            }
        }
    }
}

#[test]
fn insert_is_order_independent() {
    let grid = grid_intervals();
    for a in &grid {
        for b in &grid {
            for c in &grid {
                let abc = IntervalSet::from_intervals([*a, *b, *c]);
                let cab = IntervalSet::from_intervals([*c, *a, *b]);
                assert_eq!(abc, cab, "order dependence inserting {a}, {b}, {c}");
            }
        }
    }
}

#[test]
fn intersect_interval_matches_sampling_oracle() {
    let grid = grid_intervals();
    for a in &grid {
        for b in &grid {
            let set = IntervalSet::from_intervals([*a, *b]);
            for w in &grid {
                let clipped = set.intersect_interval(w);
                let oracle = |t| set.contains(t) && w.contains(t);
                assert_pointwise_eq(&clipped, oracle, &format!("({a} ∪ {b}) ∩ {w}"));
            }
        }
    }
}

#[test]
fn difference_matches_sampling_oracle() {
    let grid = grid_intervals();
    for a in &grid {
        for b in &grid {
            let base = IntervalSet::from_intervals([*a, *b]);
            for c in &grid {
                let cut = IntervalSet::from_interval(*c);
                let diff = base.difference(&cut);
                let oracle = |t| base.contains(t) && !c.contains(t);
                assert_pointwise_eq(&diff, oracle, &format!("({a} ∪ {b}) \\ {c}"));
            }
        }
    }
}

#[test]
fn touching_half_open_chains_coalesce_exactly() {
    let r = Rational::integer;
    // [0,1) then [1,2]: the closed left end of the second supplies the
    // missing point, so the union is one component.
    let s = IntervalSet::from_intervals([
        Interval::half_open_right(r(0), r(1)),
        Interval::closed(r(1), r(2)),
    ]);
    assert_eq!(s.components(), &[Interval::closed(r(0), r(2))]);

    // [0,1) then (1,2]: the point 1 is genuinely missing.
    let s = IntervalSet::from_intervals([
        Interval::half_open_right(r(0), r(1)),
        Interval::half_open_left(r(1), r(2)),
    ]);
    assert_eq!(s.components().len(), 2);
    assert!(!s.contains(r(1)));

    // ... until the punctual [1,1] arrives and glues all three.
    let mut s = s;
    assert!(s.insert(Interval::point(r(1))));
    assert_eq!(s.components(), &[Interval::closed(r(0), r(2))]);
}
