//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! timeline granularity (dense seconds vs event epochs), fixpoint strategy
//! (semi-naive vs naive), and the engine vs the brute-force oracle.

use chronolog_bench::microbench::Bench;
use chronolog_core::naive::naive_materialize;
use chronolog_core::{Reasoner, ReasonerConfig};
use chronolog_market::{generate, ScenarioConfig};
use chronolog_perp::encode::encode_trace;
use chronolog_perp::harness::run_datalog_with;
use chronolog_perp::program::{build_program, TimelineMode};
use chronolog_perp::MarketParams;

/// A small window so the dense-timeline variants stay benchable: 20
/// minutes, 24 events, 6 trades.
fn small_trace() -> chronolog_perp::Trace {
    let mut config = ScenarioConfig::new("ablation", 5, 0, 24, 6, 310.0, 1365.0);
    config.duration_secs = 1_200;
    generate(&config)
}

fn bench_timeline_granularity(c: &mut Bench) {
    let params = MarketParams::default();
    let trace = small_trace();
    let mut group = c.group("ablation_timeline");
    group.sample_size(10);
    group.bench_function("event_epochs", |b| {
        b.iter(|| run_datalog_with(&trace, &params, TimelineMode::EventEpochs, true).unwrap())
    });
    group.bench_function("dense_seconds_1200s", |b| {
        b.iter(|| run_datalog_with(&trace, &params, TimelineMode::DenseSeconds, true).unwrap())
    });
    group.finish();
}

fn bench_fixpoint_strategy(c: &mut Bench) {
    let params = MarketParams::default();
    let trace = small_trace();
    let mut group = c.group("ablation_seminaive");
    group.sample_size(10);
    group.bench_function("semi_naive", |b| {
        b.iter(|| run_datalog_with(&trace, &params, TimelineMode::EventEpochs, true).unwrap())
    });
    group.bench_function("naive_full_reeval", |b| {
        b.iter(|| run_datalog_with(&trace, &params, TimelineMode::EventEpochs, false).unwrap())
    });
    group.finish();
}

fn bench_engine_vs_oracle(c: &mut Bench) {
    let params = MarketParams::default();
    let trace = small_trace();
    let program = build_program(&params, TimelineMode::EventEpochs).unwrap();
    let encoded = encode_trace(&trace, TimelineMode::EventEpochs);
    let (lo, hi) = encoded.horizon;
    let mut group = c.group("ablation_engine_vs_oracle");
    group.sample_size(10);
    group.bench_function("interval_engine", |b| {
        let reasoner = Reasoner::new(
            program.clone(),
            ReasonerConfig::default().with_horizon(lo, hi),
        )
        .unwrap();
        b.iter(|| reasoner.materialize(&encoded.database).unwrap())
    });
    group.bench_function("bruteforce_oracle", |b| {
        b.iter(|| naive_materialize(&program, &encoded.database, lo, hi).unwrap())
    });
    group.finish();
}

fn bench_session_streaming(c: &mut Bench) {
    use chronolog_core::{Database, Fact, Value};
    use chronolog_perp::Method;
    let params = MarketParams::default();
    let trace = small_trace();
    let mut group = c.group("session_streaming");
    group.sample_size(10);
    // Batch: one materialization of the whole window.
    group.bench_function("batch_full_window", |b| {
        b.iter(|| run_datalog_with(&trace, &params, TimelineMode::EventEpochs, true).unwrap())
    });
    // Live: one advance per event (measures total, i.e. per-event cost × n).
    group.bench_function("live_per_event_advances", |b| {
        b.iter(|| {
            let program = build_program(&params, TimelineMode::EventEpochs).unwrap();
            let mut genesis = Database::new();
            genesis.assert_at("start", &[], 0);
            genesis.assert_at("startSkew", &[Value::num(trace.initial_skew)], 0);
            genesis.assert_at("startFrs", &[Value::num(0.0)], 0);
            genesis.assert_at("ts", &[Value::Int(trace.start_time)], 0);
            let mut session = Reasoner::new(program, ReasonerConfig::default())
                .unwrap()
                .into_session(&genesis, 0)
                .unwrap();
            for (i, event) in trace.events.iter().enumerate() {
                let epoch = i as i64 + 1;
                let acc = Value::sym(&event.account.to_string());
                let fact = match event.method {
                    Method::TransferMargin { amount } => {
                        Fact::at("tranM", vec![acc, Value::num(amount)], epoch)
                    }
                    Method::Withdraw => Fact::at("withdraw", vec![acc], epoch),
                    Method::ModifyPosition { size } => {
                        Fact::at("modPos", vec![acc, Value::num(size)], epoch)
                    }
                    Method::ClosePosition => Fact::at("closePos", vec![acc], epoch),
                };
                session.submit(fact).unwrap();
                session
                    .submit(Fact::at("price", vec![Value::num(event.price)], epoch))
                    .unwrap();
                session
                    .submit(Fact::at("ts", vec![Value::Int(event.time)], epoch))
                    .unwrap();
                session.advance_to(epoch).unwrap();
            }
            session.database().tuple_count()
        })
    });
    group.finish();
}

fn main() {
    let mut c = Bench::from_env();
    bench_timeline_granularity(&mut c);
    bench_fixpoint_strategy(&mut c);
    bench_engine_vs_oracle(&mut c);
    bench_session_streaming(&mut c);
}
