//! The memory-resident execution model of §3.1: a continuously running
//! reasoning process that "takes as input the actions that the users send
//! to the smart contract … and updates multiple state amounts".
//!
//! A [`Session`] wraps a compiled program, accepts facts as they happen,
//! and *advances a watermark* instead of re-materializing from scratch.
//! This is sound for the paper's forward-propagating fragment
//! (DatalogMTL^FP): past-only operators mean a derivation at time `u`
//! depends only on facts at times `≤ u`, so once every fact up to the
//! watermark is known, everything derived below it is final. Each advance
//! therefore runs one semi-naive round seeded with (a) the newly submitted
//! facts and (b) the boundary slice `[now − reach, now]` of the existing
//! materialization, where `reach` is the program's maximal temporal
//! look-back — exactly the facts a boundary-crossing derivation could
//! consume.

use crate::ast::{Literal, MetricAtom, Program};
use crate::database::Database;
use crate::engine::{ProvenanceLog, Reasoner, RunStats};
use crate::error::{Error, Result};
use crate::symbol::Symbol;
use crate::value::Tuple;
use crate::Fact;
use mtl_temporal::{Interval, IntervalSet, Rational, TimeBound};

/// One entry of the session's append-only base-fact log. Replaying the
/// log (asserts minus retractions) reconstructs exactly the surviving
/// base-fact set the cold-rematerialization fallback rebuilds from.
/// Pending (not yet materialized) facts never enter the log: they are
/// asserted when an advance drains them into the materialization, and a
/// retraction that only cancels a queued fact leaves no trace here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaseEvent {
    /// The fact entered the base set: genesis, the advance-time drain of
    /// a submission, a late submit, or the replacement half of a
    /// correction.
    Assert(Fact),
    /// The fact left the base set: a retraction, or the removal half of
    /// a correction.
    Retract(Fact),
}

/// Which path completed an out-of-order correction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairPath {
    /// Only the pending queue (or the future) changed; the existing
    /// materialization needed no patching.
    Pending,
    /// In-place DRed-style repair: overdelete the affected temporal
    /// cone, then re-derive from the surviving base facts.
    Incremental,
    /// Cold re-materialization from the surviving base-fact set (budget
    /// trip, incremental error, or repair disabled).
    ColdFallback,
}

/// What one correction ([`Session::retract`], [`Session::submit_late`],
/// or [`Session::correct`]) did to the materialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairReport {
    /// The path that completed the correction.
    pub path: RepairPath,
    /// Tuples whose validity intersected the repair window (the budgeted
    /// quantity; zero on the non-incremental paths).
    pub cone_tuples: u64,
    /// Interval components removed by overdeletion.
    pub overdeleted_components: u64,
}

/// Exact match between a correction's target and a stored fact: same
/// predicate, same interval, and pairwise semantically equal arguments
/// (the equivalence the database stores tuples under, so `p(2)` matches a
/// submitted `p(2.0)`).
fn same_fact(a: &Fact, b: &Fact) -> bool {
    a.pred == b.pred
        && a.interval == b.interval
        && a.args.len() == b.args.len()
        && a.args.iter().zip(&b.args).all(|(x, y)| x.semantic_eq(y))
}

fn unknown_fact(fact: &Fact) -> Error {
    Error::UnknownFact(format!(
        "{fact} does not match any surviving base fact (never submitted, \
         already retracted, or a different interval)"
    ))
}

/// A live, incrementally maintained materialization.
///
/// ```
/// use chronolog_core::{parse_program, Database, Fact, Reasoner, ReasonerConfig, Value};
///
/// let program = parse_program(
///     "isOpen(A) :- tranM(A, M).\n\
///      isOpen(A) :- boxminus isOpen(A), not withdraw(A).",
/// )
/// .unwrap();
/// let mut session = Reasoner::new(program, ReasonerConfig::default())
///     .unwrap()
///     .into_session(&Database::new(), 0)
///     .unwrap();
///
/// session
///     .submit(Fact::at("tranM", vec![Value::sym("acc"), Value::num(20.0)], 3))
///     .unwrap();
/// session.advance_to(5).unwrap();
/// assert!(session.database().holds_at("isOpen", &[Value::sym("acc")], 5));
///
/// // Derivations below the watermark are final; the session keeps going.
/// session
///     .submit(Fact::at("withdraw", vec![Value::sym("acc")], 7))
///     .unwrap();
/// session.advance_to(10).unwrap();
/// assert!(!session.database().holds_at("isOpen", &[Value::sym("acc")], 8));
/// ```
pub struct Session {
    reasoner: Reasoner,
    total: Database,
    pending: Vec<Fact>,
    /// Surviving base facts (genesis plus drained submissions, minus
    /// retractions), kept as the individual facts that arrived so that
    /// overlapping submissions can be retracted one at a time without
    /// losing the coverage the others still provide.
    asserted: Vec<Fact>,
    /// Append-only history of every base-set edit, in arrival order.
    /// Invariant: folding the log (asserts minus retractions) yields
    /// exactly `asserted`.
    log: Vec<BaseEvent>,
    start: Rational,
    now: Rational,
    reach: Rational,
    stats: RunStats,
}

impl Reasoner {
    /// Turns this reasoner into a live session starting at `start` with the
    /// given initial database (genesis facts; rigid facts go here).
    ///
    /// Fails unless the program is in the forward-propagating fragment:
    /// no future operators (`◇⁺`, `⊞`, `until`) in bodies, no head
    /// operators, and finite operator windows.
    pub fn into_session(self, initial: &Database, start: i64) -> Result<Session> {
        let reach = program_reach(self.program())?;
        let start = Rational::integer(start);
        let total = initial.to_mode(self.config().storage_mode());
        let mut stats = RunStats::default();
        // The clone carries the initial database's built indexes with it, so
        // the session never rebuilds them.
        stats.index_rebuilds_avoided += total.built_index_count() as u64;
        chronolog_obs::Registry::global()
            .counter("engine.index_rebuilds_avoided")
            .add(total.built_index_count() as u64);
        // Genesis facts seed the base-fact log, so the cold fallback can
        // rebuild them without the caller's original database.
        let mut asserted = Vec::new();
        for (pred, tuple, ivs) in initial.iter() {
            for &interval in ivs {
                asserted.push(Fact {
                    pred,
                    args: tuple.to_vec(),
                    interval,
                });
            }
        }
        let log = asserted.iter().cloned().map(BaseEvent::Assert).collect();
        let mut session = Session {
            reasoner: self,
            total,
            pending: Vec::new(),
            asserted,
            log,
            start,
            now: start,
            reach,
            stats,
        };
        // Materialize the starting instant so `database()` is consistent
        // with `now` from the first moment.
        session.run_advance(start)?;
        Ok(session)
    }
}

impl Session {
    /// The current watermark: everything at or before it is final.
    pub fn now(&self) -> Rational {
        self.now
    }

    /// The materialization up to the watermark.
    pub fn database(&self) -> &Database {
        &self.total
    }

    /// Cumulative statistics across all advances.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The append-only base-fact log: every base-set edit since genesis.
    pub fn log(&self) -> &[BaseEvent] {
        &self.log
    }

    /// The surviving base facts (genesis plus materialized submissions,
    /// minus retractions), in arrival order.
    pub fn base_facts(&self) -> &[Fact] {
        &self.asserted
    }

    /// Answers a goal-driven point query against the session's surviving
    /// base facts, materializing only the query's demanded cone (see
    /// [`Reasoner::query`]). The horizon is clipped to the watermark, so
    /// answers agree byte-for-byte with querying [`Session::database`]
    /// over the same window. Runs against a private snapshot: the
    /// session's materialization, watermark, and statistics are
    /// untouched, and pending (not yet advanced-over) submissions are
    /// not visible.
    pub fn query(&self, query: &crate::rewrite::Query) -> Result<super::QueryOutcome> {
        let mut base = Database::with_mode(self.reasoner.config().storage_mode());
        base.extend_facts(&self.asserted)?;
        let horizon = self
            .reasoner
            .config()
            .horizon
            .intersect(&Interval::up_to(self.now))
            .ok_or_else(|| {
                Error::EmptyWindow(format!(
                    "session watermark {} is below the horizon start",
                    self.now
                ))
            })?;
        self.reasoner.query_within(&base, query, horizon)
    }

    /// Submits a fact that happened strictly after the watermark. It takes
    /// effect at the next [`Session::advance_to`]. Facts at or below the
    /// watermark are corrections — use [`Session::submit_late`] (or
    /// [`Session::retract`] / [`Session::correct`]) for those.
    pub fn submit(&mut self, fact: Fact) -> Result<()> {
        match fact.interval.lo() {
            TimeBound::Finite(lo) if lo > self.now => {
                self.pending.push(fact);
                Ok(())
            }
            _ => Err(Error::Watermark {
                pred: fact.pred.to_string(),
                interval: format!("{}", fact.interval),
                watermark: format!("{}", self.now),
            }),
        }
    }

    /// Retracts a base fact — queued or already materialized — and
    /// patches the materialization. The fact must match one surviving
    /// submission exactly (predicate, arguments, interval); to shrink an
    /// interval, retract the original fact and late-submit the remainder.
    pub fn retract(&mut self, fact: Fact) -> Result<RepairReport> {
        chronolog_obs::Registry::global()
            .counter("session.retractions")
            .inc();
        // A queued fact was never materialized: cancelling it is free.
        if let Some(pos) = self.pending.iter().position(|p| same_fact(p, &fact)) {
            self.pending.remove(pos);
            return Ok(RepairReport {
                path: RepairPath::Pending,
                cone_tuples: 0,
                overdeleted_components: 0,
            });
        }
        let cut = self.remove_base_fact(&fact)?;
        self.repair(vec![fact.pred], cut)
    }

    /// Submits a fact at or below the watermark and patches the
    /// materialization. Facts starting strictly after the watermark are
    /// queued exactly like [`Session::submit`]; facts straddling it
    /// (start at or below, end beyond) are rejected — advance past the
    /// end first, or split the fact at the watermark.
    pub fn submit_late(&mut self, fact: Fact) -> Result<RepairReport> {
        if matches!(fact.interval.lo(), TimeBound::Finite(lo) if lo > self.now) {
            self.submit(fact)?;
            return Ok(RepairReport {
                path: RepairPath::Pending,
                cone_tuples: 0,
                overdeleted_components: 0,
            });
        }
        chronolog_obs::Registry::global()
            .counter("session.late_facts")
            .inc();
        let beyond = match fact.interval.hi() {
            TimeBound::Finite(hi) => hi > self.now,
            _ => true,
        };
        if beyond {
            return Err(Error::Eval(format!(
                "late fact {fact} extends beyond the watermark {}; advance \
                 past its end first, or split it at the watermark",
                self.now
            )));
        }
        let cut = self.add_base_fact(&fact);
        self.repair(vec![fact.pred], cut)
    }

    /// Replaces `old` with `new` in one atomic correction: both edits are
    /// applied, then a single repair pass covers their union. `old` must
    /// match a surviving (or queued) base fact; `new` obeys the same
    /// rules as [`Session::submit_late`]. Validation happens before any
    /// mutation, so an error leaves the session unchanged.
    pub fn correct(&mut self, old: Fact, new: Fact) -> Result<RepairReport> {
        chronolog_obs::Registry::global()
            .counter("session.corrections")
            .inc();
        let old_pending = self.pending.iter().position(|p| same_fact(p, &old));
        if old_pending.is_none() && !self.asserted.iter().any(|a| same_fact(a, &old)) {
            return Err(unknown_fact(&old));
        }
        let new_is_future = matches!(new.interval.lo(), TimeBound::Finite(lo) if lo > self.now);
        if !new_is_future {
            let beyond = match new.interval.hi() {
                TimeBound::Finite(hi) => hi > self.now,
                _ => true,
            };
            if beyond {
                return Err(Error::Eval(format!(
                    "late fact {new} extends beyond the watermark {}; advance \
                     past its end first, or split it at the watermark",
                    self.now
                )));
            }
        }
        let mut cuts: Vec<Rational> = Vec::new();
        let mut preds: Vec<Symbol> = Vec::new();
        match old_pending {
            Some(pos) => {
                self.pending.remove(pos);
            }
            None => {
                preds.push(old.pred);
                cuts.push(self.remove_base_fact(&old)?);
            }
        }
        if new_is_future {
            self.submit(new)?;
        } else {
            preds.push(new.pred);
            cuts.push(self.add_base_fact(&new));
        }
        let Some(&cut) = cuts.iter().min() else {
            // Both halves only touched the pending queue.
            return Ok(RepairReport {
                path: RepairPath::Pending,
                cone_tuples: 0,
                overdeleted_components: 0,
            });
        };
        preds.sort();
        preds.dedup();
        self.repair(preds, cut)
    }

    /// Advances the watermark to `t`, deriving everything in `(now, t]`.
    pub fn advance_to(&mut self, t: i64) -> Result<&Database> {
        let t = Rational::integer(t);
        if t < self.now {
            return Err(Error::Eval(format!(
                "cannot advance backwards: watermark {} > target {t}",
                self.now
            )));
        }
        if let Some(f) = self
            .pending
            .iter()
            .find(|f| matches!(f.interval.hi(), TimeBound::Finite(hi) if hi > t))
            .or_else(|| self.pending.iter().find(|f| !f.interval.hi().is_finite()))
        {
            return Err(Error::Eval(format!(
                "pending fact {f} extends beyond the advance target {t}"
            )));
        }
        self.run_advance(t)?;
        Ok(&self.total)
    }

    /// Removes one materialized base fact: drops it from the surviving
    /// set, logs the retraction, and strips the no-longer-backed part of
    /// its validity from the materialization. Returns the repair cut.
    fn remove_base_fact(&mut self, fact: &Fact) -> Result<Rational> {
        let pos = self
            .asserted
            .iter()
            .position(|a| same_fact(a, fact))
            .ok_or_else(|| unknown_fact(fact))?;
        self.asserted.remove(pos);
        self.log.push(BaseEvent::Retract(fact.clone()));
        // Other surviving submissions may overlap the retracted interval;
        // only the part no longer backed by any of them leaves the
        // database. The within-window part would be overdeleted anyway,
        // but the explicit removal also covers validity outside the
        // repair window (genesis facts below the session start, or beyond
        // the watermark), where nothing at or below `now` depends on it.
        let mut backed = IntervalSet::new();
        for a in &self.asserted {
            if a.pred == fact.pred
                && a.args.len() == fact.args.len()
                && a.args.iter().zip(&fact.args).all(|(x, y)| x.semantic_eq(y))
            {
                backed.insert(a.interval);
            }
        }
        let doomed = IntervalSet::from_interval(fact.interval).difference(&backed);
        if !doomed.is_empty() {
            let tuple: Tuple = fact.args.clone().into_boxed_slice();
            self.total.remove(fact.pred, &tuple, &doomed);
        }
        Ok(self.cut_for(fact))
    }

    /// Adds one late base fact to the surviving set, the log, and the
    /// materialization. Returns the repair cut.
    fn add_base_fact(&mut self, fact: &Fact) -> Rational {
        self.asserted.push(fact.clone());
        self.log.push(BaseEvent::Assert(fact.clone()));
        self.total
            .insert_fact(fact)
            .expect("value interner exhausted");
        self.cut_for(fact)
    }

    /// The earliest instant whose derivations a base edit at `fact` can
    /// affect: the fact's start, clamped to the session start (there are
    /// no derivations below the start; look-backs below it read the
    /// database directly and see the already-applied base edit).
    fn cut_for(&self, fact: &Fact) -> Rational {
        match fact.interval.lo() {
            TimeBound::Finite(lo) => lo.max(self.start),
            _ => self.start,
        }
    }

    /// The surviving base-fact set as a database (what the cold fallback
    /// rebuilds from, and what overdeletion must not remove).
    fn surviving_base(&self) -> Database {
        let mut base = Database::with_mode(self.reasoner.config().storage_mode());
        for fact in &self.asserted {
            base.insert_fact(fact).expect("value interner exhausted");
        }
        base
    }

    /// Patches the materialization after a base edit whose cut is `cut`:
    /// overdelete the affected cone within `[cut, now]`, then re-derive
    /// from the surviving facts — transparently falling back to cold
    /// re-materialization when the cone exceeds the configured budget,
    /// when the incremental pass returns any error, or when repair is
    /// disabled ([`ReasonerConfig::repair`]).
    ///
    /// [`ReasonerConfig::repair`]: crate::ReasonerConfig::repair
    fn repair(&mut self, changed: Vec<Symbol>, cut: Rational) -> Result<RepairReport> {
        let started = std::time::Instant::now();
        self.reasoner.init_rule_stats(&mut self.stats);
        self.stats.repairs.attempted += 1;
        let registry = chronolog_obs::Registry::global();
        registry.counter("session.repairs").inc();
        let mut repair_span = self
            .reasoner
            .config()
            .profiler
            .as_ref()
            .map(|p| p.span("repair"));

        let report = if cut > self.now {
            // The edit lies entirely above the watermark: in the
            // forward-propagating fragment nothing at or below `now` can
            // depend on it, so the base edit alone was the repair.
            self.stats.repairs.incremental += 1;
            RepairReport {
                path: RepairPath::Incremental,
                cone_tuples: 0,
                overdeleted_components: 0,
            }
        } else if !self.reasoner.config().repair {
            self.cold_rematerialize()?
        } else {
            match self.try_incremental(&changed, cut) {
                Ok(Some(report)) => report,
                Ok(None) => {
                    // Budget trip: the collection phase left the
                    // materialization untouched, rebuild from the log.
                    self.stats.repairs.budget_trips += 1;
                    registry.counter("session.repair_budget_trips").inc();
                    self.cold_rematerialize()?
                }
                // Any incremental error degrades to the cold path — the
                // overdelete may have partially applied, and the rebuild
                // restores a consistent materialization regardless.
                Err(_) => self.cold_rematerialize()?,
            }
        };

        if let Some(s) = repair_span.as_mut() {
            s.add("cone_tuples", report.cone_tuples);
            s.add("fallback", (report.path == RepairPath::ColdFallback) as u64);
        }
        let latency = started.elapsed();
        self.stats.elapsed += latency;
        self.stats.total_components = self.total.component_count();
        super::capture_storage_stats(&self.total, &mut self.stats);
        registry
            .histogram("session.repair_latency_us")
            .record(latency.as_micros() as u64);
        if let Some(tracer) = &self.reasoner.config().tracer {
            tracer.emit(
                "repair",
                vec![
                    (
                        "path",
                        chronolog_obs::Json::from(match report.path {
                            RepairPath::Pending => "pending",
                            RepairPath::Incremental => "incremental",
                            RepairPath::ColdFallback => "cold_fallback",
                        }),
                    ),
                    ("cut", chronolog_obs::Json::from(format!("{cut}"))),
                    ("cone_tuples", chronolog_obs::Json::from(report.cone_tuples)),
                    (
                        "overdeleted_components",
                        chronolog_obs::Json::from(report.overdeleted_components),
                    ),
                    (
                        "latency_us",
                        chronolog_obs::Json::from(latency.as_micros() as u64),
                    ),
                ],
            );
        }
        Ok(report)
    }

    /// The in-place repair path. `Ok(None)` means the cone exceeded the
    /// budget (nothing was removed); an `Err` means the re-derivation
    /// failed partway and the caller must rebuild.
    fn try_incremental(
        &mut self,
        changed: &[Symbol],
        cut: Rational,
    ) -> Result<Option<RepairReport>> {
        let window = Interval::new(
            TimeBound::Finite(cut),
            true,
            TimeBound::Finite(self.now),
            true,
        )
        .ok_or_else(|| {
            Error::EmptyWindow(format!("repair window {cut}..{} collapsed", self.now))
        })?;
        let base = self.surviving_base();
        let affected = self.reasoner.affected_predicates(changed);
        let outcome = {
            let mut od_span = self
                .reasoner
                .config()
                .profiler
                .as_ref()
                .map(|p| p.span("overdelete"));
            let budget = self.reasoner.config().repair_budget;
            let out = self
                .reasoner
                .overdelete(&mut self.total, &base, &affected, window, budget);
            if let Some(s) = od_span.as_mut() {
                s.add("cone_tuples", out.cone_tuples);
                s.add("removed_components", out.removed_components);
            }
            out
        };
        self.stats.repairs.cone_tuples += outcome.cone_tuples;
        if outcome.budget_tripped {
            return Ok(None);
        }
        self.stats.repairs.overdeleted_components += outcome.removed_components;

        // Re-derive: seed with every surviving fact a derivation in the
        // repair window can reach (`[cut − reach, now]` — the same
        // boundary-slice argument as the watermark advance).
        let window_lo = cut.checked_sub(self.reach).ok_or_else(|| {
            Error::TimeOverflow(format!(
                "repair seed window start {cut} - {} leaves the rational timeline",
                self.reach
            ))
        })?;
        let seed_window = Interval::new(
            TimeBound::Finite(window_lo),
            true,
            TimeBound::Finite(self.now),
            true,
        )
        .ok_or_else(|| {
            Error::EmptyWindow(format!(
                "repair seed window {window_lo}..{} collapsed",
                self.now
            ))
        })?;
        let horizon = self.session_horizon(self.now)?;
        let mut seed = Database::with_mode(self.reasoner.config().storage_mode());
        for (pred, tuple, ivs) in self.total.iter() {
            let clipped = IntervalSet::clip_components(ivs, &seed_window);
            if !clipped.is_empty() {
                seed.merge(pred, &tuple.to_vec(), &clipped)?;
            }
        }
        {
            let mut rd_span = self
                .reasoner
                .config()
                .profiler
                .as_ref()
                .map(|p| p.span("rederive"));
            let mut provenance: Option<ProvenanceLog> = None;
            self.reasoner.rederive(
                &mut self.total,
                &mut seed,
                &mut provenance,
                &mut self.stats,
                horizon,
            )?;
            if let Some(s) = rd_span.as_mut() {
                s.add("seed_tuples", seed.tuple_count() as u64);
            }
        }
        self.stats.repairs.incremental += 1;
        Ok(Some(RepairReport {
            path: RepairPath::Incremental,
            cone_tuples: outcome.cone_tuples,
            overdeleted_components: outcome.removed_components,
        }))
    }

    /// The robustness backstop: rebuilds the whole materialization from
    /// the surviving base-fact set, exactly like a batch run over
    /// `[start, now]`. Errors here propagate — there is nothing further
    /// to degrade to — and leave the previous materialization in place.
    fn cold_rematerialize(&mut self) -> Result<RepairReport> {
        self.stats.repairs.fallbacks += 1;
        chronolog_obs::Registry::global()
            .counter("session.repair_fallbacks")
            .inc();
        let mut span = self
            .reasoner
            .config()
            .profiler
            .as_ref()
            .map(|p| p.span("rematerialize"));
        let horizon = self.session_horizon(self.now)?;
        let mut total = self.surviving_base();
        let mut provenance: Option<ProvenanceLog> = None;
        self.reasoner
            .rematerialize(&mut total, &mut provenance, &mut self.stats, horizon)?;
        if let Some(s) = span.as_mut() {
            s.add("tuples", total.tuple_count() as u64);
        }
        self.total = total;
        Ok(RepairReport {
            path: RepairPath::ColdFallback,
            cone_tuples: 0,
            overdeleted_components: 0,
        })
    }

    /// The session's derivation horizon `[start, t]` as an interval.
    fn session_horizon(&self, t: Rational) -> Result<Interval> {
        Interval::new(
            TimeBound::Finite(self.start),
            true,
            TimeBound::Finite(t),
            true,
        )
        .ok_or_else(|| {
            Error::EmptyWindow(format!(
                "session horizon {}..{t} collapsed (target below start)",
                self.start
            ))
        })
    }

    fn run_advance(&mut self, t: Rational) -> Result<()> {
        let mut advance_span = self
            .reasoner
            .config()
            .profiler
            .as_ref()
            .map(|p| p.span("advance"));
        let started = std::time::Instant::now();
        self.reasoner.init_rule_stats(&mut self.stats);
        let from = self.now;
        let pending_count = self.pending.len();
        let tuples_before = self.total.tuple_count();
        // Seed: boundary slice of the existing materialization plus the
        // pending submissions, clipped to the derivation window.
        let window_lo = self.now.checked_sub(self.reach).ok_or_else(|| {
            Error::TimeOverflow(format!(
                "seed window start {} - {} leaves the rational timeline",
                self.now, self.reach
            ))
        })?;
        let window = Interval::new(
            TimeBound::Finite(window_lo),
            true,
            TimeBound::Finite(t),
            true,
        )
        .ok_or_else(|| {
            Error::EmptyWindow(format!(
                "advance seed window {window_lo}..{t} collapsed (target below \
                 the watermark {})",
                self.now
            ))
        })?;
        let mut seed = Database::with_mode(self.reasoner.config().storage_mode());
        for (pred, tuple, ivs) in self.total.iter() {
            let clipped = IntervalSet::clip_components(ivs, &window);
            if !clipped.is_empty() {
                seed.merge(pred, &tuple.to_vec(), &clipped)?;
            }
        }
        for fact in self.pending.drain(..) {
            self.total.insert_fact(&fact)?;
            seed.insert(fact.pred, &fact.args, fact.interval)?;
            // Draining materializes the fact: it becomes part of the base
            // set the repair paths preserve and the cold fallback replays.
            self.asserted.push(fact.clone());
            self.log.push(BaseEvent::Assert(fact));
        }
        let seed_tuples = seed.tuple_count();

        let horizon = self.session_horizon(t)?;

        // Each stratum's new facts also become seeds for the next stratum.
        let mut provenance: Option<ProvenanceLog> = None;
        self.reasoner.rederive(
            &mut self.total,
            &mut seed,
            &mut provenance,
            &mut self.stats,
            horizon,
        )?;
        self.now = t;
        if let Some(s) = advance_span.as_mut() {
            s.add("pending", pending_count as u64);
            s.add("seed_tuples", seed_tuples as u64);
        }
        let latency = started.elapsed();
        self.stats.derived_tuples += self
            .total
            .tuple_count()
            .saturating_sub(tuples_before + pending_count);
        self.stats.elapsed += latency;
        self.stats.total_components = self.total.component_count();
        super::capture_storage_stats(&self.total, &mut self.stats);

        // Tick-latency histogram and watermark-lag gauge: always cheap
        // enough to record (atomics), named under `session.*` in the global
        // registry.
        let registry = chronolog_obs::Registry::global();
        registry
            .histogram("session.advance_latency_us")
            .record(latency.as_micros() as u64);
        registry.counter("session.advances").inc();
        registry
            .counter("session.facts_submitted")
            .add(pending_count as u64);
        registry
            .gauge("session.watermark_advance")
            .set((t.to_f64() - from.to_f64()) as i64);
        if let Some(tracer) = &self.reasoner.config().tracer {
            tracer.emit(
                "advance",
                vec![
                    ("from", chronolog_obs::Json::from(format!("{from}"))),
                    ("to", chronolog_obs::Json::from(format!("{t}"))),
                    ("pending", chronolog_obs::Json::from(pending_count)),
                    ("seed_tuples", chronolog_obs::Json::from(seed_tuples)),
                    (
                        "latency_us",
                        chronolog_obs::Json::from(latency.as_micros() as u64),
                    ),
                ],
            );
        }
        Ok(())
    }
}

/// The maximal temporal look-back of any body literal: how far into the
/// past a single rule application can reach. Errors on future operators,
/// head operators, and unbounded windows (outside the session fragment).
fn program_reach(program: &Program) -> Result<Rational> {
    fn chain_reach(m: &MetricAtom) -> Result<Rational> {
        match m {
            MetricAtom::Top | MetricAtom::Bottom => Ok(Rational::ZERO),
            MetricAtom::Rel(_) => Ok(Rational::ZERO),
            MetricAtom::DiamondMinus(rho, inner) | MetricAtom::BoxMinus(rho, inner) => {
                let hi = match rho.as_interval().hi() {
                    TimeBound::Finite(h) => h,
                    _ => {
                        return Err(Error::Eval(
                            "session mode requires finite operator windows".into(),
                        ))
                    }
                };
                hi.checked_add(chain_reach(inner)?).ok_or_else(|| {
                    Error::TimeOverflow("program look-back overflows the rational timeline".into())
                })
            }
            MetricAtom::DiamondPlus(..) | MetricAtom::BoxPlus(..) | MetricAtom::Until(..) => {
                Err(Error::Eval(
                    "session mode requires the forward-propagating fragment \
                     (no future operators)"
                        .into(),
                ))
            }
            MetricAtom::Since(m1, rho, m2) => {
                let hi = match rho.as_interval().hi() {
                    TimeBound::Finite(h) => h,
                    _ => {
                        return Err(Error::Eval(
                            "session mode requires finite operator windows".into(),
                        ))
                    }
                };
                hi.checked_add(chain_reach(m1)?.max(chain_reach(m2)?))
                    .ok_or_else(|| {
                        Error::TimeOverflow(
                            "program look-back overflows the rational timeline".into(),
                        )
                    })
            }
        }
    }
    let mut reach = Rational::ZERO;
    for rule in &program.rules {
        if !rule.head.ops.is_empty() {
            return Err(Error::Eval(
                "session mode does not support head operators".into(),
            ));
        }
        for lit in &rule.body {
            if let Literal::Pos(m) | Literal::Neg(m) = lit {
                reach = reach.max(chain_reach(m)?);
            }
        }
    }
    Ok(reach)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ReasonerConfig;
    use crate::parser::{parse_facts, parse_program};
    use crate::Value;

    const MARGIN_RULES: &str = "isOpen(A) :- tranM(A, M).\n\
         isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
         margin(A, M) :- tranM(A, M), not boxminus isOpen(A).\n\
         changeM(A) :- tranM(A, M).\n\
         changeM(A) :- withdraw(A).\n\
         margin(A, M) :- diamondminus margin(A, M), not changeM(A).\n\
         margin(A, M) :- boxminus isOpen(A), diamondminus margin(A, X), tranM(A, Y), M = X + Y.";

    fn session() -> Session {
        let program = parse_program(MARGIN_RULES).unwrap();
        Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .unwrap()
    }

    #[test]
    fn streaming_matches_batch() {
        // Stream the quickstart scenario event by event...
        let mut s = session();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(97.0)],
            9,
        ))
        .unwrap();
        s.advance_to(9).unwrap();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(3.0)],
            10,
        ))
        .unwrap();
        s.advance_to(12).unwrap();
        s.submit(Fact::at("withdraw", vec![Value::sym("acc")], 15))
            .unwrap();
        s.advance_to(20).unwrap();

        // ...and compare against the batch materialization.
        let program = parse_program(MARGIN_RULES).unwrap();
        let mut db = Database::new();
        db.extend_facts(
            &parse_facts("tranM(acc, 97.0)@9.\ntranM(acc, 3.0)@10.\nwithdraw(acc)@15.").unwrap(),
        )
        .unwrap();
        let batch = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 20))
            .unwrap()
            .materialize(&db)
            .unwrap()
            .database;
        assert_eq!(s.database().to_facts_text(), batch.to_facts_text());
    }

    #[test]
    fn derivations_below_watermark_are_final() {
        let mut s = session();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("a"), Value::num(50.0)],
            5,
        ))
        .unwrap();
        s.advance_to(8).unwrap();
        let before = s.database().to_facts_text();
        // Advancing with no new facts only extends, never rewrites.
        s.advance_to(12).unwrap();
        let after = s.database().to_facts_text();
        for line in before.lines() {
            assert!(after.contains(line), "lost fact {line}");
        }
        assert!(s
            .database()
            .holds_at("margin", &[Value::sym("a"), Value::num(50.0)], 12));
    }

    #[test]
    fn rejects_facts_at_or_before_watermark() {
        let mut s = session();
        s.advance_to(10).unwrap();
        assert!(s
            .submit(Fact::at(
                "tranM",
                vec![Value::sym("a"), Value::num(1.0)],
                10
            ))
            .is_err());
        assert!(s
            .submit(Fact::at("tranM", vec![Value::sym("a"), Value::num(1.0)], 3))
            .is_err());
        assert!(s
            .submit(Fact::at(
                "tranM",
                vec![Value::sym("a"), Value::num(1.0)],
                11
            ))
            .is_ok());
    }

    #[test]
    fn rejects_backward_advance_and_overshooting_facts() {
        let mut s = session();
        s.advance_to(10).unwrap();
        assert!(s.advance_to(5).is_err());
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("a"), Value::num(1.0)],
            20,
        ))
        .unwrap();
        // The pending fact lies beyond the advance target.
        assert!(s.advance_to(15).is_err());
        assert!(s.advance_to(25).is_ok());
    }

    #[test]
    fn rejects_programs_outside_the_fragment() {
        let future = parse_program("h(X) :- diamondplus[0, 2] p(X).").unwrap();
        assert!(Reasoner::new(future, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .is_err());
        let head_op = parse_program("boxplus[0, 2] h(X) :- p(X).").unwrap();
        assert!(Reasoner::new(head_op, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .is_err());
        let unbounded = parse_program("h(X) :- diamondminus[0, inf) p(X).").unwrap();
        assert!(Reasoner::new(unbounded, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .is_err());
    }

    #[test]
    fn rigid_genesis_facts_extend_with_the_watermark() {
        let program = parse_program("h(X) :- p(X), rate(X, R).").unwrap();
        let mut init = Database::new();
        init.extend_facts(&parse_facts("rate(a, 0.5).").unwrap())
            .unwrap();
        let mut s = Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .into_session(&init, 0)
            .unwrap();
        s.submit(Fact::over(
            "p",
            vec![Value::sym("a")],
            Interval::closed_int(3, 8),
        ))
        .unwrap();
        s.advance_to(10).unwrap();
        assert!(s.database().holds_at("h", &[Value::sym("a")], 5));
        assert!(!s.database().holds_at("h", &[Value::sym("a")], 9));
    }

    /// Cold-run oracle: materialize `facts` over `[0, hi]` with the
    /// margin program and render the result.
    fn cold_margin(facts: &str, hi: i64) -> String {
        let program = parse_program(MARGIN_RULES).unwrap();
        let mut db = Database::new();
        db.extend_facts(&parse_facts(facts).unwrap()).unwrap();
        Reasoner::new(program, ReasonerConfig::default().with_horizon(0, hi))
            .unwrap()
            .materialize(&db)
            .unwrap()
            .database
            .to_facts_text()
    }

    #[test]
    fn watermark_error_names_predicate_and_interval() {
        let mut s = session();
        s.advance_to(10).unwrap();
        let err = s
            .submit(Fact::at("tranM", vec![Value::sym("a"), Value::num(1.0)], 7))
            .unwrap_err();
        match &err {
            Error::Watermark {
                pred,
                interval,
                watermark,
            } => {
                assert_eq!(pred, "tranM");
                assert!(interval.contains('7'), "interval rendered: {interval}");
                assert_eq!(watermark, "10");
            }
            other => panic!("expected Error::Watermark, got {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("tranM"), "message: {rendered}");
    }

    #[test]
    fn retract_of_unknown_fact_is_typed() {
        let mut s = session();
        let err = s
            .retract(Fact::at("tranM", vec![Value::sym("a"), Value::num(1.0)], 5))
            .unwrap_err();
        assert!(matches!(err, Error::UnknownFact(_)), "got {err:?}");
        // Same interval-mismatch case: the fact exists but over a
        // different interval.
        s.submit(Fact::at("tranM", vec![Value::sym("a"), Value::num(1.0)], 3))
            .unwrap();
        s.advance_to(5).unwrap();
        let err = s
            .retract(Fact::at("tranM", vec![Value::sym("a"), Value::num(1.0)], 4))
            .unwrap_err();
        assert!(matches!(err, Error::UnknownFact(_)), "got {err:?}");
    }

    #[test]
    fn retract_of_pending_fact_skips_repair() {
        let mut s = session();
        let f = Fact::at("tranM", vec![Value::sym("a"), Value::num(9.0)], 6);
        s.submit(f.clone()).unwrap();
        let report = s.retract(f).unwrap();
        assert_eq!(report.path, RepairPath::Pending);
        assert_eq!(s.stats().repairs.attempted, 0);
        s.advance_to(10).unwrap();
        assert_eq!(s.database().to_facts_text(), cold_margin("", 10));
    }

    #[test]
    fn retract_patches_to_cold_equivalent() {
        let mut s = session();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(97.0)],
            3,
        ))
        .unwrap();
        s.advance_to(6).unwrap();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(3.0)],
            8,
        ))
        .unwrap();
        s.advance_to(12).unwrap();
        // The first transaction turns out to be bogus: retract it.
        let report = s
            .retract(Fact::at(
                "tranM",
                vec![Value::sym("acc"), Value::num(97.0)],
                3,
            ))
            .unwrap();
        assert_eq!(report.path, RepairPath::Incremental);
        assert!(report.cone_tuples > 0);
        assert_eq!(
            s.database().to_facts_text(),
            cold_margin("tranM(acc, 3.0)@8.", 12)
        );
        assert_eq!(s.stats().repairs.attempted, 1);
        assert_eq!(s.stats().repairs.incremental, 1);
        // The session keeps working after a repair.
        s.advance_to(15).unwrap();
        assert_eq!(
            s.database().to_facts_text(),
            cold_margin("tranM(acc, 3.0)@8.", 15)
        );
    }

    #[test]
    fn late_submit_patches_to_cold_equivalent() {
        let mut s = session();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(3.0)],
            8,
        ))
        .unwrap();
        s.advance_to(12).unwrap();
        // A transaction from t=3 arrives late.
        let report = s
            .submit_late(Fact::at(
                "tranM",
                vec![Value::sym("acc"), Value::num(97.0)],
                3,
            ))
            .unwrap();
        assert_eq!(report.path, RepairPath::Incremental);
        assert_eq!(
            s.database().to_facts_text(),
            cold_margin("tranM(acc, 97.0)@3.\ntranM(acc, 3.0)@8.", 12)
        );
    }

    #[test]
    fn late_fact_straddling_the_watermark_is_rejected() {
        let mut s = session();
        s.advance_to(10).unwrap();
        let err = s
            .submit_late(Fact::over(
                "tranM",
                vec![Value::sym("a"), Value::num(1.0)],
                Interval::closed_int(5, 15),
            ))
            .unwrap_err();
        assert!(matches!(err, Error::Eval(_)), "got {err:?}");
        // A future fact through submit_late just queues.
        let report = s
            .submit_late(Fact::at(
                "tranM",
                vec![Value::sym("a"), Value::num(1.0)],
                12,
            ))
            .unwrap();
        assert_eq!(report.path, RepairPath::Pending);
    }

    #[test]
    fn correct_replaces_in_one_repair() {
        let mut s = session();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(97.0)],
            3,
        ))
        .unwrap();
        s.advance_to(10).unwrap();
        // The amount was wrong: 97 → 42, one atomic correction.
        let report = s
            .correct(
                Fact::at("tranM", vec![Value::sym("acc"), Value::num(97.0)], 3),
                Fact::at("tranM", vec![Value::sym("acc"), Value::num(42.0)], 3),
            )
            .unwrap();
        assert_eq!(report.path, RepairPath::Incremental);
        assert_eq!(s.stats().repairs.attempted, 1);
        assert_eq!(
            s.database().to_facts_text(),
            cold_margin("tranM(acc, 42.0)@3.", 10)
        );
        // Correcting an unknown fact errors before mutating anything.
        let before = s.database().to_facts_text();
        assert!(matches!(
            s.correct(
                Fact::at("tranM", vec![Value::sym("acc"), Value::num(1.0)], 4),
                Fact::at("tranM", vec![Value::sym("acc"), Value::num(2.0)], 4),
            ),
            Err(Error::UnknownFact(_))
        ));
        assert_eq!(s.database().to_facts_text(), before);
        assert_eq!(s.stats().repairs.attempted, 1);
    }

    #[test]
    fn budget_trip_falls_back_to_cold() {
        let program = parse_program(MARGIN_RULES).unwrap();
        let mut s = Reasoner::new(program, ReasonerConfig::default().with_repair_budget(0))
            .unwrap()
            .into_session(&Database::new(), 0)
            .unwrap();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(97.0)],
            3,
        ))
        .unwrap();
        s.advance_to(10).unwrap();
        let report = s
            .retract(Fact::at(
                "tranM",
                vec![Value::sym("acc"), Value::num(97.0)],
                3,
            ))
            .unwrap();
        assert_eq!(report.path, RepairPath::ColdFallback);
        assert_eq!(s.stats().repairs.budget_trips, 1);
        assert_eq!(s.stats().repairs.fallbacks, 1);
        assert_eq!(s.database().to_facts_text(), cold_margin("", 10));
    }

    #[test]
    fn repair_disabled_always_falls_back() {
        let program = parse_program(MARGIN_RULES).unwrap();
        let mut s = Reasoner::new(program, ReasonerConfig::default().with_repair(false))
            .unwrap()
            .into_session(&Database::new(), 0)
            .unwrap();
        s.submit(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(97.0)],
            3,
        ))
        .unwrap();
        s.advance_to(10).unwrap();
        s.submit_late(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(3.0)],
            5,
        ))
        .unwrap();
        s.retract(Fact::at(
            "tranM",
            vec![Value::sym("acc"), Value::num(97.0)],
            3,
        ))
        .unwrap();
        let r = &s.stats().repairs;
        assert_eq!(r.attempted, 2);
        assert_eq!(r.fallbacks, 2);
        assert_eq!(r.incremental, 0);
        assert_eq!(
            s.database().to_facts_text(),
            cold_margin("tranM(acc, 3.0)@5.", 10)
        );
    }

    #[test]
    fn overlapping_submissions_retract_independently() {
        let program = parse_program("h(X) :- p(X).").unwrap();
        let mut s = Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .into_session(&Database::new(), 0)
            .unwrap();
        s.submit(Fact::over(
            "p",
            vec![Value::sym("a")],
            Interval::closed_int(1, 5),
        ))
        .unwrap();
        s.submit(Fact::over(
            "p",
            vec![Value::sym("a")],
            Interval::closed_int(3, 8),
        ))
        .unwrap();
        s.advance_to(10).unwrap();
        // Retracting the second submission must keep the first's [1, 5]
        // coverage intact even though the intervals coalesced in storage.
        s.retract(Fact::over(
            "p",
            vec![Value::sym("a")],
            Interval::closed_int(3, 8),
        ))
        .unwrap();
        assert!(s.database().holds_at("h", &[Value::sym("a")], 5));
        assert!(!s.database().holds_at("h", &[Value::sym("a")], 6));
        // Retracting it again is an error: it no longer survives.
        assert!(matches!(
            s.retract(Fact::over(
                "p",
                vec![Value::sym("a")],
                Interval::closed_int(3, 8),
            )),
            Err(Error::UnknownFact(_))
        ));
    }

    #[test]
    fn genesis_facts_can_be_retracted() {
        let program = parse_program("h(X) :- p(X), rate(X, R).").unwrap();
        let mut init = Database::new();
        init.extend_facts(&parse_facts("rate(a, 0.5).").unwrap())
            .unwrap();
        let mut s = Reasoner::new(program, ReasonerConfig::default())
            .unwrap()
            .into_session(&init, 0)
            .unwrap();
        s.submit(Fact::over(
            "p",
            vec![Value::sym("a")],
            Interval::closed_int(3, 8),
        ))
        .unwrap();
        s.advance_to(10).unwrap();
        assert!(s.database().holds_at("h", &[Value::sym("a")], 5));
        // Retract the rigid genesis fact (its interval is (-inf, inf)).
        s.retract(Fact {
            pred: crate::Symbol::new("rate"),
            args: vec![Value::sym("a"), Value::num(0.5)],
            interval: Interval::ALL,
        })
        .unwrap();
        assert!(!s.database().holds_at("h", &[Value::sym("a")], 5));
        assert!(!s
            .database()
            .holds_at("rate", &[Value::sym("a"), Value::num(0.5)], 5));
        assert!(s.database().holds_at("p", &[Value::sym("a")], 5));
    }

    #[test]
    fn log_replay_matches_surviving_set() {
        let mut s = session();
        let f1 = Fact::at("tranM", vec![Value::sym("a"), Value::num(1.0)], 2);
        let f2 = Fact::at("tranM", vec![Value::sym("b"), Value::num(2.0)], 4);
        s.submit(f1.clone()).unwrap();
        s.submit(f2.clone()).unwrap();
        s.advance_to(5).unwrap();
        s.retract(f1.clone()).unwrap();
        // Fold the log: asserts minus retractions == surviving base set.
        let mut folded: Vec<Fact> = Vec::new();
        for ev in s.log() {
            match ev {
                BaseEvent::Assert(f) => folded.push(f.clone()),
                BaseEvent::Retract(f) => {
                    let pos = folded.iter().position(|a| a == f).unwrap();
                    folded.remove(pos);
                }
            }
        }
        assert_eq!(folded, s.base_facts());
    }

    #[test]
    fn aggregates_stream_correctly() {
        let program = parse_program(
            "event(sum(S)) :- modPos(A, S).\n\
             skew(K) :- startSkew(K).\n\
             skew(K) :- diamondminus skew(K), not event(_).\n\
             skew(K) :- diamondminus skew(X), event(S), K = X + S.",
        )
        .unwrap();
        let mut init = Database::new();
        init.extend_facts(&parse_facts("startSkew(0)@0.").unwrap())
            .unwrap();
        let mut s = Reasoner::new(program.clone(), ReasonerConfig::default())
            .unwrap()
            .into_session(&init, 0)
            .unwrap();
        s.submit(Fact::at("modPos", vec![Value::sym("a"), Value::Int(5)], 2))
            .unwrap();
        s.advance_to(3).unwrap();
        assert!(s.database().holds_at("skew", &[Value::Int(5)], 3));
        s.submit(Fact::at("modPos", vec![Value::sym("b"), Value::Int(-2)], 4))
            .unwrap();
        s.advance_to(6).unwrap();
        assert!(s.database().holds_at("skew", &[Value::Int(3)], 6));
        // Batch agreement.
        let mut db = Database::new();
        db.extend_facts(
            &parse_facts("startSkew(0)@0.\nmodPos(a, 5)@2.\nmodPos(b, -2)@4.").unwrap(),
        )
        .unwrap();
        let batch = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 6))
            .unwrap()
            .materialize(&db)
            .unwrap()
            .database;
        assert_eq!(s.database().to_facts_text(), batch.to_facts_text());
    }
}
