//! Error types for parsing, program analysis, and reasoning.

use std::fmt;

/// Any error produced by the chronolog core.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Syntax error with line/column and message.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// The program is not safe (a variable escapes its positive bindings).
    Unsafe(String),
    /// The program has no stratification (negation/aggregation in a cycle).
    NotStratifiable(String),
    /// A predicate is used with inconsistent arities.
    ArityMismatch(String),
    /// Runtime evaluation error (type error in a built-in, bad time capture…).
    Eval(String),
    /// A resource budget was exceeded (facts, iterations).
    BudgetExceeded(String),
    /// Temporal endpoint arithmetic overflowed the rational timeline
    /// (an operator window shifted an interval past the `i64` range).
    TimeOverflow(String),
    /// A session fact does not start strictly after the watermark. Use
    /// `Session::submit_late` / `Session::retract` for corrections below
    /// the watermark.
    Watermark {
        /// Predicate of the offending fact.
        pred: String,
        /// The fact's validity interval, rendered.
        interval: String,
        /// The session watermark the fact collided with.
        watermark: String,
    },
    /// A derivation or seed window collapsed to the empty interval
    /// (`lo > hi` after clipping) where a non-empty one was required.
    EmptyWindow(String),
    /// A retraction named a fact that is not part of the session's
    /// surviving base-fact set (never submitted, or already retracted).
    UnknownFact(String),
    /// The value interner ran out of dense `u32` ids for distinct constants
    /// (columnar storage interns every constant; more than ~4 billion
    /// distinct constants exhausts the id space).
    InternerOverflow(String),
}

impl Error {
    pub(crate) fn parse(line: usize, col: usize, msg: impl Into<String>) -> Error {
        Error::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, col, msg } => write!(f, "parse error at {line}:{col}: {msg}"),
            Error::Unsafe(m) => write!(f, "unsafe rule: {m}"),
            Error::NotStratifiable(m) => write!(f, "program is not stratifiable: {m}"),
            Error::ArityMismatch(m) => write!(f, "arity mismatch: {m}"),
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::BudgetExceeded(m) => write!(f, "budget exceeded: {m}"),
            Error::TimeOverflow(m) => write!(f, "temporal overflow: {m}"),
            Error::Watermark {
                pred,
                interval,
                watermark,
            } => write!(
                f,
                "watermark violation: fact {pred}@{interval} does not start strictly \
                 after the watermark {watermark} (use submit_late/retract to correct \
                 history at or below it)"
            ),
            Error::EmptyWindow(m) => write!(f, "empty window: {m}"),
            Error::UnknownFact(m) => write!(f, "unknown fact: {m}"),
            Error::InternerOverflow(m) => write!(f, "interner overflow: {m}"),
        }
    }
}

impl From<mtl_temporal::TimeOverflow> for Error {
    fn from(e: mtl_temporal::TimeOverflow) -> Error {
        Error::TimeOverflow(e.to_string())
    }
}

impl std::error::Error for Error {}

/// Result alias for chronolog operations.
pub type Result<T> = std::result::Result<T, Error>;
