//! Guard literals, magic demand-propagation rules, and seed facts.
//!
//! All demand machinery is expressed as ordinary DatalogMTL syntax so the
//! rewritten program flows through the planner and semi-naive engine
//! unchanged:
//!
//! * A rule deriving `h` with head operators `ops` (applied in order)
//!   maps body time `T` to the spread `ops(T)`; the derivation matters
//!   exactly when that spread meets the demanded window, i.e. when the
//!   *mirrored diamond chain* over the magic predicate holds at `T`
//!   (`⊟ρ` head ↔ `◇⁻ρ` guard, `⊞ρ` ↔ `◇⁺ρ`). The guard joins like any
//!   other positive literal, so time-window intersection happens in the
//!   engine's existing interval algebra.
//! * A positive body occurrence of guardable `q` nested under metric
//!   operators demands `q` at the times reached by the operator path;
//!   collecting the path root-first as head operators reproduces exactly
//!   that set (`◇⁻ρ`/`⊟ρ` → `⊟ρ` head, future mirrored; `S_ρ`/`U_ρ`
//!   demand their continuation side over `[0, ρ.hi]`, a sound
//!   over-approximation). Negated prefix literals are dropped from magic
//!   bodies — demanding more than needed is always sound.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Atom, Fact, Head, HeadOp, Literal, MetricAtom, Rule, Term};
use crate::symbol::Symbol;
use mtl_temporal::{Interval, MetricInterval, Rational, TimeBound};

use super::{adorn::bound_before, constant_positions, project_constants, Query};

/// The demand guard for a guardable rule: the magic atom over the head's
/// adorned arguments, wrapped in the mirror of the head-operator chain
/// (outermost head op becomes the outermost diamond).
pub(super) fn guard_literal(
    rule: &Rule,
    adornments: &BTreeMap<Symbol, BTreeSet<usize>>,
    magic_names: &BTreeMap<Symbol, Symbol>,
) -> Literal {
    let head = &rule.head.atom;
    let positions = &adornments[&head.pred];
    let args: Vec<Term> = positions.iter().map(|&j| head.args[j]).collect();
    let mut guard = MetricAtom::Rel(Atom {
        pred: magic_names[&head.pred],
        args,
        time_var: None,
    });
    for op in rule.head.ops.iter().rev() {
        guard = match op {
            HeadOp::BoxMinus(rho) => MetricAtom::DiamondMinus(*rho, Box::new(guard)),
            HeadOp::BoxPlus(rho) => MetricAtom::DiamondPlus(*rho, Box::new(guard)),
        };
    }
    Literal::Pos(guard)
}

/// The guarded rewrite: the guard joins first, everything else unchanged.
pub(super) fn guard_rule(rule: &Rule, guard: Literal) -> Rule {
    let mut body = Vec::with_capacity(rule.body.len() + 1);
    body.push(guard);
    body.extend(rule.body.iter().cloned());
    Rule {
        head: rule.head.clone(),
        body,
        label: rule.label.clone(),
    }
}

/// `[0, ρ.hi]` — the window over which the continuation side of a
/// `Since`/`Until` is demanded.
fn continuation_rho(rho: &MetricInterval) -> MetricInterval {
    let iv = rho.as_interval();
    let interval = Interval::new(
        TimeBound::Finite(Rational::ZERO),
        true,
        iv.hi(),
        iv.hi_closed() || iv.hi().is_finite(),
    )
    .expect("[0, rho.hi] is non-empty");
    MetricInterval::new(interval).expect("[0, rho.hi] is non-negative")
}

/// Every atom occurrence in `m` with the metric-operator path from the
/// root, collected root-first as head operators.
fn occurrences<'a>(
    m: &'a MetricAtom,
    path: &mut Vec<HeadOp>,
    out: &mut Vec<(&'a Atom, Vec<HeadOp>)>,
) {
    match m {
        MetricAtom::Top | MetricAtom::Bottom => {}
        MetricAtom::Rel(a) => out.push((a, path.clone())),
        MetricAtom::BoxMinus(rho, inner) | MetricAtom::DiamondMinus(rho, inner) => {
            path.push(HeadOp::BoxMinus(*rho));
            occurrences(inner, path, out);
            path.pop();
        }
        MetricAtom::BoxPlus(rho, inner) | MetricAtom::DiamondPlus(rho, inner) => {
            path.push(HeadOp::BoxPlus(*rho));
            occurrences(inner, path, out);
            path.pop();
        }
        MetricAtom::Since(m1, rho, m2) => {
            path.push(HeadOp::BoxMinus(continuation_rho(rho)));
            occurrences(m1, path, out);
            path.pop();
            path.push(HeadOp::BoxMinus(*rho));
            occurrences(m2, path, out);
            path.pop();
        }
        MetricAtom::Until(m1, rho, m2) => {
            path.push(HeadOp::BoxPlus(continuation_rho(rho)));
            occurrences(m1, path, out);
            path.pop();
            path.push(HeadOp::BoxPlus(*rho));
            occurrences(m2, path, out);
            path.pop();
        }
    }
}

/// Generates the magic rules of one guarded rule: for every positive body
/// occurrence of a guardable predicate, a rule deriving its demand from
/// the guard plus the positive prefix. Appends to `out`, deduplicating
/// (and dropping identity tautologies) via `seen`.
pub(super) fn magic_rules(
    rule: &Rule,
    guard: &Literal,
    adornments: &BTreeMap<Symbol, BTreeSet<usize>>,
    magic_names: &BTreeMap<Symbol, Symbol>,
    guardable: &BTreeSet<Symbol>,
    seen: &mut BTreeSet<String>,
    out: &mut Vec<Rule>,
) {
    let head_bound = &adornments[&rule.head.atom.pred];
    for (i, lit) in rule.body.iter().enumerate() {
        let Literal::Pos(m) = lit else { continue };
        let mut occs = Vec::new();
        occurrences(m, &mut Vec::new(), &mut occs);
        let interesting: Vec<_> = occs
            .into_iter()
            .filter(|(a, _)| guardable.contains(&a.pred))
            .collect();
        if interesting.is_empty() {
            continue;
        }
        let bound = bound_before(rule, i, head_bound);
        for (atom, ops) in interesting {
            let positions = &adornments[&atom.pred];
            let args: Vec<Term> = positions.iter().map(|&j| atom.args[j]).collect();
            debug_assert!(
                args.iter().all(|t| match t {
                    Term::Val(_) => true,
                    Term::Var(v) => bound.contains(v),
                }),
                "adorned positions must be suppliable by the prefix"
            );
            let magic_head = Atom {
                pred: magic_names[&atom.pred],
                args,
                time_var: None,
            };
            let mut body = vec![guard.clone()];
            for prefix in &rule.body[..i] {
                match prefix {
                    Literal::Pos(_) => body.push(prefix.clone()),
                    Literal::Neg(_) => {} // over-approximate: demand without the filter
                    Literal::Constraint(lhs, _, rhs) => {
                        let vars = lhs
                            .variables()
                            .into_iter()
                            .chain(rhs.variables())
                            .all(|v| bound.contains(&v));
                        if vars {
                            body.push(prefix.clone());
                        }
                    }
                }
            }
            // Identity tautology (`magic_p(X) :- magic_p(X).`): derives
            // nothing new, drop it.
            if ops.is_empty() && body.len() == 1 {
                if let Literal::Pos(MetricAtom::Rel(g)) = &body[0] {
                    if *g == magic_head {
                        continue;
                    }
                }
            }
            let magic_rule = Rule {
                head: Head {
                    atom: magic_head,
                    ops,
                    aggregate: None,
                },
                body,
                label: None,
            };
            let key = magic_rule.to_string();
            if seen.insert(key) {
                out.push(magic_rule);
            }
        }
    }
}

/// The magic seed: the query's constants at the adorned positions, over
/// the query window (unclipped — the engine intersects with its horizon).
pub(super) fn seed_facts(
    query: &Query,
    adornments: &BTreeMap<Symbol, BTreeSet<usize>>,
    magic_names: &BTreeMap<Symbol, Symbol>,
) -> Vec<Fact> {
    let Some(&magic) = magic_names.get(&query.atom.pred) else {
        return Vec::new();
    };
    let positions = &adornments[&query.atom.pred];
    debug_assert!(
        positions.is_subset(&constant_positions(&query.atom)),
        "query adornment can only shrink below the query's constant mask"
    );
    let Some(args) = project_constants(&query.atom, positions) else {
        return Vec::new();
    };
    vec![Fact {
        pred: magic,
        args,
        interval: query.window.unwrap_or(Interval::ALL),
    }]
}
