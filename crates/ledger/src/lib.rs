//! # chronolog-ledger
//!
//! An append-only, hash-chained event ledger with JSON persistence and a
//! Subgraph-like query index — the stand-ins for the Optimism chain and the
//! Mainnet Subgraph in the paper's validation pipeline.

#![warn(missing_docs)]

pub mod chain;
pub mod log;
pub mod persist;
pub mod subgraph;

pub use chain::{Block, Chain};
pub use log::{Ledger, LedgerRecord, MethodRecord};
pub use persist::{from_json, load_ledger, save_ledger, to_json, PersistError};
pub use subgraph::SubgraphIndex;
