//! # chronolog-perp
//!
//! The ETH-PERP perpetual future of the Kwenta/Synthetix platform, encoded
//! as a DatalogMTL program (the paper's contribution), together with a
//! procedural reference engine (the Solidity/Subgraph stand-in) and the
//! validation harness that regenerates the paper's Figures 4 and 5.

#![warn(missing_docs)]

pub mod encode;
pub mod extract;
pub mod fixed;
pub mod harness;
pub mod monitor;
pub mod multi;
pub mod params;
pub mod program;
pub mod reference;
pub mod types;

pub use fixed::Fixed18;
pub use monitor::{build_monitored_program, MonitorParams};
pub use multi::{run_multi_market, MarketSpec};
pub use params::MarketParams;
pub use reference::{Arith, ReferenceEngine};
pub use types::{AccountId, Event, MarketRun, Method, Trace, TradeSettlement};
