//! Ground values carried by DatalogMTL facts, with the numeric coercion
//! rules used by arithmetic built-ins.

use crate::symbol::Symbol;
use mtl_temporal::Rational;
use std::cmp::Ordering;
use std::fmt;

/// A total-ordered, hashable `f64` wrapper. NaN is rejected at construction
/// and `-0.0` is normalized to `0.0`, so `Eq`/`Hash` are coherent.
#[derive(Clone, Copy)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a float. Panics on NaN (no reasoning value is ever NaN; an
    /// arithmetic built-in producing NaN is reported as an evaluation error
    /// before reaching this constructor).
    pub fn new(v: f64) -> OrdF64 {
        assert!(!v.is_nan(), "NaN cannot be a DatalogMTL value");
        OrdF64(if v == 0.0 { 0.0 } else { v })
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("NaN excluded by construction")
    }
}

impl std::hash::Hash for OrdF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A ground value: symbolic constant, integer, float, or boolean.
///
/// Mixed `Int`/`Num` arithmetic coerces to `Num` (IEEE `f64`), matching the
/// numeric behaviour of the Vadalog runs reported in the paper (differences
/// of order 1e-12 between engines come precisely from `f64` rounding).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Interned symbolic constant (account ids, labels…).
    Sym(Symbol),
    /// 64-bit integer (timestamps, counts…).
    Int(i64),
    /// Total-ordered float (prices, margins, rates…).
    Num(OrdF64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Float constructor.
    pub fn num(v: f64) -> Value {
        Value::Num(OrdF64::new(v))
    }

    /// Symbol constructor.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::new(s))
    }

    /// Numeric view (`Int` and `Num` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(n) => Some(n.get()),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// `true` iff the value is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Num(_))
    }

    /// Converts a rational time point into a value: integers stay exact,
    /// non-integers are approximated as floats (documented Vadalog-style
    /// behaviour of the `@T` capture / `unix(t)` promotion).
    pub fn from_time(t: Rational) -> Value {
        match t.as_integer() {
            Some(i) => Value::Int(i),
            None => Value::num(t.to_f64()),
        }
    }

    /// Numeric equality with Int/Num coercion; falls back to structural
    /// equality for non-numeric values.
    pub fn semantic_eq(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }

    /// Numeric comparison with coercion; `None` for incomparable kinds.
    pub fn semantic_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b),
            _ => {
                if std::mem::discriminant(self) == std::mem::discriminant(other) {
                    Some(self.cmp(other))
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(n) => {
                let v = n.get();
                if v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::num(v)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

/// A ground tuple: the arguments of a ground atom.
pub type Tuple = Box<[Value]>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordf64_normalizes_negative_zero() {
        assert_eq!(OrdF64::new(-0.0), OrdF64::new(0.0));
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        OrdF64::new(-0.0).hash(&mut h1);
        OrdF64::new(0.0).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ordf64_rejects_nan() {
        OrdF64::new(f64::NAN);
    }

    #[test]
    fn semantic_eq_coerces_int_and_num() {
        assert!(Value::Int(3).semantic_eq(&Value::num(3.0)));
        assert!(!Value::Int(3).semantic_eq(&Value::num(3.5)));
        assert!(Value::sym("a").semantic_eq(&Value::sym("a")));
        assert!(!Value::sym("a").semantic_eq(&Value::Int(0)));
    }

    #[test]
    fn semantic_cmp_orders_numerics() {
        assert_eq!(
            Value::Int(2).semantic_cmp(&Value::num(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::sym("x").semantic_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn from_time_keeps_integers_exact() {
        assert_eq!(
            Value::from_time(Rational::integer(1664274600)),
            Value::Int(1664274600)
        );
        assert_eq!(Value::from_time(Rational::new(1, 2)), Value::num(0.5));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::sym("abc").to_string(), "abc");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::num(2.0).to_string(), "2.0");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
