//! Scaling of the full ETH-PERP materialization in the number of market
//! events (event-epoch timeline): how the declarative execution cost grows
//! with the workload.

use chronolog_bench::microbench::Bench;
use chronolog_market::{generate, ScenarioConfig};
use chronolog_perp::harness::run_datalog;
use chronolog_perp::program::TimelineMode;
use chronolog_perp::MarketParams;

fn bench_scaling(c: &mut Bench) {
    let params = MarketParams::default();
    let mut group = c.group("scaling_events");
    group.sample_size(10);
    for n in [32usize, 64, 128, 256, 512] {
        let config = ScenarioConfig::new("scale", 11, 0, n, n / 3, 100.0, 1400.0);
        let trace = generate(&config);
        group.bench_function(n.to_string(), |b| {
            b.iter(|| run_datalog(&trace, &params, TimelineMode::EventEpochs).unwrap())
        });
    }
    group.finish();
}

fn main() {
    let mut c = Bench::from_env();
    bench_scaling(&mut c);
}
