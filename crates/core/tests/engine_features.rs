//! Feature-level engine tests beyond the oracle fragment: continuous
//! (non-punctual) operator windows in rules, since/until, operator nesting,
//! idempotence, and horizon behaviour.

use chronolog_core::{
    parse_facts, parse_program, Database, Error, Interval, Rational, Reasoner, ReasonerConfig,
    Value,
};

fn run(rules: &str, facts: &str, horizon: (i64, i64)) -> Database {
    let program = parse_program(rules).unwrap();
    let mut db = Database::new();
    db.extend_facts(&parse_facts(facts).unwrap()).unwrap();
    Reasoner::new(
        program,
        ReasonerConfig::default().with_horizon(horizon.0, horizon.1),
    )
    .unwrap()
    .materialize(&db)
    .unwrap()
    .database
}

fn holds(db: &Database, pred: &str, args: &[Value], num: i64, den: i64) -> bool {
    db.intervals(chronolog_core::Symbol::new(pred), args)
        .contains(Rational::new(num, den))
}

#[test]
fn continuous_box_window_requires_continuity() {
    // "stable if up continuously for the last 5 units" over interval facts.
    let db = run(
        "stable(S) :- boxminus[0, 5] up(S).",
        "up(api)@[0, 20].\nup(db)@[0, 8].\nup(db)@[11, 20].",
        (0, 30),
    );
    assert!(db.holds_at("stable", &[Value::sym("api")], 5));
    assert!(!db.holds_at("stable", &[Value::sym("api")], 4));
    // db's outage (8, 11) resets the continuity clock.
    assert!(db.holds_at("stable", &[Value::sym("db")], 8));
    assert!(!db.holds_at("stable", &[Value::sym("db")], 12));
    assert!(db.holds_at("stable", &[Value::sym("db")], 16));
    // Continuous semantics: stable also holds at non-integer points.
    assert!(holds(&db, "stable", &[Value::sym("api")], 11, 2)); // t = 5.5
}

#[test]
fn diamond_window_over_interval_facts() {
    let db = run(
        "recent(S) :- diamondminus[0, 3] blip(S).",
        "blip(x)@[10, 11].",
        (0, 30),
    );
    // holds on [10, 14]: some blip within the last 3 units.
    assert!(db.holds_at("recent", &[Value::sym("x")], 10));
    assert!(db.holds_at("recent", &[Value::sym("x")], 14));
    assert!(!db.holds_at("recent", &[Value::sym("x")], 15));
    assert!(holds(&db, "recent", &[Value::sym("x")], 27, 2)); // 13.5
    assert!(!holds(&db, "recent", &[Value::sym("x")], 29, 2)); // 14.5
}

#[test]
fn since_in_rules() {
    // "error-free since the last restart, looking back at most 10".
    let db = run(
        "fresh(S) :- since[0, 10](ok(S), restart(S)).",
        "ok(db)@[11, 30].\nrestart(db)@11.",
        (0, 40),
    );
    for t in 11..=21 {
        assert!(db.holds_at("fresh", &[Value::sym("db")], t), "t={t}");
    }
    // Beyond the window the restart witness is too old.
    assert!(!db.holds_at("fresh", &[Value::sym("db")], 22));
}

#[test]
fn until_in_rules() {
    let db = run(
        "doomed(S) :- until[0, 5](up(S), crash(S)).",
        "up(x)@[0, 10].\ncrash(x)@10.",
        (0, 20),
    );
    // Doomed when a crash comes within 5 units and the service is up
    // throughout the wait.
    assert!(db.holds_at("doomed", &[Value::sym("x")], 5));
    assert!(db.holds_at("doomed", &[Value::sym("x")], 10));
    assert!(!db.holds_at("doomed", &[Value::sym("x")], 4));
}

#[test]
fn nested_operator_chains() {
    // ◇⁻[0,2] ⊟[0,3] p: "at some point in the last 2 units, p had held
    // continuously for 3 units".
    let db = run(
        "h(X) :- diamondminus[0, 2] boxminus[0, 3] p(X).",
        "p(a)@[0, 5].",
        (0, 20),
    );
    // ⊟[0,3]p holds on [3,5]; ◇⁻[0,2] extends to [3,7].
    assert!(db.holds_at("h", &[Value::sym("a")], 3));
    assert!(db.holds_at("h", &[Value::sym("a")], 7));
    assert!(!db.holds_at("h", &[Value::sym("a")], 2));
    assert!(!db.holds_at("h", &[Value::sym("a")], 8));
}

#[test]
fn materialization_is_idempotent() {
    let rules = "isOpen(A) :- tranM(A, M).\n\
                 isOpen(A) :- boxminus isOpen(A), not withdraw(A).\n\
                 pair(A, B) :- isOpen(A), isOpen(B).";
    let program = parse_program(rules).unwrap();
    let mut db = Database::new();
    db.extend_facts(&parse_facts("tranM(x, 1)@0.\ntranM(y, 2)@3.").unwrap())
        .unwrap();
    let reasoner = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 10)).unwrap();
    let once = reasoner.materialize(&db).unwrap().database;
    let twice = reasoner.materialize(&once).unwrap();
    assert_eq!(once.to_facts_text(), twice.database.to_facts_text());
    assert_eq!(twice.stats.derived_tuples, 0);
}

#[test]
fn horizon_clips_propagation_but_reads_outside_edb() {
    // EDB fact before the horizon still triggers diamond inferences inside.
    let db = run("h(X) :- diamondminus[0, 100] p(X).", "p(a)@-50.", (0, 10));
    assert!(db.holds_at("h", &[Value::sym("a")], 0));
    assert!(db.holds_at("h", &[Value::sym("a")], 10));
    // Nothing is materialized beyond the horizon even though the diamond
    // window would allow it.
    assert!(!db.holds_at("h", &[Value::sym("a")], 11));
}

#[test]
fn rational_interval_facts_flow_through() {
    let program = parse_program("h(X) :- boxminus[0.5, 1.5] p(X).").unwrap();
    let mut db = Database::new();
    db.extend_facts(&parse_facts("p(a)@[0, 3].").unwrap())
        .unwrap();
    let out = Reasoner::new(program, ReasonerConfig::default().with_horizon(0, 10))
        .unwrap()
        .materialize(&db)
        .unwrap()
        .database;
    // Window [t-1.5, t-0.5] ⊆ [0,3] → t ∈ [1.5, 3.5].
    let ivs = out.intervals(chronolog_core::Symbol::new("h"), &[Value::sym("a")]);
    assert!(ivs.contains(Rational::new(3, 2)));
    assert!(ivs.contains(Rational::new(7, 2)));
    assert!(!ivs.contains(Rational::new(29, 20)));
    assert!(!ivs.contains(Rational::new(71, 20)));
}

#[test]
fn unbounded_horizon_with_nonrecursive_program_terminates() {
    let program = parse_program("h(X) :- p(X), q(X).").unwrap();
    let mut db = Database::new();
    db.extend_facts(&parse_facts("p(a)@[0, inf).\nq(a)@[5, 10].").unwrap())
        .unwrap();
    let out = Reasoner::new(program, ReasonerConfig::default())
        .unwrap()
        .materialize(&db)
        .unwrap()
        .database;
    assert!(out.holds_at("h", &[Value::sym("a")], 7));
    assert!(!out.holds_at("h", &[Value::sym("a")], 11));
}

#[test]
fn aggregate_with_head_operator() {
    // Sum spread one step into the future via a head box-plus.
    let db = run(
        "boxplus[1, 1] lag(sum(S)) :- obs(A, S).",
        "obs(a, 2)@5.\nobs(b, 3)@5.",
        (0, 10),
    );
    assert!(db.holds_at("lag", &[Value::Int(5)], 6));
    assert!(!db.holds_at("lag", &[Value::Int(5)], 5));
}

#[test]
fn budget_errors_are_descriptive() {
    let program = parse_program("p(X) :- q(X).\np(X) :- boxminus p(X).").unwrap();
    let mut db = Database::new();
    db.extend_facts(&parse_facts("q(a)@0.").unwrap()).unwrap();
    let err = Reasoner::new(
        program,
        ReasonerConfig {
            max_iterations: 10,
            ..ReasonerConfig::default()
        },
    )
    .unwrap()
    .materialize(&db)
    .err()
    .expect("budget must be exceeded");
    match err {
        Error::BudgetExceeded(msg) => assert!(msg.contains("10 iterations"), "{msg}"),
        other => panic!("expected budget error, got {other}"),
    }
}

#[test]
fn facts_over_open_intervals_negate_precisely() {
    let db = run(
        "calm(X) :- span(X), not noisy(X).",
        "span(x)@[0, 10].\nnoisy(x)@(2, 4).",
        (0, 10),
    );
    let ivs = db.intervals(chronolog_core::Symbol::new("calm"), &[Value::sym("x")]);
    assert!(ivs.contains(Rational::integer(2))); // boundary kept (open noisy)
    assert!(!ivs.contains(Rational::new(3, 1)));
    assert!(ivs.contains(Rational::integer(4)));
    assert_eq!(
        ivs.components(),
        &[Interval::closed_int(0, 2), Interval::closed_int(4, 10),]
    );
}
